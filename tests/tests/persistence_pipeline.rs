//! Persistence under load: databases survive save/load with their
//! histories intact, and queries over reloaded data remain PWS-consistent.

use orion_core::durable::{DurableDb, WAL_FILE};
use orion_core::persist::{load_database, save_database};
use orion_core::plan::Plan;
use orion_core::prelude::*;
use orion_core::pws::{
    conformance_report, distribution_distance, pws_row_distribution_via_ancestors,
};
use orion_pdf::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_persist_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn reloaded_database_stays_pws_consistent() {
    let (tables, reg) = orion_tests::table2();
    let path = temp("pws.db");
    save_database(&path, &tables, &reg).unwrap();
    let (loaded, mut lreg) = load_database(&path).unwrap();
    let plan = Plan::scan("T").select(Predicate::cmp_cols("a", CmpOp::Lt, "b"));
    let (truth, engine) =
        conformance_report(&plan, &loaded, &mut lreg, &ExecOptions::default()).unwrap();
    assert!(distribution_distance(&truth, &engine) < 1e-9);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mutex_groups_survive_save_load() {
    // Cross-tuple correlation (shared phantom ancestor) must survive the
    // round trip: the ancestor-level PWS over the *loaded* registry still
    // sees the mutual exclusion.
    let mut reg = HistoryRegistry::new();
    let schema =
        ProbSchema::new(vec![("id", ColumnType::Int, false), ("a", ColumnType::Int, true)], vec![])
            .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_mutex_group(
        &mut reg,
        vec![
            (vec![("id", Value::Int(1))], vec![("a", Pdf1::certain(10.0))]),
            (vec![("id", Value::Int(2))], vec![("a", Pdf1::certain(20.0))]),
        ],
        &[0.4, 0.4],
    )
    .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);
    let path = temp("mutex.db");
    save_database(&path, &tables, &reg).unwrap();
    let (loaded, lreg) = load_database(&path).unwrap();

    let plan = Plan::scan("T").project(&["id"]);
    let dist = pws_row_distribution_via_ancestors(&plan, &loaded, &lreg).unwrap();
    let key = |i: i64| vec![orion_core::pws::CanonValue::Int(i)];
    assert!((dist[&key(1)] - 0.4).abs() < 1e-12);
    assert!((dist[&key(2)] - 0.4).abs() < 1e-12);
    // Joint presence of both alternatives is impossible: check via the
    // self-pair join of projections.
    let both = Plan::scan("T").project(&["id"]).join_on(Plan::scan("T").project(&["id"]), None);
    let dist = pws_row_distribution_via_ancestors(&both, &loaded, &lreg).unwrap();
    let pair = |l: i64, r: i64| {
        vec![orion_core::pws::CanonValue::Int(l), orion_core::pws::CanonValue::Int(r)]
    };
    assert!(!dist.contains_key(&pair(1, 2)), "mutually exclusive after reload");
    assert!((dist[&pair(1, 1)] - 0.4).abs() < 1e-12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_load_save_is_stable() {
    // Double round trip produces identical bytes-level content
    // (tables, tuples, registry sizes).
    let (tables, reg) = orion_tests::table2();
    let p1 = temp("stable1.db");
    let p2 = temp("stable2.db");
    save_database(&p1, &tables, &reg).unwrap();
    let (t1, r1) = load_database(&p1).unwrap();
    save_database(&p2, &t1, &r1).unwrap();
    let (t2, r2) = load_database(&p2).unwrap();
    assert_eq!(t1.len(), t2.len());
    for (name, rel) in &t1 {
        assert_eq!(rel.tuples, t2[name].tuples, "table {name}");
        assert_eq!(rel.schema, t2[name].schema);
    }
    assert_eq!(r1.len(), r2.len());
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn atomic_save_leaves_no_tmp_and_survives_overwrite() {
    let (tables, reg) = orion_tests::table2();
    let path = temp("atomic.db");
    save_database(&path, &tables, &reg).unwrap();
    save_database(&path, &tables, &reg).unwrap();
    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    assert!(!std::path::Path::new(&tmp).exists(), "temp file must be renamed away");
    let (loaded, _) = load_database(&path).unwrap();
    assert_eq!(loaded.len(), tables.len());
    std::fs::remove_file(&path).ok();
}

fn durable_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_persist_pipeline").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn durable_db_recovers_committed_inserts_after_wal_corruption() {
    let dir = durable_dir("wal_garbage");
    {
        let mut db = DurableDb::open(&dir).unwrap();
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        db.create_table("readings", schema).unwrap();
        for i in 0..4 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
    }
    // Crash mid-append: garbage lands after the committed records.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
    f.write_all(&[0xEE; 23]).unwrap();
    drop(f);
    let mut db = DurableDb::open(&dir).unwrap();
    assert_eq!(db.recovery().wal_bytes_truncated, 23);
    assert_eq!(db.table("readings").unwrap().len(), 4, "every committed insert survives");
    db.check_invariants().unwrap();
    // Queries over the recovered data still work.
    let opts = ExecOptions::default();
    let pred = Predicate::cmp("v", CmpOp::Gt, 1.5);
    let rel = db.table("readings").unwrap().clone();
    let sel = orion_core::select::select(&rel, &pred, db.registry_mut(), &opts).unwrap();
    assert!(!sel.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncates_wal_and_snapshot_takes_over() {
    let dir = durable_dir("checkpoint");
    {
        let mut db = DurableDb::open(&dir).unwrap();
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        db.create_table("readings", schema).unwrap();
        for i in 0..3 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(0.0, 1.0).unwrap())],
            )
            .unwrap();
        }
        assert!(db.wal_len() > 0);
        db.checkpoint().unwrap();
        assert_eq!(db.wal_len(), 0, "checkpoint empties the WAL");
    }
    let db = DurableDb::open(&dir).unwrap();
    assert!(db.recovery().snapshot_loaded);
    assert_eq!(db.recovery().wal_records_replayed, 0);
    assert_eq!(db.table("readings").unwrap().len(), 3);
    db.check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn derived_relations_persist_with_floors() {
    // Save a database containing a *derived* (floored) relation; the floors
    // and partial masses must survive.
    let (tables, mut reg) = orion_tests::table2();
    let sel = orion_core::select::select(
        &tables["T"],
        &Predicate::cmp("a", CmpOp::Gt, 0i64),
        &mut reg,
        &ExecOptions::default(),
    )
    .unwrap();
    let mut all = tables.clone();
    let mut derived = sel;
    derived.name = "V".to_string();
    all.insert("V".to_string(), derived);
    let path = temp("derived.db");
    save_database(&path, &all, &reg).unwrap();
    let (loaded, _) = load_database(&path).unwrap();
    let v = &loaded["V"];
    // Tuple 1's a-node lost its a=0 world: mass 0.9.
    let a = v.schema.column("a").unwrap().id;
    let m = v.tuples[0].node_for(a).unwrap().marginal(a).unwrap();
    assert!((m.mass() - 0.9).abs() < 1e-12);
    assert_eq!(m.density(0.0), 0.0);
    std::fs::remove_file(&path).ok();
}
