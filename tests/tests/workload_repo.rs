//! Integration tests for the workload repository: fingerprint normalization
//! properties, counter conservation under concurrent sessions, slow-query
//! capture with validated dumps, and the `orion.statements` /
//! `orion.slow_queries` / `orion.plan_feedback` virtual tables.

use orion_core::prelude::{q_error, Value};
use orion_obs::{json, validate_slow_dump, SlowCause};
use orion_sql::{fingerprint, parse, DurableSession, Output};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directories across tests within one process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("orion_workload_repo").join(format!("{name}_{n}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Opens a session whose repository is force-enabled with slow capture off,
/// regardless of ambient `ORION_*` environment.
fn session(dir: &Path) -> DurableSession {
    let s = DurableSession::open(dir).unwrap();
    let repo = s.db().workload();
    let mut cfg = repo.config();
    cfg.enabled = true;
    cfg.slow_nanos = u64::MAX;
    cfg.sample_every = 0;
    repo.set_config(cfg);
    s
}

fn fp(sql: &str) -> u64 {
    fingerprint(&parse(sql).unwrap()).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same statement shape with different number / pdf / string
    /// literals fingerprints identically; structural changes (comparison
    /// operator, table name, constructor, projection) do not.
    #[test]
    fn fingerprint_is_literal_invariant(
        a in 0.0..100.0f64,
        b in 0.0..100.0f64,
        p1 in 0.01..0.99f64,
        p2 in 0.01..0.99f64,
        l1 in 1usize..50,
        l2 in 1usize..50,
        k1 in 0i64..1000,
        k2 in 0i64..1000,
    ) {
        // Threshold query: probability bound, cutoff and LIMIT are literals.
        let q1 = format!("SELECT rid FROM t WHERE PROB(v < {a:.3}) > {p1:.3} LIMIT {l1}");
        let q2 = format!("SELECT rid FROM t WHERE PROB(v < {b:.3}) > {p2:.3} LIMIT {l2}");
        prop_assert_eq!(fp(&q1), fp(&q2));
        // Flipping the comparison operator is a different shape.
        let q3 = format!("SELECT rid FROM t WHERE PROB(v > {a:.3}) > {p1:.3} LIMIT {l1}");
        prop_assert!(fp(&q1) != fp(&q3));
        // A different table is a different shape.
        let q4 = format!("SELECT rid FROM u WHERE PROB(v < {a:.3}) > {p1:.3} LIMIT {l1}");
        prop_assert!(fp(&q1) != fp(&q4));

        // Pdf constructor parameters are literals; the constructor is not.
        let i1 = format!("INSERT INTO t VALUES ({k1}, GAUSSIAN({a:.3}, {b:.3}))");
        let i2 = format!("INSERT INTO t VALUES ({k2}, GAUSSIAN({b:.3}, {a:.3}))");
        prop_assert_eq!(fp(&i1), fp(&i2));
        let i3 = format!("INSERT INTO t VALUES ({k1}, UNIFORM({a:.3}, {b:.3}))");
        prop_assert!(fp(&i1) != fp(&i3));
        // DISCRETE point lists collapse to one placeholder: different
        // support sizes still share the statement shape.
        let d1 = format!("INSERT INTO t VALUES ({k1}, DISCRETE(1:0.4))");
        let d2 = format!("INSERT INTO t VALUES ({k2}, DISCRETE(1:0.2, 2:0.3, 3:0.5))");
        prop_assert_eq!(fp(&d1), fp(&d2));

        // String literals normalize too.
        let s1 = format!("SELECT a FROM t WHERE name = 'x{k1}'");
        let s2 = format!("SELECT a FROM t WHERE name = 'y{k2}'");
        prop_assert_eq!(fp(&s1), fp(&s2));
        // Projection list is structure.
        prop_assert!(fp("SELECT a FROM t") != fp("SELECT b FROM t"));
    }
}

/// `sum(calls)` over every fingerprint equals the number of executed
/// statements — including failed ones — under a 4-client concurrent mix
/// with autocommit conflict retries in play.
#[test]
fn counters_conserve_under_four_concurrent_clients() {
    const CLIENTS: usize = 4;
    const STMTS: usize = 30;
    let dir = temp_dir("conserve");
    let mut root = session(&dir);
    let repo = root.db().workload();
    root.execute("CREATE TABLE wl (a INT, x REAL UNCERTAIN)").unwrap();
    let db = root.db().clone();
    let per_client: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let db = db.clone();
                scope.spawn(move || {
                    let mut s = DurableSession::from_db(db);
                    let mut n = 0u64;
                    for j in 0..STMTS {
                        let k = (c * STMTS + j) as i64;
                        let sql = match j % 5 {
                            0 => format!("INSERT INTO wl VALUES ({k}, GAUSSIAN({}, 4))", 10 + j),
                            1 => format!("SELECT a FROM wl WHERE a < {k}"),
                            2 => format!(
                                "UPDATE wl SET x = GAUSSIAN({}, 1) WHERE a = {}",
                                20 + j,
                                k - 1
                            ),
                            3 => format!("SELECT a FROM wl WHERE PROB(x < {}) > 0.5", 30 + j),
                            // Per-client failing shape: errors count as calls.
                            _ => format!("SELECT a FROM missing_{c}"),
                        };
                        let _ = s.execute(&sql);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let executed = 1 + per_client.iter().sum::<u64>(); // +1 for CREATE TABLE
    assert_eq!(repo.total_calls(), executed, "sum(calls) == executed statements");
    assert_eq!(repo.overflowed(), 0, "bounded registry never overflowed this mix");

    let stmts = repo.statements();
    let ins = stmts.iter().find(|s| s.text.starts_with("INSERT INTO wl")).unwrap();
    assert_eq!(ins.calls as usize, CLIENTS * STMTS / 5, "literal variants share one fingerprint");
    assert_eq!(ins.errors, 0);
    let failing: Vec<_> = stmts.iter().filter(|s| s.text.contains("missing_")).collect();
    assert_eq!(failing.len(), CLIENTS, "one fingerprint per distinct missing table");
    for f in &failing {
        assert_eq!(f.errors, f.calls, "every call of the failing shape errored");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-operator q-errors in `orion.plan_feedback` match the est-vs-actual
/// figures of the `EXPLAIN ANALYZE` run that produced them.
#[test]
fn plan_feedback_matches_explain_analyze() {
    let dir = temp_dir("feedback");
    let mut s = session(&dir);
    s.execute("CREATE TABLE wl (a INT, x REAL UNCERTAIN)").unwrap();
    let rows: Vec<String> =
        (0..50).map(|i| format!("({i}, GAUSSIAN({}, 9))", 20 + (i % 40))).collect();
    s.execute(&format!("INSERT INTO wl VALUES {}", rows.join(", "))).unwrap();
    s.execute("ANALYZE wl").unwrap();
    let out = s.execute("EXPLAIN ANALYZE SELECT a FROM wl WHERE PROB(x < 30) > 0.5").unwrap();
    let Output::Explain { profile, .. } = out else { panic!("explain") };

    fn flatten(p: &orion_obs::OpProfile, out: &mut Vec<(String, u64, u64)>) {
        out.push((p.name.clone(), p.est_rows.unwrap_or(0), p.stats.tuples_out));
        for c in &p.children {
            flatten(c, out);
        }
    }
    let mut ops = Vec::new();
    flatten(&profile, &mut ops);
    let summaries = s.db().plan_feedback().summaries();
    assert!(!summaries.is_empty(), "profiled run folded feedback");
    for fb in &summaries {
        assert_eq!(fb.table, "wl");
        assert_eq!(fb.n, 1, "exactly one profiled run folded");
        let (_, est, actual) =
            ops.iter().find(|(name, _, _)| name == &fb.op).expect("summary op is in the plan");
        assert_eq!(fb.last_est, *est);
        assert_eq!(fb.last_actual, *actual);
        let q = q_error(*est, *actual);
        assert!((fb.max_q - q).abs() < 1e-9, "{}: {} vs {q}", fb.op, fb.max_q);
        assert!((fb.mean_q() - q).abs() < 1e-9);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Slow-query capture by threshold and by sampling, plus the validated
/// JSON dump next to the Chrome traces.
#[test]
fn slow_queries_capture_and_dump_validates() {
    let dir = temp_dir("slow");
    let mut s = session(&dir);
    let repo = s.db().workload();
    s.execute("CREATE TABLE wl (a INT, x REAL UNCERTAIN)").unwrap();
    s.execute("INSERT INTO wl VALUES (1, GAUSSIAN(20, 4)), (2, GAUSSIAN(40, 4))").unwrap();

    // Threshold mode: zero threshold captures everything.
    let mut cfg = repo.config();
    cfg.slow_nanos = 0;
    repo.set_config(cfg.clone());
    s.execute("SELECT a FROM wl WHERE PROB(x < 30) > 0.5").unwrap();
    let slow = repo.slow_queries();
    let sq = slow.iter().find(|q| q.text.starts_with("SELECT")).expect("captured select");
    assert_eq!(sq.cause, SlowCause::Threshold);
    assert!(sq.plan.contains("Scan"), "captured EXPLAIN ANALYZE tree: {:?}", sq.plan);
    assert!(sq.plan.contains("actual="), "{:?}", sq.plan);

    // Sampling mode: every 2nd statement is captured even under threshold.
    cfg.slow_nanos = u64::MAX;
    cfg.sample_every = 2;
    repo.set_config(cfg);
    let before = repo.slow_queries().len();
    for i in 0..6 {
        s.execute(&format!("SELECT a FROM wl WHERE a < {i}")).unwrap();
    }
    let sampled: Vec<_> = repo.slow_queries().into_iter().skip(before).collect();
    assert_eq!(sampled.len(), 3, "1-in-2 sampling over six statements");
    assert!(sampled.iter().all(|q| q.cause == SlowCause::Sampled));

    // The dump validates both directly and through the shared validator.
    let path = repo.dump_slow_to_dir(&dir).unwrap();
    let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let n = validate_slow_dump(&doc).unwrap();
    assert_eq!(n, repo.slow_queries().len());
    std::fs::remove_dir_all(&dir).ok();
}

/// The three new vtables expose the stores through plain SQL, join with
/// user tables, and agree with the repository's own accounting.
#[test]
fn workload_vtables_join_with_user_tables() {
    let dir = temp_dir("vtables");
    let mut s = session(&dir);
    let repo = s.db().workload();
    let mut cfg = repo.config();
    cfg.slow_nanos = 0;
    repo.set_config(cfg);
    s.execute("CREATE TABLE wl (a INT, x REAL UNCERTAIN)").unwrap();
    s.execute("INSERT INTO wl VALUES (1, GAUSSIAN(20, 4)), (2, GAUSSIAN(40, 4))").unwrap();
    s.execute("ANALYZE wl").unwrap();
    s.execute("SELECT a FROM wl WHERE a < 5").unwrap();
    s.execute("SELECT a FROM wl WHERE a < 7").unwrap();

    // orion.statements golden row for the literal-collapsed SELECT.
    let Output::Table(rel) =
        s.execute("SELECT stmt, calls, rows FROM orion.statements WHERE calls = 2").unwrap()
    else {
        panic!("table")
    };
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.value(0, "stmt").unwrap(), &Value::Text("SELECT a FROM wl WHERE a < ?".into()));
    assert_eq!(rel.value(0, "rows").unwrap(), &Value::Int(4));

    // Join the statement repository against a user annotation table.
    s.execute("CREATE TABLE notes (nstmt TEXT, note TEXT)").unwrap();
    s.execute("INSERT INTO notes VALUES ('SELECT a FROM wl WHERE a < ?', 'hot path')").unwrap();
    let Output::Table(rel) =
        s.execute("SELECT stmt, note FROM orion.statements JOIN notes ON stmt = nstmt").unwrap()
    else {
        panic!("table")
    };
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.value(0, "note").unwrap(), &Value::Text("hot path".into()));

    // Join planner feedback against a user annotation table on operator
    // name (orion.tables shares the `tbl` column name, which a join would
    // disambiguate with table prefixes — a user table keeps names bare).
    s.execute("CREATE TABLE opnames (opname TEXT, descr TEXT)").unwrap();
    s.execute("INSERT INTO opnames VALUES ('Scan', 'full table scan')").unwrap();
    let Output::Table(rel) = s
        .execute(
            "SELECT tbl, op, descr FROM orion.plan_feedback JOIN opnames ON op = opname \
             WHERE tbl = 'wl'",
        )
        .unwrap()
    else {
        panic!("table")
    };
    assert_eq!(rel.len(), 1, "one Scan summary for wl");
    assert_eq!(rel.value(0, "tbl").unwrap(), &Value::Text("wl".into()));
    assert_eq!(rel.value(0, "descr").unwrap(), &Value::Text("full table scan".into()));

    // orion.slow_queries rows carry the capture cause.
    let Output::Table(rel) = s.execute("SELECT seq, cause FROM orion.slow_queries").unwrap() else {
        panic!("table")
    };
    assert!(rel.len() >= 4);
    assert_eq!(rel.value(0, "cause").unwrap(), &Value::Text("slow".into()));
    std::fs::remove_dir_all(&dir).ok();
}
