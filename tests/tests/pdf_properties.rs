//! Property-based tests on the pdf layer invariants: cdf monotonicity,
//! approximation convergence, floor algebra, and marginal/product
//! round-trips.

use orion_pdf::ops::cdf_distance;
use orion_pdf::prelude::*;
use proptest::prelude::*;

fn arb_gaussian() -> impl Strategy<Value = Pdf1> {
    (-50.0..50.0f64, 0.1..25.0f64).prop_map(|(m, v)| Pdf1::gaussian(m, v).expect("valid"))
}

fn arb_uniform() -> impl Strategy<Value = Pdf1> {
    (-50.0..50.0f64, 0.5..40.0f64).prop_map(|(lo, w)| Pdf1::uniform(lo, lo + w).expect("valid"))
}

fn arb_discrete() -> impl Strategy<Value = Pdf1> {
    prop::collection::vec((-20i64..20, 1u32..6), 1..6).prop_map(|raw| {
        let denom: u32 = raw.iter().map(|(_, w)| w).sum();
        let pts = raw.into_iter().map(|(v, w)| (v as f64, w as f64 / denom as f64)).collect();
        Pdf1::discrete(pts).expect("valid")
    })
}

fn arb_pdf() -> impl Strategy<Value = Pdf1> {
    prop_oneof![arb_gaussian(), arb_uniform(), arb_discrete()]
}

fn arb_region() -> impl Strategy<Value = RegionSet> {
    prop::collection::vec((-60.0..60.0f64, 0.1..30.0f64), 1..4).prop_map(|ivs| {
        RegionSet::from_intervals(
            ivs.into_iter().map(|(lo, w)| Interval::new(lo, lo + w)).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cumulative_is_monotone_and_bounded(pdf in arb_pdf(), probes in prop::collection::vec(-80.0..80.0f64, 2..10)) {
        let mut sorted = probes.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for &x in &sorted {
            let c = pdf.cumulative(x);
            prop_assert!(c >= prev - 1e-12, "monotone at {x}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn mass_equals_cumulative_at_infinity(pdf in arb_pdf()) {
        prop_assert!((pdf.mass() - pdf.cumulative(f64::INFINITY)).abs() < 1e-9);
    }

    #[test]
    fn range_prob_is_cdf_difference(pdf in arb_pdf(), lo in -60.0..60.0f64, w in 0.0..40.0f64) {
        let iv = Interval::new(lo, lo + w);
        let p = pdf.range_prob(&iv);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        if !pdf.is_discrete() {
            let diff = pdf.cumulative(iv.hi) - pdf.cumulative(iv.lo);
            prop_assert!((p - diff).abs() < 1e-9);
        }
    }

    #[test]
    fn floor_removes_exactly_region_mass(pdf in arb_pdf(), region in arb_region()) {
        let floored = pdf.floor_region(&region);
        // Total mass drops by the regional mass.
        let removed: f64 = region
            .intervals()
            .iter()
            .map(|iv| pdf.range_prob(iv))
            .sum();
        prop_assert!((pdf.mass() - floored.mass() - removed).abs() < 1e-6,
            "mass {} -> {}, removed {}", pdf.mass(), floored.mass(), removed);
        // Density is zero inside the region.
        for iv in region.intervals() {
            let mid = (iv.lo + iv.hi) / 2.0;
            prop_assert_eq!(floored.density(mid), 0.0);
        }
    }

    #[test]
    fn floor_is_order_independent(pdf in arb_pdf(), r1 in arb_region(), r2 in arb_region()) {
        let ab = pdf.floor_region(&r1).floor_region(&r2);
        let ba = pdf.floor_region(&r2).floor_region(&r1);
        let joined = pdf.floor_region(&r1.union(&r2));
        for &x in &[-55.0, -20.0, -1.0, 0.0, 3.0, 17.0, 42.0] {
            prop_assert!((ab.density(x) - ba.density(x)).abs() < 1e-9);
            prop_assert!((ab.density(x) - joined.density(x)).abs() < 1e-9);
        }
        prop_assert!((ab.mass() - joined.mass()).abs() < 1e-9);
    }

    #[test]
    fn approximations_converge(pdf in arb_gaussian()) {
        let coarse_h = Pdf1::Histogram(pdf.to_histogram(4).expect("ok"));
        let fine_h = Pdf1::Histogram(pdf.to_histogram(64).expect("ok"));
        prop_assert!(cdf_distance(&pdf, &fine_h, 200) <= cdf_distance(&pdf, &coarse_h, 200) + 1e-9);
        let coarse_d = Pdf1::Discrete(pdf.to_discrete(4).expect("ok"));
        let fine_d = Pdf1::Discrete(pdf.to_discrete(64).expect("ok"));
        prop_assert!(cdf_distance(&pdf, &fine_d, 200) <= cdf_distance(&pdf, &coarse_d, 200) + 1e-9);
        prop_assert!(cdf_distance(&pdf, &fine_h, 200) < 0.05);
    }

    #[test]
    fn approximation_preserves_mass(pdf in arb_pdf(), n in 2usize..40) {
        if let Some(h) = pdf.to_histogram(n) {
            prop_assert!((h.mass() - pdf.mass()).abs() < 1e-6);
        }
        if let Some(d) = pdf.to_discrete(n) {
            prop_assert!((d.mass() - pdf.mass()).abs() < 1e-6);
        }
    }

    #[test]
    fn joint_marginal_recovers_independent_factor(a in arb_discrete(), b in arb_discrete()) {
        let j = JointPdf::independent(vec![a.clone(), b.clone()]).expect("ok");
        let ma = j.marginal1(0).expect("ok");
        let mb = j.marginal1(1).expect("ok");
        // Masses multiply: marginal carries the partner's existence mass.
        prop_assert!((ma.mass() - a.mass() * b.mass()).abs() < 1e-9);
        for &x in &[-10.0, -1.0, 0.0, 2.0, 7.0] {
            prop_assert!((ma.density(x) - a.density(x) * b.mass()).abs() < 1e-9);
            prop_assert!((mb.density(x) - b.density(x) * a.mass()).abs() < 1e-9);
        }
    }

    #[test]
    fn joint_box_prob_factorizes_for_independent(a in arb_discrete(), b in arb_discrete(),
                                                  lo in -25.0..25.0f64, w in 0.0..20.0f64) {
        let j = JointPdf::independent(vec![a.clone(), b.clone()]).expect("ok");
        let iv = Interval::new(lo, lo + w);
        let p = j.box_prob(&[(0, iv)]);
        prop_assert!((p - a.range_prob(&iv) * b.mass()).abs() < 1e-9);
    }

    #[test]
    fn expected_value_lies_in_support(pdf in arb_pdf()) {
        if pdf.mass() > 1e-9 {
            if let (Some(e), Some(s)) = (pdf.expected_value(), pdf.effective_support()) {
                prop_assert!(e >= s.lo - 1e-6 && e <= s.hi + 1e-6);
            }
        }
    }

    #[test]
    fn codec_round_trip_preserves_queries(pdf in arb_pdf(), lo in -30.0..30.0f64, w in 0.0..20.0f64) {
        let mut buf = Vec::new();
        orion_storage::codec::encode_pdf1(&pdf, &mut buf);
        let back = orion_storage::codec::decode_pdf1(&mut &buf[..]).expect("decodes");
        let iv = Interval::new(lo, lo + w);
        prop_assert!((pdf.range_prob(&iv) - back.range_prob(&iv)).abs() < 1e-12);
        prop_assert!((pdf.mass() - back.mass()).abs() < 1e-12);
    }
}
