//! Per-kernel differential properties: every columnar pdf kernel in
//! [`Pdf1Batch`] must be **bit-identical** to looping its scalar
//! counterpart over the same records. Where the batch-level oracle
//! (`batch_equiv.rs`) checks whole pipelines, these tests isolate one
//! kernel at a time — mass, selection-vector mass, independence products,
//! range probability, cumulative, floor regions, scaling, marginalization
//! folds, and the shared Gaussian cdf lane — over randomly generated
//! mixed batches (symbolic with floors and partial scales, histograms,
//! discrete lists), plus the degenerate shapes vectorized code gets
//! wrong: the empty batch, the all-filtered selection vector, and the
//! single-element batch.

use orion_pdf::prelude::*;
use orion_pdf::special::{std_normal_cdf, std_normal_cdf_slice};
use proptest::prelude::*;

/// Bitwise f64 equality: distinguishes `0.0` from `-0.0` and treats equal
/// NaN payloads as equal, so a reordered reduction or a skipped lane can
/// never hide inside `==` tolerance.
fn assert_bits_eq(batch: f64, scalar: f64, ctx: &str) {
    assert!(
        batch.to_bits() == scalar.to_bits(),
        "{ctx}: batch {batch:?} ({:#018x}) != scalar {scalar:?} ({:#018x})",
        batch.to_bits(),
        scalar.to_bits()
    );
}

/// A small discrete pdf: up to 4 strictly increasing support points whose
/// probabilities may sum below 1 (partial pdf → probabilistic existence).
fn arb_discrete() -> impl Strategy<Value = Pdf1> {
    (prop::collection::vec((0i64..12, 1u32..5), 1..4), prop::bool::ANY).prop_map(
        |(raw, partial)| {
            let denom: u32 = raw.iter().map(|(_, w)| w).sum::<u32>() + 2 * u32::from(partial);
            let mut pts: Vec<(f64, f64)> =
                raw.into_iter().map(|(v, w)| (v as f64, w as f64 / denom as f64)).collect();
            pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            pts.dedup_by_key(|p| p.0);
            Pdf1::discrete(pts).expect("valid discrete pdf")
        },
    )
}

/// A histogram over `[lo, lo + n*width)` with possibly-partial mass and
/// occasional empty buckets.
fn arb_histogram() -> impl Strategy<Value = Pdf1> {
    (-4.0f64..4.0, 0.25f64..2.0, prop::collection::vec(0u32..4, 1..5)).prop_map(
        |(lo, width, weights)| {
            let denom: u32 = weights.iter().sum::<u32>().max(1) + 1;
            let masses: Vec<f64> = weights.iter().map(|&w| w as f64 / denom as f64).collect();
            Pdf1::histogram(lo, width, masses).expect("valid histogram")
        },
    )
}

/// A symbolic pdf (Gaussian, uniform, or exponential), optionally floored
/// over a random region and scaled below full mass — exercising the
/// floor/scale lanes of the symbolic arena.
fn arb_symbolic() -> impl Strategy<Value = Pdf1> {
    let dist = prop_oneof![
        (-3.0f64..3.0, 0.25f64..4.0).prop_map(|(m, v)| Pdf1::gaussian(m, v).unwrap()),
        (-3.0f64..0.0, 0.5f64..3.0).prop_map(|(lo, w)| Pdf1::uniform(lo, lo + w).unwrap()),
        (0.25f64..2.0).prop_map(|r| Pdf1::symbolic(Symbolic::exponential(r).unwrap())),
    ];
    (dist, arb_region(), 0u32..3).prop_map(|(p, region, shrink)| {
        let floored = p.floor_region(&region);
        if shrink == 0 {
            floored.scale(0.75)
        } else {
            floored
        }
    })
}

fn arb_pdf() -> impl Strategy<Value = Pdf1> {
    prop_oneof![arb_discrete(), arb_histogram(), arb_symbolic()]
}

/// A mixed batch of 0..8 records — empty batches are generated
/// organically alongside the dedicated edge-case tests below.
fn arb_pdfs() -> impl Strategy<Value = Vec<Pdf1>> {
    prop::collection::vec(arb_pdf(), 0..8)
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    prop_oneof![
        (-5.0f64..10.0, 0.0f64..6.0).prop_map(|(lo, w)| Interval::new(lo, lo + w)),
        (-5.0f64..10.0).prop_map(Interval::at_least),
        (-5.0f64..10.0).prop_map(Interval::at_most),
        (0.0f64..8.0).prop_map(Interval::point),
    ]
}

fn arb_region() -> impl Strategy<Value = RegionSet> {
    prop::collection::vec((-4.0f64..8.0, 0.0f64..3.0), 0..3).prop_map(|ivs| {
        RegionSet::from_intervals(
            ivs.into_iter().map(|(lo, w)| Interval::new(lo, lo + w)).collect(),
        )
    })
}

/// Packs scalar pdfs into a columnar batch via the row-side entry point.
fn pack(pdfs: &[Pdf1]) -> Pdf1Batch {
    let mut b = Pdf1Batch::new();
    for p in pdfs {
        b.push(p);
    }
    b
}

/// Turns a per-record keep mask into a selection vector; an all-false
/// mask yields the empty (all-filtered) vector.
fn sel_from_mask(mask: &[bool]) -> Vec<u32> {
    mask.iter().enumerate().filter(|(_, &keep)| keep).map(|(i, _)| i as u32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mass_kernel_matches_scalar(pdfs in arb_pdfs()) {
        let batch = pack(&pdfs);
        let mut out = Vec::new();
        batch.mass_into(&mut out);
        prop_assert_eq!(out.len(), pdfs.len());
        for (i, p) in pdfs.iter().enumerate() {
            assert_bits_eq(out[i], p.mass(), &format!("mass[{i}] of {p:?}"));
            assert_bits_eq(batch.mass_at(i), p.mass(), &format!("mass_at({i})"));
        }
    }

    #[test]
    fn mass_sel_kernel_matches_scalar(
        pdfs in prop::collection::vec(arb_pdf(), 1..8),
        mask in prop::collection::vec(prop::bool::ANY, 8..9),
    ) {
        let batch = pack(&pdfs);
        let sel = sel_from_mask(&mask[..pdfs.len()]);
        let mut out = Vec::new();
        batch.mass_sel_into(&sel, &mut out);
        prop_assert_eq!(out.len(), sel.len());
        for (j, &i) in sel.iter().enumerate() {
            assert_bits_eq(out[j], pdfs[i as usize].mass(), &format!("mass_sel slot {j} rec {i}"));
        }
    }

    #[test]
    fn product_mass_kernel_matches_scalar(
        pairs in prop::collection::vec((arb_pdf(), arb_pdf()), 0..6),
    ) {
        let left = pack(&pairs.iter().map(|(a, _)| a.clone()).collect::<Vec<_>>());
        let right = pack(&pairs.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>());
        let mut out = Vec::new();
        left.product_mass_into(&right, &mut out);
        prop_assert_eq!(out.len(), pairs.len());
        for (i, (a, b)) in pairs.iter().enumerate() {
            assert_bits_eq(out[i], a.mass() * b.mass(), &format!("product_mass[{i}]"));
        }
    }

    #[test]
    fn range_prob_kernel_matches_scalar(pdfs in arb_pdfs(), iv in arb_interval()) {
        let batch = pack(&pdfs);
        let mut out = Vec::new();
        batch.range_prob_into(&iv, &mut out);
        prop_assert_eq!(out.len(), pdfs.len());
        for (i, p) in pdfs.iter().enumerate() {
            assert_bits_eq(out[i], p.range_prob(&iv), &format!("range_prob[{i}] over {iv:?}"));
        }
    }

    #[test]
    fn range_prob_sel_kernel_matches_scalar(
        pdfs in prop::collection::vec(arb_pdf(), 1..8),
        mask in prop::collection::vec(prop::bool::ANY, 8..9),
        iv in arb_interval(),
    ) {
        let batch = pack(&pdfs);
        let sel = sel_from_mask(&mask[..pdfs.len()]);
        let mut out = Vec::new();
        batch.range_prob_sel_into(&iv, &sel, &mut out);
        prop_assert_eq!(out.len(), sel.len());
        for (j, &i) in sel.iter().enumerate() {
            assert_bits_eq(
                out[j],
                pdfs[i as usize].range_prob(&iv),
                &format!("range_prob_sel slot {j} rec {i}"),
            );
        }
    }

    #[test]
    fn cumulative_kernel_matches_scalar(pdfs in arb_pdfs(), x in -6.0f64..12.0) {
        let batch = pack(&pdfs);
        let mut out = Vec::new();
        batch.cumulative_into(x, &mut out);
        prop_assert_eq!(out.len(), pdfs.len());
        for (i, p) in pdfs.iter().enumerate() {
            assert_bits_eq(out[i], p.cumulative(x), &format!("cumulative[{i}] at {x}"));
        }
    }

    #[test]
    fn floor_region_kernel_matches_scalar(pdfs in arb_pdfs(), region in arb_region()) {
        let batch = pack(&pdfs);
        let mut out = Pdf1Batch::new();
        batch.floor_region_batch(&region, &mut out);
        prop_assert_eq!(out.len(), pdfs.len());
        for (i, p) in pdfs.iter().enumerate() {
            assert_eq!(out.get(i), p.floor_region(&region), "floor_region[{i}] over {region:?}");
        }
    }

    #[test]
    fn scale_kernel_matches_scalar(pdfs in arb_pdfs(), factor in 0.0f64..1.0) {
        let mut batch = pack(&pdfs);
        batch.scale_all(factor);
        for (i, p) in pdfs.iter().enumerate() {
            assert_eq!(batch.get(i), p.scale(factor), "scale_all[{i}] by {factor}");
        }
    }

    #[test]
    fn marginalize_fold_matches_scalar(
        pdfs in arb_pdfs(),
        raw_dm in prop::collection::vec(-0.5f64..1.5, 8..9),
    ) {
        let mut batch = pack(&pdfs);
        let dm = &raw_dm[..pdfs.len()];
        batch.marginalize_fold(dm);
        for (i, p) in pdfs.iter().enumerate() {
            // The scalar fold used by `JointPdf::marginalize`: dropped
            // blocks scale the kept pdf only when they lose mass.
            let expect = if dm[i] < 1.0 { p.scale(dm[i].max(0.0)) } else { p.clone() };
            assert_eq!(batch.get(i), expect, "marginalize_fold[{}] dm {}", i, dm[i]);
        }
    }

    #[test]
    fn cdf_lane_matches_scalar(zs in prop::collection::vec(-40.0f64..40.0, 0..32)) {
        let mut out = vec![0.0; zs.len()];
        std_normal_cdf_slice(&zs, &mut out);
        for (i, &z) in zs.iter().enumerate() {
            assert_bits_eq(out[i], std_normal_cdf(z), &format!("std_normal_cdf({z})"));
        }
    }
}

/// The cdf lane must route non-finite inputs through the same branches as
/// the scalar function (NaN propagation included, compared bitwise).
#[test]
fn cdf_lane_handles_non_finite() {
    let zs = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1e-300, -37.6, 37.6];
    let mut out = vec![0.0; zs.len()];
    std_normal_cdf_slice(&zs, &mut out);
    for (i, &z) in zs.iter().enumerate() {
        assert_bits_eq(out[i], std_normal_cdf(z), &format!("non-finite lane {z}"));
    }
}

/// One record of each representation, so every kernel's per-kind arm runs
/// with a batch too small to amortize anything.
fn singletons() -> Vec<Pdf1> {
    vec![
        Pdf1::discrete(vec![(1.0, 0.25), (3.0, 0.5)]).unwrap(),
        Pdf1::histogram(0.0, 1.0, vec![0.25, 0.0, 0.5]).unwrap(),
        Pdf1::gaussian(1.0, 2.0)
            .unwrap()
            .floor_region(&RegionSet::from_interval(Interval::new(0.0, 0.5))),
    ]
}

#[test]
fn empty_batch_kernels_produce_empty_outputs() {
    let batch = Pdf1Batch::new();
    let iv = Interval::new(0.0, 2.0);
    let region = RegionSet::from_interval(Interval::at_least(1.0));

    let mut out = vec![0.0; 7];
    batch.mass_into(&mut out);
    assert!(out.is_empty(), "mass_into must clear stale output");
    out.push(9.0);
    batch.mass_sel_into(&[], &mut out);
    assert!(out.is_empty());
    out.push(9.0);
    batch.product_mass_into(&Pdf1Batch::new(), &mut out);
    assert!(out.is_empty());
    out.push(9.0);
    batch.range_prob_into(&iv, &mut out);
    assert!(out.is_empty());
    out.push(9.0);
    batch.range_prob_sel_into(&iv, &[], &mut out);
    assert!(out.is_empty());
    out.push(9.0);
    batch.cumulative_into(0.5, &mut out);
    assert!(out.is_empty());

    let mut floored = pack(&singletons());
    batch.floor_region_batch(&region, &mut floored);
    assert!(floored.is_empty(), "floor_region_batch must clear the output batch");

    let mut mutate = Pdf1Batch::new();
    mutate.scale_all(0.5);
    mutate.marginalize_fold(&[]);
    assert!(mutate.is_empty());
}

#[test]
fn all_filtered_selection_vector_yields_nothing() {
    // A non-empty batch with an empty selection vector: the sel kernels
    // must not touch any record (a panic or stale output here would mean
    // the kernel ignores the selection and scans the whole batch).
    let batch = pack(&singletons());
    let iv = Interval::new(0.0, 2.0);
    let mut out = vec![1.0, 2.0, 3.0];
    batch.mass_sel_into(&[], &mut out);
    assert!(out.is_empty());
    out.push(9.0);
    batch.range_prob_sel_into(&iv, &[], &mut out);
    assert!(out.is_empty());
}

#[test]
fn single_element_batches_match_scalar() {
    let iv = Interval::new(0.5, 2.5);
    let region = RegionSet::from_interval(Interval::new(1.0, 2.0));
    for p in singletons() {
        let batch = pack(std::slice::from_ref(&p));
        let mut out = Vec::new();

        batch.mass_into(&mut out);
        assert_bits_eq(out[0], p.mass(), "single mass");
        batch.mass_sel_into(&[0], &mut out);
        assert_bits_eq(out[0], p.mass(), "single mass_sel");
        batch.range_prob_into(&iv, &mut out);
        assert_bits_eq(out[0], p.range_prob(&iv), "single range_prob");
        batch.range_prob_sel_into(&iv, &[0], &mut out);
        assert_bits_eq(out[0], p.range_prob(&iv), "single range_prob_sel");
        batch.cumulative_into(1.5, &mut out);
        assert_bits_eq(out[0], p.cumulative(1.5), "single cumulative");
        batch.product_mass_into(&batch, &mut out);
        assert_bits_eq(out[0], p.mass() * p.mass(), "single product_mass");

        let mut floored = Pdf1Batch::new();
        batch.floor_region_batch(&region, &mut floored);
        assert_eq!(floored.get(0), p.floor_region(&region), "single floor_region");

        let mut scaled = pack(std::slice::from_ref(&p));
        scaled.scale_all(0.5);
        assert_eq!(scaled.get(0), p.scale(0.5), "single scale_all");

        let mut folded = pack(std::slice::from_ref(&p));
        folded.marginalize_fold(&[0.25]);
        assert_eq!(folded.get(0), p.scale(0.25), "single marginalize_fold");
    }
}
