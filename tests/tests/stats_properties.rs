//! Property tests for the `ANALYZE` statistics collector
//! (`orion_core::stats_catalog`): conservation of histogram mass, the
//! cdf-bound summaries bracketing every per-tuple expectation, and the
//! catalog codec round-tripping bitwise.

use orion_core::prelude::*;
use orion_core::stats_catalog::{EXIST_BUCKETS, SAMPLE_CAP};
use orion_pdf::prelude::Pdf1;
use proptest::prelude::*;

/// One generated uncertain value.
#[derive(Debug, Clone)]
enum GenPdf {
    Gaussian {
        mean: f64,
        var: f64,
    },
    Uniform {
        lo: f64,
        width: f64,
    },
    /// Two-point pmf with total mass `p` (< 1 makes a maybe-tuple).
    Discrete {
        v: f64,
        p: f64,
    },
}

impl GenPdf {
    fn build(&self) -> Pdf1 {
        match *self {
            GenPdf::Gaussian { mean, var } => Pdf1::gaussian(mean, var).unwrap(),
            GenPdf::Uniform { lo, width } => Pdf1::uniform(lo, lo + width).unwrap(),
            GenPdf::Discrete { v, p } => {
                Pdf1::discrete(vec![(v, p * 0.6), (v + 1.5, p * 0.4)]).unwrap()
            }
        }
    }
}

fn arb_pdf() -> impl Strategy<Value = GenPdf> {
    prop_oneof![
        (-50.0..50.0f64, 0.1..9.0f64).prop_map(|(mean, var)| GenPdf::Gaussian { mean, var }),
        (-50.0..50.0f64, 0.5..20.0f64).prop_map(|(lo, width)| GenPdf::Uniform { lo, width }),
        (-50.0..50.0f64, 0.2..1.0f64).prop_map(|(v, p)| GenPdf::Discrete { v, p }),
    ]
}

/// Builds `readings(id INT, v REAL UNCERTAIN)` with one row per pdf.
fn build_relation(pdfs: &[GenPdf]) -> Relation {
    let schema = ProbSchema::new(
        vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
        vec![],
    )
    .unwrap();
    let mut rel = Relation::new("readings", schema);
    let mut reg = HistoryRegistry::new();
    for (i, g) in pdfs.iter().enumerate() {
        rel.insert_simple(&mut reg, &[("id", Value::Int(i as i64))], &[("v", g.build())]).unwrap();
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every histogram collected by ANALYZE accounts for
    /// each live row exactly once — `hist.total + nulls == rows` per
    /// column, and the tuple-existence histogram sums to the row count.
    #[test]
    fn histogram_mass_equals_live_row_count(pdfs in prop::collection::vec(arb_pdf(), 0..40)) {
        let rel = build_relation(&pdfs);
        let ts = analyze_relation(&rel).unwrap();
        prop_assert_eq!(ts.rows, pdfs.len() as u64);
        prop_assert_eq!(ts.exist_hist.len(), EXIST_BUCKETS);
        prop_assert_eq!(ts.exist_hist.iter().sum::<u64>(), ts.rows);
        for c in &ts.columns {
            prop_assert!(
                c.hist.total + c.nulls == ts.rows,
                "column {} histogram loses/duplicates rows", &c.name
            );
            prop_assert_eq!(c.hist.counts.iter().sum::<u64>(), c.hist.total);
        }
        // Expected cardinality never exceeds the physical row count.
        prop_assert!(ts.exist_sum <= ts.rows as f64 + 1e-9);
    }

    /// The cdf-bound summary brackets reality: every per-tuple expected
    /// value lies inside `[lo_min, hi_max]`, the retained-mass counts are
    /// monotone non-increasing across threshold levels, and the sketch
    /// samples at most `SAMPLE_CAP` tuples.
    #[test]
    fn cdf_bounds_contain_expected_values(pdfs in prop::collection::vec(arb_pdf(), 1..40)) {
        let rel = build_relation(&pdfs);
        let ts = analyze_relation(&rel).unwrap();
        let c = ts.columns.iter().find(|c| c.name == "v").unwrap();
        prop_assert!(c.uncertain);
        let b = c.bounds.as_ref().expect("uncertain column has a bounds summary");
        prop_assert!(b.lo_min <= b.hi_max);
        prop_assert!(b.width_mean >= 0.0);
        for ti in 0..rel.len() {
            let ev = rel.marginal(ti, "v").unwrap().expected_value().unwrap();
            prop_assert!(
                b.lo_min - 1e-9 <= ev && ev <= b.hi_max + 1e-9,
                "expected value {} outside [{}, {}]", ev, b.lo_min, b.hi_max
            );
        }
        for w in b.mass_at.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "levels ascend");
            prop_assert!(w[0].1 >= w[1].1, "higher threshold keeps fewer tuples");
        }
        let s = c.sketch.as_ref().expect("uncertain column has a cdf sketch");
        prop_assert!(s.rows.len() <= SAMPLE_CAP);
        prop_assert!(!s.rows.is_empty());
        for row in 0..s.rows.len() {
            // Each sketch row is a cdf: monotone over the grid.
            for g in s.rows[row].windows(2) {
                prop_assert!(g[0] <= g[1] + 1e-9, "cdf row not monotone");
            }
        }
    }

    /// The catalog codec round-trips bitwise (the property recovery
    /// depends on for snapshot/WAL replay of stats records).
    #[test]
    fn table_stats_roundtrip_bitwise(pdfs in prop::collection::vec(arb_pdf(), 0..20)) {
        let rel = build_relation(&pdfs);
        let ts = analyze_relation(&rel).unwrap();
        let decoded = TableStats::decode(&ts.encode()).unwrap();
        prop_assert_eq!(&decoded, &ts);
        prop_assert_eq!(decoded.encode(), ts.encode());
    }
}
