//! Chrome trace-event shape and end-to-end tracing tests.
//!
//! The golden test pins the exported document shape — required keys on
//! every complete event, monotone timestamps, well-formed nesting — against
//! a hand-built span hierarchy on a private tracer. The end-to-end test
//! drives the real pipeline: a durable database commits through the WAL
//! (append / fsync spans), then `EXPLAIN TRACE` runs a selection at 4
//! workers with single-tuple morsels, and the emitted file must validate
//! and carry one lane per worker, morsel spans, and WAL fsync spans.

use orion_obs::{json, validate_chrome_trace, Tracer};

/// Required keys of a Chrome `"X"` event, checked field by field so the
/// shape stays pinned even if the validator loosens later.
const X_KEYS: [&str; 6] = ["ph", "ts", "dur", "pid", "tid", "name"];

#[test]
fn chrome_export_shape_is_golden() {
    let t = Tracer::new();
    t.set_enabled(true);
    t.begin_trace();
    let exec = t.lane("exec");
    let wal = t.lane("wal");
    {
        let mut root = exec.span("query", "exec");
        root.arg("tuples", 8u64);
        for i in 0..3 {
            let mut m = exec.span("morsel", "exec");
            m.arg("morsel", i as u64);
        }
        let _f = wal.span("wal.fsync", "wal");
    }
    let text = t.export_chrome_json().to_string_pretty();
    let doc = json::parse(&text).expect("export parses");
    validate_chrome_trace(&doc).expect("export validates");

    let events = doc.get("traceEvents").and_then(json::Value::as_array).expect("traceEvents array");
    let mut last_ts = 0u64;
    let mut n_complete = 0;
    let mut n_meta = 0;
    for e in events {
        match e.get("ph").and_then(json::Value::as_str).expect("ph key") {
            "M" => {
                n_meta += 1;
                assert_eq!(e.get("name").and_then(json::Value::as_str), Some("thread_name"));
            }
            "X" => {
                n_complete += 1;
                for k in X_KEYS {
                    assert!(e.get(k).is_some(), "X event missing key {k:?}: {e:?}");
                }
                let ts = e.get("ts").and_then(json::Value::as_u64).expect("numeric ts");
                assert!(ts >= last_ts, "ts monotone");
                last_ts = ts;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(n_meta, 2, "one thread_name record per lane");
    assert_eq!(n_complete, 5, "query + 3 morsels + fsync");

    // Nesting: the three morsel spans are children of the query span.
    let query = events
        .iter()
        .find(|e| e.get("name").and_then(json::Value::as_str) == Some("query"))
        .expect("query span");
    let (q_ts, q_dur) = (
        query.get("ts").and_then(json::Value::as_u64).unwrap(),
        query.get("dur").and_then(json::Value::as_u64).unwrap(),
    );
    for e in events {
        if e.get("name").and_then(json::Value::as_str) != Some("morsel") {
            continue;
        }
        let ts = e.get("ts").and_then(json::Value::as_u64).unwrap();
        let dur = e.get("dur").and_then(json::Value::as_u64).unwrap();
        assert!(ts >= q_ts && ts + dur <= q_ts + q_dur, "morsel inside query");
    }
}

#[test]
fn explain_trace_end_to_end_records_workers_wal_and_morsels() {
    use orion_core::prelude::*;
    use orion_pdf::prelude::Pdf1;
    use orion_sql::exec::{Database, Output};

    // Enable the process-wide tracer up front (idempotent under
    // `ORION_TRACE=1`) so the WAL workload below records its spans.
    Tracer::global().set_enabled(true);

    // A durable workload: every insert commits through the group WAL, so
    // the tracer picks up wal.append / wal.fsync spans.
    let dir = std::env::temp_dir().join("orion_trace_shape_e2e");
    std::fs::remove_dir_all(&dir).ok();
    let mut ddb = orion_core::durable::DurableDb::open(&dir).expect("open durable db");
    let schema = ProbSchema::new(
        vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
        vec![],
    )
    .expect("schema");
    ddb.create_table("s", schema).expect("create");
    for i in 0..4 {
        ddb.insert_simple(
            "s",
            &[("id", Value::Int(i))],
            &[("v", Pdf1::gaussian(f64::from(i as i32), 1.0).expect("pdf"))],
        )
        .expect("durable insert");
    }
    drop(ddb);

    // EXPLAIN TRACE at 4 workers with single-tuple morsels: the selection
    // is forced down the parallel path, so the trace must carry one lane
    // per worker and a span per morsel claim.
    let trace_file = dir.join("explain.trace.json");
    std::env::set_var("ORION_TRACE_FILE", &trace_file);
    let opts = ExecOptions { threads: 4, morsel_size: 1, ..ExecOptions::default() };
    let mut db = Database::with_options(opts);
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").expect("create");
    db.execute(
        "INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), \
         (3, GAUSSIAN(13, 1)), (4, GAUSSIAN(30, 2)), (5, GAUSSIAN(17, 3)), \
         (6, GAUSSIAN(22, 2)), (7, GAUSSIAN(11, 1)), (8, GAUSSIAN(28, 4))",
    )
    .expect("insert");
    let out = db
        .execute("EXPLAIN TRACE SELECT rid FROM readings WHERE value < 20")
        .expect("explain trace");
    let Output::Explain { trace: Some(info), .. } = out else { panic!("expected trace info") };
    assert_eq!(
        std::path::Path::new(&info.path),
        trace_file.as_path(),
        "ORION_TRACE_FILE is honored"
    );
    std::env::remove_var("ORION_TRACE_FILE");

    let text = std::fs::read_to_string(&trace_file).expect("trace file written");
    let doc = json::parse(&text).expect("trace parses");
    validate_chrome_trace(&doc).expect("trace validates");

    let events = doc.get("traceEvents").and_then(json::Value::as_array).expect("traceEvents array");
    let lane_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    for w in 0..4 {
        let name = format!("worker-{w}");
        assert!(lane_names.iter().any(|n| *n == name), "missing lane {name}: {lane_names:?}");
    }
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name")?.as_str())
        .collect();
    assert!(span_names.contains(&"morsel"), "no morsel spans: {span_names:?}");
    assert!(span_names.contains(&"wal.fsync"), "no WAL fsync spans: {span_names:?}");
    assert!(span_names.contains(&"wal.append"), "no WAL append spans: {span_names:?}");
    assert!(span_names.contains(&"Select"), "no operator spans: {span_names:?}");

    // The span tree the SQL layer reports names the worker lanes too.
    assert!(info.tree.contains("worker-0"), "tree:\n{}", info.tree);

    if !orion_obs::trace::env_trace_enabled() {
        Tracer::global().set_enabled(false);
    }
    std::fs::remove_dir_all(&dir).ok();
}
