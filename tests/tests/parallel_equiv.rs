//! Parallel-execution equivalence: on randomly generated discrete
//! databases and randomly composed plans, morsel-driven execution must be
//! **bit-identical** to serial execution at any thread count — same result
//! tuples (certain values, pdf values, history ids), same registry
//! contents and reference counts, same existence probabilities — and the
//! serial result itself must conform to brute-force possible-worlds
//! enumeration (Theorems 1 and 2), so the whole family is certified
//! against one oracle.

use orion_core::collapse;
use orion_core::plan::{execute, Plan};
use orion_core::prelude::*;
use orion_core::pws::{conformance_report, distribution_distance};
use orion_pdf::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const TOL: f64 = 1e-9;

/// Thread counts exercised against the serial baseline. Morsel size is
/// forced to 2 so even the tiny generated relations split into many
/// morsels.
const THREADS: [usize; 3] = [2, 4, 8];

fn opts_with(threads: usize) -> ExecOptions {
    ExecOptions { threads, morsel_size: 2, ..ExecOptions::default() }
}

/// A generated uncertain attribute: up to 3 integer support points, with
/// an optional missing share (partial pdf).
fn arb_discrete_pdf() -> impl Strategy<Value = Pdf1> {
    (prop::collection::vec((0i64..6, 1u32..5), 1..3), prop::bool::ANY).prop_map(|(raw, partial)| {
        let denom: u32 = raw.iter().map(|(_, w)| w).sum::<u32>() + u32::from(partial);
        let points: Vec<(f64, f64)> =
            raw.into_iter().map(|(v, w)| (v as f64, w as f64 / denom as f64)).collect();
        Pdf1::discrete(points).expect("valid pdf")
    })
}

/// A generated joint 2-attribute pdf (correlated dependency set).
fn arb_joint2() -> impl Strategy<Value = JointPdf> {
    prop::collection::vec(((0i64..4, 0i64..4), 1u32..4), 1..4).prop_map(|raw| {
        let denom: u32 = raw.iter().map(|(_, w)| w).sum();
        let pts: Vec<(Vec<f64>, f64)> = raw
            .into_iter()
            .map(|((a, b), w)| (vec![a as f64, b as f64], w as f64 / denom as f64))
            .collect();
        JointPdf::from_points(JointDiscrete::from_points(2, pts).expect("valid joint"))
    })
}

#[derive(Debug, Clone)]
enum TupleSpec {
    Independent(Pdf1, Pdf1),
    Correlated(JointPdf),
}

fn arb_tuple_spec() -> impl Strategy<Value = TupleSpec> {
    prop_oneof![
        (arb_discrete_pdf(), arb_discrete_pdf()).prop_map(|(a, b)| TupleSpec::Independent(a, b)),
        arb_joint2().prop_map(TupleSpec::Correlated),
    ]
}

fn arb_tuples() -> impl Strategy<Value = Vec<TupleSpec>> {
    prop::collection::vec(arb_tuple_spec(), 3..7)
}

/// One `T(id, a, b)` schema per generated database, shared (cloned) by
/// every thread-count run so attribute ids — recorded inside the result
/// tuples — line up across runs.
fn shared_schema() -> ProbSchema {
    ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("a", ColumnType::Int, true),
            ("b", ColumnType::Int, true),
        ],
        vec![],
    )
    .expect("valid schema")
}

/// Materializes one table set + fresh registry from the specs. Each run
/// gets its own registry, so serial and parallel runs assign history ids
/// from the same starting point.
fn build(
    schemas: &[(&str, &ProbSchema)],
    specs: &[Vec<TupleSpec>],
) -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let mut tables = HashMap::new();
    for ((name, schema), tuples) in schemas.iter().zip(specs) {
        let mut rel = Relation::new(*name, (*schema).clone());
        for (i, spec) in tuples.iter().enumerate() {
            match spec {
                TupleSpec::Independent(a, b) => rel
                    .insert(
                        &mut reg,
                        &[("id", Value::Int(i as i64))],
                        vec![
                            (vec!["a"], JointPdf::from_pdf1(a.clone())),
                            (vec!["b"], JointPdf::from_pdf1(b.clone())),
                        ],
                    )
                    .expect("insert"),
                TupleSpec::Correlated(j) => rel
                    .insert(
                        &mut reg,
                        &[("id", Value::Int(i as i64))],
                        vec![(vec!["a", "b"], j.clone())],
                    )
                    .expect("insert"),
            }
        }
        tables.insert(name.to_string(), rel);
    }
    (tables, reg)
}

/// A random comparison predicate over `a` / `b`.
fn arb_pred() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    prop_oneof![
        (op.clone(), 0i64..6).prop_map(|(o, c)| Predicate::cmp("a", o, c)),
        (op.clone(), 0i64..6).prop_map(|(o, c)| Predicate::cmp("b", o, c)),
        op.clone().prop_map(|o| Predicate::cmp_cols("a", o, "b")),
        (op.clone(), op).prop_map(|(o1, o2)| {
            Predicate::And(vec![Predicate::cmp("a", o1, 2i64), Predicate::cmp("b", o2, 2i64)])
        }),
    ]
}

/// A compact fingerprint of the registry: base count, highest id, and the
/// reference count of every live id.
fn registry_fingerprint(reg: &HistoryRegistry) -> (usize, u64, Vec<(u64, usize)>) {
    let mut refs: Vec<(u64, usize)> =
        reg.iter_bases().map(|(id, _)| (id, reg.ref_count(id))).collect();
    refs.sort_unstable();
    (reg.len(), reg.last_id(), refs)
}

/// Runs the plan serially and at every thread count in [`THREADS`], each
/// over a freshly built copy of the database, and asserts the outputs are
/// bit-identical: tuples, registry fingerprint, existence probabilities.
fn assert_parallel_equivalent(
    plan: &Plan,
    schemas: &[(&str, &ProbSchema)],
    specs: &[Vec<TupleSpec>],
) {
    let (tables, mut reg) = build(schemas, specs);
    let serial = execute(plan, &tables, &mut reg, &opts_with(1)).expect("serial run");
    let serial_fp = registry_fingerprint(&reg);
    let serial_probs: Vec<f64> = serial
        .tuples
        .iter()
        .map(|t| collapse::existence_prob(t, &reg, 64).expect("existence"))
        .collect();

    for threads in THREADS {
        let (tables, mut reg) = build(schemas, specs);
        let par = execute(plan, &tables, &mut reg, &opts_with(threads)).expect("parallel run");
        assert_eq!(par.tuples, serial.tuples, "threads={threads}, plan={plan:?}");
        assert_eq!(registry_fingerprint(&reg), serial_fp, "threads={threads}, plan={plan:?}");
        let probs: Vec<f64> = par
            .tuples
            .iter()
            .map(|t| collapse::existence_prob(t, &reg, 64).expect("existence"))
            .collect();
        // Identical tuples + identical registries make these identical
        // bit patterns, not merely close.
        assert_eq!(probs, serial_probs, "threads={threads}, plan={plan:?}");
    }
}

/// PWS oracle on a fresh copy (threshold-free plans only).
fn assert_pws_conforms(plan: &Plan, schemas: &[(&str, &ProbSchema)], specs: &[Vec<TupleSpec>]) {
    let (tables, mut reg) = build(schemas, specs);
    let (truth, engine) =
        conformance_report(plan, &tables, &mut reg, &opts_with(1)).expect("both engines run");
    let d = distribution_distance(&truth, &engine);
    assert!(d < TOL, "PWS deviation {d} for plan {plan:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn selection_is_thread_count_invariant(specs in arb_tuples(), pred in arb_pred()) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::scan("t").select(pred);
        assert_parallel_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
        assert_pws_conforms(&plan, &schemas, &[specs]);
    }

    #[test]
    fn select_project_is_thread_count_invariant(specs in arb_tuples(), pred in arb_pred()) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::scan("t").select(pred).project(&["id", "a"]);
        assert_parallel_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
        assert_pws_conforms(&plan, &schemas, &[specs]);
    }

    #[test]
    fn join_is_thread_count_invariant(
        l in arb_tuples(),
        r in arb_tuples(),
        op in prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Eq), Just(CmpOp::Ge)],
    ) {
        let (sl, sr) = (shared_schema(), shared_schema());
        let schemas = [("l", &sl), ("r", &sr)];
        let pred = Predicate::cmp_cols("a", op, "b");
        let plan = Plan::scan("l").project(&["id", "a"]).join_on(
            Plan::scan("r").project(&["id", "b"]),
            Some(pred),
        );
        assert_parallel_equivalent(&plan, &schemas, &[l.clone(), r.clone()]);
    }

    #[test]
    fn equi_join_is_thread_count_invariant(l in arb_tuples(), r in arb_tuples()) {
        // Certain equi-join: exercises the hash path and the nested-loop
        // prefilter's pruning accounting under parallel probing.
        let (sl, sr) = (shared_schema(), shared_schema());
        let schemas = [("l", &sl), ("r", &sr)];
        let pred = Predicate::And(vec![
            Predicate::cmp_cols("pi(l).id", CmpOp::Eq, "pi(r).id"),
            Predicate::cmp_cols("a", CmpOp::Le, "b"),
        ]);
        let plan = Plan::scan("l").project(&["id", "a"]).join_on(
            Plan::scan("r").project(&["id", "b"]),
            Some(pred),
        );
        assert_parallel_equivalent(&plan, &schemas, &[l, r]);
    }

    #[test]
    fn threshold_attrs_is_thread_count_invariant(specs in arb_tuples(), p in 0u32..10) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::ThresholdAttrs(
            Box::new(Plan::scan("t")),
            vec!["a".into()],
            CmpOp::Gt,
            f64::from(p) / 10.0,
        );
        assert_parallel_equivalent(&plan, &schemas, &[specs]);
    }

    #[test]
    fn threshold_pred_is_thread_count_invariant(
        specs in arb_tuples(),
        pred in arb_pred(),
        p in 0u32..10,
    ) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::ThresholdPred(
            Box::new(Plan::scan("t")),
            pred,
            CmpOp::Ge,
            f64::from(p) / 10.0,
        );
        assert_parallel_equivalent(&plan, &schemas, &[specs]);
    }

    #[test]
    fn tracing_is_bitwise_invisible(specs in arb_tuples(), pred in arb_pred()) {
        // Tracing is record-only: a run with an enabled tracer attached
        // must be bitwise identical to the untraced run — same tuples,
        // same registry fingerprint — at serial and parallel thread
        // counts, while still recording spans.
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::scan("t").select(pred).project(&["id", "a"]);
        for threads in [1usize, 4] {
            let (tables, mut reg) = build(&schemas, std::slice::from_ref(&specs));
            let plain = execute(&plan, &tables, &mut reg, &opts_with(threads))
                .expect("untraced run");
            let plain_fp = registry_fingerprint(&reg);

            let tracer = orion_obs::Tracer::new();
            tracer.set_enabled(true);
            let (tables, mut reg) = build(&schemas, std::slice::from_ref(&specs));
            let opts = opts_with(threads).with_trace(tracer.clone());
            let traced = execute(&plan, &tables, &mut reg, &opts).expect("traced run");
            prop_assert_eq!(&traced.tuples, &plain.tuples);
            prop_assert_eq!(registry_fingerprint(&reg), plain_fp);
            prop_assert!(!tracer.events().is_empty(), "tracer recorded spans");
        }
    }

    #[test]
    fn fig3_pipeline_is_thread_count_invariant(specs in arb_tuples(), thresh in 0i64..5) {
        // The history-heavy shape: two projections of the same table,
        // rejoined. Recombination through common ancestors must commute
        // with morsel-parallel execution.
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let ta = Plan::scan("t").project(&["id", "a"]);
        let tb = Plan::scan("t")
            .select(Predicate::cmp("b", CmpOp::Gt, thresh))
            .project(&["id", "b"]);
        let plan = ta.join_on(
            tb,
            Some(Predicate::cmp_cols("pi(t).id", CmpOp::Eq, "pi(sigma(t)).id")),
        );
        assert_parallel_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
        assert_pws_conforms(&plan, &schemas, &[specs]);
    }
}

/// Bulk insertion must assign the same history ids a serial load would.
#[test]
fn bulk_insert_id_protocol_matches_serial() {
    let schema = ProbSchema::new(
        vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
        vec![],
    )
    .unwrap();
    let row = |i: usize| BulkRow {
        certain: vec![("id".into(), Value::Int(i as i64))],
        uncertain: vec![(
            vec!["x".into()],
            JointPdf::from_pdf1(Pdf1::gaussian(i as f64, 1.0 + i as f64).unwrap()),
        )],
    };
    let mut serial_reg = HistoryRegistry::new();
    let mut serial = Relation::new("t", schema.clone());
    for i in 0..50 {
        let r = row(i);
        let certain: Vec<(&str, Value)> =
            r.certain.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let uncertain = r
            .uncertain
            .iter()
            .map(|(ns, j)| (ns.iter().map(|s| s.as_str()).collect(), j.clone()))
            .collect();
        serial.insert(&mut serial_reg, &certain, uncertain).unwrap();
    }
    for threads in [1, 2, 4, 8] {
        let mut reg = HistoryRegistry::new();
        let mut rel = Relation::new("t", schema.clone());
        insert_batch(&mut rel, &mut reg, &opts_with(threads), 50, row).unwrap();
        assert_eq!(rel.tuples, serial.tuples, "threads={threads}");
        assert_eq!(
            registry_fingerprint(&reg),
            registry_fingerprint(&serial_reg),
            "threads={threads}"
        );
    }
}

/// The parallel Monte-Carlo sampler is a pure function of (seed, threads).
#[test]
fn parallel_monte_carlo_is_reproducible() {
    use orion_core::monte_carlo::mc_key_distribution_par;
    let schema = shared_schema();
    let specs = vec![vec![
        TupleSpec::Independent(
            Pdf1::discrete(vec![(1.0, 0.5), (3.0, 0.5)]).unwrap(),
            Pdf1::discrete(vec![(2.0, 0.7)]).unwrap(),
        ),
        TupleSpec::Independent(
            Pdf1::discrete(vec![(0.0, 0.25), (4.0, 0.75)]).unwrap(),
            Pdf1::discrete(vec![(1.0, 1.0)]).unwrap(),
        ),
    ]];
    let (tables, _) = build(&[("t", &schema)], &specs);
    let plan = Plan::scan("t").select(Predicate::cmp_cols("a", CmpOp::Lt, "b"));
    let a = mc_key_distribution_par(&plan, &tables, 4000, 11, 4).unwrap();
    let b = mc_key_distribution_par(&plan, &tables, 4000, 11, 4).unwrap();
    assert_eq!(a.len(), b.len());
    for (k, pa) in &a {
        assert_eq!(b.get(k), Some(pa));
    }
}
