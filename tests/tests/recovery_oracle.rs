//! Crash-recovery oracle: a differential test between [`DurableDb`] and a
//! plain in-memory model applying the identical workload.
//!
//! Each scenario runs a randomized (or scripted) sequence of operations —
//! table creation, simple and joint-pdf inserts, `ANALYZE` stats
//! collection, full and incremental checkpoints — against both sides,
//! recording the oracle's *canonical
//! fingerprint* after every operation that commits a WAL record. It then
//! simulates a crash at **every byte offset** of the surviving write-ahead
//! log: for each cut it reconstructs the on-disk state (snapshot + delta
//! chain + truncated WAL), recovers, and asserts the recovered database is
//! bit-identical (relations, dependency-set joints, ancestor sets, base
//! refcounts, existence masses) to the oracle at exactly the number of
//! operations whose commit frame fits in the surviving prefix. Recovery
//! must also be idempotent: a second open lands on the same fingerprint.
//!
//! The fingerprint canonicalizes identities that legitimately differ
//! between two runs — attribute ids come from a process-global allocator
//! and pdf ids are remapped to first-seen dense order — so the comparison
//! checks logical state, not allocator accidents.
//!
//! Set `ORION_ORACLE_SEED` to replay `oracle_env_seeded_workload` with a
//! specific seed (used by `scripts/check.sh` to pin three seeds in CI).

use orion_core::durable::{DurableDb, SNAPSHOT_FILE, WAL_FILE};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::codec::encode_joint;
use orion_storage::DeltaFile;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directories across proptest cases within one process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_recovery_oracle").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn oracle_schema() -> ProbSchema {
    ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("x", ColumnType::Real, true),
            ("y", ColumnType::Real, true),
        ],
        vec![],
    )
    .unwrap()
}

/// One step of the differential workload.
#[derive(Debug, Clone)]
enum Op {
    /// Create table `t{0}` (skipped on both sides if it already exists).
    Create(u8),
    /// Insert with two independent per-column pdfs.
    Simple { table: u8, key: i64, mean: f64 },
    /// Insert with one correlated two-dimensional dependency set whose
    /// total mass is < 1 (a maybe-tuple, exercising existence mass).
    Joint { table: u8, key: i64, p: f64 },
    /// `ANALYZE t{0}`: collect stats into the catalog (WAL tag 5; skipped
    /// on both sides if the table does not exist).
    Analyze(u8),
    /// Full checkpoint: snapshot everything, drop the delta chain.
    Full,
    /// Incremental checkpoint: delta-file only the dirty pages.
    Incremental,
}

fn table_name(i: u8) -> String {
    format!("t{i}")
}

fn simple_pdfs(mean: f64) -> [(&'static str, Pdf1); 2] {
    [
        ("x", Pdf1::gaussian(mean, 1.0).unwrap()),
        ("y", Pdf1::discrete(vec![(mean.floor(), 0.5), (mean.floor() + 1.0, 0.5)]).unwrap()),
    ]
}

fn joint_pdf(key: i64, p: f64) -> JointPdf {
    // Mass p < 1: the tuple only probably exists.
    JointPdf::from_points(
        JointDiscrete::from_points(
            2,
            vec![
                (vec![key as f64, key as f64 + 1.0], p * 0.7),
                (vec![key as f64 + 2.0, key as f64 - 1.0], p * 0.3),
            ],
        )
        .unwrap(),
    )
}

/// Applies `op` to the in-memory oracle. Returns `true` iff the same op
/// commits a WAL record on the durable side.
fn apply_oracle(
    tables: &mut HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    stats: &mut StatsCatalog,
    op: &Op,
) -> bool {
    match op {
        Op::Create(i) => {
            let name = table_name(*i);
            if tables.contains_key(&name) {
                return false;
            }
            tables.insert(name.clone(), Relation::new(name, oracle_schema()));
            true
        }
        Op::Simple { table, key, mean } => {
            let Some(rel) = tables.get_mut(&table_name(*table)) else { return false };
            let [x, y] = simple_pdfs(*mean);
            rel.insert_simple(reg, &[("id", Value::Int(*key))], &[x, y]).unwrap();
            true
        }
        Op::Joint { table, key, p } => {
            let Some(rel) = tables.get_mut(&table_name(*table)) else { return false };
            rel.insert(
                reg,
                &[("id", Value::Int(*key))],
                vec![(vec!["x", "y"], joint_pdf(*key, *p))],
            )
            .unwrap();
            true
        }
        Op::Analyze(i) => {
            let Some(rel) = tables.get(&table_name(*i)) else { return false };
            stats.insert(analyze_relation(rel).unwrap());
            true
        }
        Op::Full | Op::Incremental => false,
    }
}

/// Applies `op` to the durable side, mirroring the oracle's skip rules.
/// Returns `true` iff the op committed a WAL record.
fn apply_db(db: &mut DurableDb, op: &Op) -> bool {
    match op {
        Op::Create(i) => {
            let name = table_name(*i);
            if db.tables().contains_key(&name) {
                return false;
            }
            db.create_table(&name, oracle_schema()).unwrap();
            true
        }
        Op::Simple { table, key, mean } => {
            let name = table_name(*table);
            if !db.tables().contains_key(&name) {
                return false;
            }
            let [x, y] = simple_pdfs(*mean);
            db.insert_simple(&name, &[("id", Value::Int(*key))], &[x, y]).unwrap();
            true
        }
        Op::Joint { table, key, p } => {
            let name = table_name(*table);
            if !db.tables().contains_key(&name) {
                return false;
            }
            db.insert(
                &name,
                &[("id", Value::Int(*key))],
                vec![(vec!["x", "y"], joint_pdf(*key, *p))],
            )
            .unwrap();
            true
        }
        Op::Analyze(i) => {
            let name = table_name(*i);
            if !db.tables().contains_key(&name) {
                return false;
            }
            db.analyze_table(&name).unwrap();
            true
        }
        Op::Full => {
            db.checkpoint().unwrap();
            false
        }
        Op::Incremental => {
            db.checkpoint_incremental().unwrap();
            false
        }
    }
}

/// Canonical fingerprint of a database state, invariant under the two
/// identity allocators that differ across runs:
///
/// * attribute ids are replaced by `table.column` names;
/// * pdf ids are remapped to dense first-seen order over a deterministic
///   walk (tables by name, tuples in order, dims then ancestors).
///
/// Covers schemas, certain values, per-node joints (exact encoded bytes,
/// so probability masses are compared bit-for-bit), ancestor sets, tuple
/// existence masses, and — for every base reachable from some tuple — its
/// attribute list, joint, phantom flag and refcount. Unreachable bases
/// (a replayed base record whose tuple frame died in the crash) are
/// deliberately invisible: they are logically unobservable garbage.
fn fingerprint(
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
) -> String {
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    let mut attr_names: HashMap<AttrId, String> = HashMap::new();
    for name in &names {
        for c in tables[*name].schema.columns() {
            attr_names.insert(c.id, format!("{name}.{}", c.name));
        }
    }
    let col = |id: &AttrId| attr_names.get(id).cloned().unwrap_or_else(|| format!("?{id}"));

    let mut remap: HashMap<PdfId, usize> = HashMap::new();
    let mut seen: Vec<PdfId> = Vec::new();
    let dense = |id: PdfId, remap: &mut HashMap<PdfId, usize>, seen: &mut Vec<PdfId>| {
        *remap.entry(id).or_insert_with(|| {
            seen.push(id);
            seen.len() - 1
        })
    };

    let mut out = String::new();
    for name in &names {
        let rel = &tables[*name];
        write!(out, "table {name} schema=[").unwrap();
        for c in rel.schema.columns() {
            write!(out, "({} {:?} u={})", c.name, c.ty, c.uncertain).unwrap();
        }
        let deps: Vec<Vec<String>> =
            rel.schema.deps().iter().map(|g| g.iter().map(&col).collect()).collect();
        writeln!(out, "] deps={deps:?}").unwrap();
        for t in &rel.tuples {
            let mut nodes: Vec<String> = Vec::with_capacity(t.nodes.len());
            for n in &t.nodes {
                let dims: Vec<String> = n
                    .dims
                    .iter()
                    .map(|d| {
                        let base = dense(d.var.base, &mut remap, &mut seen);
                        let vis = d.column.as_ref().map(&col);
                        format!("b{base}.{}:{vis:?}", d.var.dim)
                    })
                    .collect();
                let anc: Vec<usize> =
                    n.ancestors.iter().map(|&a| dense(a, &mut remap, &mut seen)).collect();
                let mut joint = Vec::new();
                encode_joint(&n.joint, &mut joint);
                nodes.push(format!("dims={dims:?} anc={anc:?} joint={}", hex(&joint)));
            }
            nodes.sort(); // node order within a tuple is not significant
            writeln!(
                out,
                "  tuple certain={:?} exists={:.12e} nodes={nodes:?}",
                t.certain,
                t.naive_existence()
            )
            .unwrap();
        }
    }
    for (i, raw) in seen.iter().enumerate() {
        let b = reg.base(*raw).expect("reachable base must be registered");
        let attrs: Vec<String> = b.attrs.iter().map(&col).collect();
        let mut joint = Vec::new();
        encode_joint(&b.joint, &mut joint);
        writeln!(
            out,
            "base b{i} attrs={attrs:?} phantom={} refs={} joint={}",
            b.phantom,
            reg.ref_count(*raw),
            hex(&joint)
        )
        .unwrap();
    }
    // The stats catalog must survive crashes bitwise: compare its exact
    // snapshot encoding.
    writeln!(out, "stats {}", hex(&stats.encode())).unwrap();
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().fold(String::with_capacity(bytes.len() * 2), |mut s, b| {
        write!(s, "{b:02x}").unwrap();
        s
    })
}

/// Number of operations whose *commit frame* (schema tag 1, tuple tag 3,
/// or stats tag 5) fits entirely inside `bytes[..cut]`. Mirrors the replay
/// rule: parsing stops at the first incomplete frame; base (2) and epoch
/// (4) frames do not complete an operation by themselves.
fn committed_ops(bytes: &[u8], cut: usize) -> usize {
    let mut off = 0usize;
    let mut ops = 0;
    while off + 8 <= cut {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > cut {
            break;
        }
        if matches!(bytes[off + 8], 1 | 3 | 5) {
            ops += 1;
        }
        off += 8 + len;
    }
    ops
}

/// Runs `ops` against both sides under `dir`. Returns the oracle
/// fingerprints indexed by *operations committed since the last
/// checkpoint*: `fps[0]` is the state baked into the snapshot chain,
/// `fps[k]` the state after `k` further committed operations (the WAL).
fn run_workload(dir: &Path, ops: &[Op]) -> Vec<String> {
    let mut db = DurableDb::open(dir).unwrap();
    let mut tables: HashMap<String, Relation> = HashMap::new();
    let mut reg = HistoryRegistry::new();
    let mut stats = StatsCatalog::new();
    let mut fps = vec![fingerprint(&tables, &reg, &stats)];
    for op in ops {
        let committed = apply_db(&mut db, op);
        match op {
            Op::Full | Op::Incremental => {
                // Checkpoints move the baseline: the WAL restarts empty.
                fps = vec![fingerprint(&tables, &reg, &stats)];
            }
            _ => {
                assert_eq!(
                    committed,
                    apply_oracle(&mut tables, &mut reg, &mut stats, op),
                    "skip rules agree"
                );
                if committed {
                    fps.push(fingerprint(&tables, &reg, &stats));
                }
            }
        }
    }
    // Live database and oracle agree before any crash is simulated.
    assert_eq!(
        fingerprint(db.tables(), db.registry(), db.stats_catalog()),
        *fps.last().unwrap(),
        "live state diverged"
    );
    db.check_invariants().unwrap();
    fps
}

/// The matrix itself: crash at every byte of the WAL left under `src` and
/// assert recovery lands exactly on the oracle fingerprint for the
/// surviving committed prefix — twice (idempotence).
fn crash_matrix(src: &Path, fps: &[String], scratch: &Path) {
    let wal = std::fs::read(src.join(WAL_FILE)).unwrap_or_default();
    let snapshot = std::fs::read(src.join(SNAPSHOT_FILE)).ok();
    let deltas: Vec<(PathBuf, Vec<u8>)> = DeltaFile::list(src)
        .unwrap()
        .into_iter()
        .map(|(_, p)| {
            let bytes = std::fs::read(&p).unwrap();
            (PathBuf::from(p.file_name().unwrap()), bytes)
        })
        .collect();
    for cut in 0..=wal.len() {
        std::fs::remove_dir_all(scratch).ok();
        std::fs::create_dir_all(scratch).unwrap();
        if let Some(snap) = &snapshot {
            std::fs::write(scratch.join(SNAPSHOT_FILE), snap).unwrap();
        }
        for (name, bytes) in &deltas {
            std::fs::write(scratch.join(name), bytes).unwrap();
        }
        std::fs::write(scratch.join(WAL_FILE), &wal[..cut]).unwrap();
        let k = committed_ops(&wal, cut);
        let db = DurableDb::open(scratch)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(
            fingerprint(db.tables(), db.registry(), db.stats_catalog()),
            fps[k],
            "recovered state != oracle after {k} ops (cut at byte {cut}/{})",
            wal.len()
        );
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
        drop(db);
        let db = DurableDb::open(scratch).unwrap();
        assert_eq!(
            fingerprint(db.tables(), db.registry(), db.stats_catalog()),
            fps[k],
            "second recovery diverged (cut at byte {cut})"
        );
        assert_eq!(db.recovery().wal_bytes_truncated, 0, "second open must find a clean log");
    }
    std::fs::remove_dir_all(scratch).ok();
}

/// End-to-end: run the workload, then grind the matrix.
fn run_oracle(name: &str, ops: &[Op]) {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let src = temp_dir(&format!("{name}_{n}_src"));
    let scratch =
        std::env::temp_dir().join("orion_recovery_oracle").join(format!("{name}_{n}_cut"));
    let fps = run_workload(&src, ops);
    crash_matrix(&src, &fps, &scratch);
    std::fs::remove_dir_all(&src).ok();
}

#[test]
fn oracle_wal_only_matrix() {
    run_oracle(
        "wal_only",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.5 },
            Op::Joint { table: 0, key: 2, p: 0.8 },
            Op::Create(1),
            Op::Simple { table: 1, key: 3, mean: -2.0 },
        ],
    );
}

#[test]
fn oracle_full_checkpoint_matrix() {
    run_oracle(
        "full_ckpt",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 1.0 },
            Op::Joint { table: 0, key: 2, p: 0.6 },
            Op::Full,
            Op::Simple { table: 0, key: 3, mean: 2.0 },
            Op::Create(1),
            Op::Joint { table: 1, key: 4, p: 0.3 },
        ],
    );
}

#[test]
fn oracle_incremental_chain_matrix() {
    run_oracle(
        "incr_chain",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.0 },
            Op::Full,
            Op::Simple { table: 0, key: 2, mean: 1.0 },
            Op::Incremental,
            Op::Create(1),
            Op::Joint { table: 1, key: 3, p: 0.5 },
            Op::Incremental,
            Op::Simple { table: 1, key: 4, mean: -1.0 },
            Op::Joint { table: 0, key: 5, p: 0.9 },
        ],
    );
}

#[test]
fn oracle_analyze_survives_every_cut() {
    // ANALYZE → crash → recover must yield a bitwise-identical stats
    // catalog at every WAL cut: stats committed via tag-5 frames replay
    // like data, re-ANALYZE after more inserts overwrites, and a full
    // checkpoint bakes the catalog into the snapshot.
    run_oracle(
        "analyze",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.5 },
            Op::Joint { table: 0, key: 2, p: 0.8 },
            Op::Analyze(0),
            Op::Simple { table: 0, key: 3, mean: 2.5 },
            Op::Analyze(0),
            Op::Full,
            Op::Create(1),
            Op::Analyze(1),
            Op::Simple { table: 1, key: 4, mean: -1.0 },
        ],
    );
}

#[test]
fn oracle_incremental_without_base_matrix() {
    // The first incremental checkpoint has no base snapshot and must fall
    // back to a full one; the chain then grows from it.
    run_oracle(
        "incr_bootstrap",
        &[
            Op::Create(0),
            Op::Joint { table: 0, key: 1, p: 0.7 },
            Op::Incremental,
            Op::Simple { table: 0, key: 2, mean: 3.0 },
            Op::Incremental,
            Op::Simple { table: 0, key: 3, mean: 4.0 },
        ],
    );
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..2).prop_map(|i| Op::Create(i as u8)),
        (0u32..2, 0i64..100, -5.0..5.0f64).prop_map(|(table, key, mean)| Op::Simple {
            table: table as u8,
            key,
            mean
        }),
        (0u32..2, 0i64..100, 0.05..0.95f64).prop_map(|(table, key, p)| Op::Joint {
            table: table as u8,
            key,
            p
        }),
        (0u32..2).prop_map(|i| Op::Analyze(i as u8)),
        Just(Op::Full),
        Just(Op::Incremental),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn oracle_random_workloads_survive_every_cut(tail in prop::collection::vec(arb_op(), 3..10)) {
        // Guarantee at least one table and one committed record so every
        // case exercises the matrix, then append the random tail.
        let mut ops = vec![Op::Create(0), Op::Simple { table: 0, key: -1, mean: 0.0 }];
        ops.extend(tail);
        run_oracle("random", &ops);
    }
}

/// Seeded entry point for CI: `scripts/check.sh` runs this with three
/// pinned `ORION_ORACLE_SEED` values; unset, it uses a fixed default.
#[test]
fn oracle_env_seeded_workload() {
    let seed: u64 = std::env::var("ORION_ORACLE_SEED")
        .ok()
        .and_then(|s| match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        })
        .unwrap_or(0xA11CE);
    let mut rng = TestRng::deterministic(&format!("orion-oracle-{seed}"));
    let strat = prop::collection::vec(arb_op(), 6..14);
    let mut ops = vec![Op::Create(0), Op::Simple { table: 0, key: -1, mean: 0.0 }];
    ops.extend(strat.generate(&mut rng));
    run_oracle(&format!("env_seed_{seed}"), &ops);
}
