//! Crash-recovery oracle: a differential test between [`DurableDb`] and a
//! plain in-memory model applying the identical workload.
//!
//! Each scenario runs a randomized (or scripted) sequence of operations —
//! table creation, simple and joint-pdf inserts, `ANALYZE` stats
//! collection, full and incremental checkpoints — against both sides,
//! recording the oracle's *canonical
//! fingerprint* after every operation that commits a WAL record. It then
//! simulates a crash at **every byte offset** of the surviving write-ahead
//! log: for each cut it reconstructs the on-disk state (snapshot + delta
//! chain + truncated WAL), recovers, and asserts the recovered database is
//! bit-identical (relations, dependency-set joints, ancestor sets, base
//! refcounts, existence masses, secondary-index definitions) to the oracle
//! at exactly the number of operations whose commit frame fits in the
//! surviving prefix. Recovery must also be idempotent: a second open lands
//! on the same fingerprint. Every index definition that survives a cut
//! must additionally *answer* exactly like a fresh rebuild over the
//! recovered data — trees are never persisted, so this pins the
//! rebuild-on-recovery path itself.
//!
//! The fingerprint canonicalizes identities that legitimately differ
//! between two runs — attribute ids come from a process-global allocator
//! and pdf ids are remapped to first-seen dense order — so the comparison
//! checks logical state, not allocator accidents.
//!
//! Set `ORION_ORACLE_SEED` to replay `oracle_env_seeded_workload` with a
//! specific seed (used by `scripts/check.sh` to pin three seeds in CI).

use orion_core::durable::{DurableDb, SNAPSHOT_FILE, WAL_FILE};
use orion_core::pindex::{BuiltIndex, IndexCatalog, IndexDef, IndexKind};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::DeltaFile;
use orion_tests::fingerprint;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directories across proptest cases within one process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_recovery_oracle").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn oracle_schema() -> ProbSchema {
    ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("x", ColumnType::Real, true),
            ("y", ColumnType::Real, true),
        ],
        vec![],
    )
    .unwrap()
}

/// One step of the differential workload.
#[derive(Debug, Clone)]
enum Op {
    /// Create table `t{0}` (skipped on both sides if it already exists).
    Create(u8),
    /// Insert with two independent per-column pdfs.
    Simple { table: u8, key: i64, mean: f64 },
    /// Insert with one correlated two-dimensional dependency set whose
    /// total mass is < 1 (a maybe-tuple, exercising existence mass).
    Joint { table: u8, key: i64, p: f64 },
    /// `ANALYZE t{0}`: collect stats into the catalog (WAL tag 5; skipped
    /// on both sides if the table does not exist).
    Analyze(u8),
    /// `CREATE INDEX` on `t{table}` (WAL tag 11; skipped if the table does
    /// not exist or the derived name is already taken).
    CreateIndex { table: u8, column: u8 },
    /// `DROP INDEX` (WAL tag 12; skipped if the derived name is unknown).
    DropIndex { table: u8, column: u8 },
    /// Full checkpoint: snapshot everything, drop the delta chain.
    Full,
    /// Incremental checkpoint: delta-file only the dirty pages.
    Incremental,
}

fn table_name(i: u8) -> String {
    format!("t{i}")
}

/// Index target columns reachable from the oracle schema: `id` is certain
/// (`evx` key layout), `x` uncertain (`cdf` summaries).
fn index_target(column: u8) -> (&'static str, IndexKind) {
    if column.is_multiple_of(2) {
        ("id", IndexKind::Evx)
    } else {
        ("x", IndexKind::Cdf)
    }
}

fn index_name(table: u8, column: u8) -> String {
    let (col, _) = index_target(column);
    format!("ix_t{table}_{col}")
}

fn simple_pdfs(mean: f64) -> [(&'static str, Pdf1); 2] {
    [
        ("x", Pdf1::gaussian(mean, 1.0).unwrap()),
        ("y", Pdf1::discrete(vec![(mean.floor(), 0.5), (mean.floor() + 1.0, 0.5)]).unwrap()),
    ]
}

fn joint_pdf(key: i64, p: f64) -> JointPdf {
    // Mass p < 1: the tuple only probably exists.
    JointPdf::from_points(
        JointDiscrete::from_points(
            2,
            vec![
                (vec![key as f64, key as f64 + 1.0], p * 0.7),
                (vec![key as f64 + 2.0, key as f64 - 1.0], p * 0.3),
            ],
        )
        .unwrap(),
    )
}

/// Applies `op` to the in-memory oracle. Returns `true` iff the same op
/// commits a WAL record on the durable side.
fn apply_oracle(
    tables: &mut HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    stats: &mut StatsCatalog,
    ix: &mut IndexCatalog,
    op: &Op,
) -> bool {
    match op {
        Op::Create(i) => {
            let name = table_name(*i);
            if tables.contains_key(&name) {
                return false;
            }
            tables.insert(name.clone(), Relation::new(name, oracle_schema()));
            true
        }
        Op::Simple { table, key, mean } => {
            let Some(rel) = tables.get_mut(&table_name(*table)) else { return false };
            let [x, y] = simple_pdfs(*mean);
            rel.insert_simple(reg, &[("id", Value::Int(*key))], &[x, y]).unwrap();
            true
        }
        Op::Joint { table, key, p } => {
            let Some(rel) = tables.get_mut(&table_name(*table)) else { return false };
            rel.insert(
                reg,
                &[("id", Value::Int(*key))],
                vec![(vec!["x", "y"], joint_pdf(*key, *p))],
            )
            .unwrap();
            true
        }
        Op::Analyze(i) => {
            let Some(rel) = tables.get(&table_name(*i)) else { return false };
            stats.insert(analyze_relation(rel).unwrap());
            true
        }
        Op::CreateIndex { table, column } => {
            let name = index_name(*table, *column);
            if !tables.contains_key(&table_name(*table)) || ix.get(&name).is_some() {
                return false;
            }
            let (col, kind) = index_target(*column);
            ix.create(IndexDef { name, table: table_name(*table), column: col.into(), kind })
                .unwrap();
            true
        }
        Op::DropIndex { table, column } => {
            let name = index_name(*table, *column);
            if ix.get(&name).is_none() {
                return false;
            }
            ix.drop_index(&name).unwrap();
            true
        }
        Op::Full | Op::Incremental => false,
    }
}

/// Applies `op` to the durable side, mirroring the oracle's skip rules.
/// Returns `true` iff the op committed a WAL record.
fn apply_db(db: &mut DurableDb, op: &Op) -> bool {
    match op {
        Op::Create(i) => {
            let name = table_name(*i);
            if db.tables().contains_key(&name) {
                return false;
            }
            db.create_table(&name, oracle_schema()).unwrap();
            true
        }
        Op::Simple { table, key, mean } => {
            let name = table_name(*table);
            if !db.tables().contains_key(&name) {
                return false;
            }
            let [x, y] = simple_pdfs(*mean);
            db.insert_simple(&name, &[("id", Value::Int(*key))], &[x, y]).unwrap();
            true
        }
        Op::Joint { table, key, p } => {
            let name = table_name(*table);
            if !db.tables().contains_key(&name) {
                return false;
            }
            db.insert(
                &name,
                &[("id", Value::Int(*key))],
                vec![(vec!["x", "y"], joint_pdf(*key, *p))],
            )
            .unwrap();
            true
        }
        Op::Analyze(i) => {
            let name = table_name(*i);
            if !db.tables().contains_key(&name) {
                return false;
            }
            db.analyze_table(&name).unwrap();
            true
        }
        Op::CreateIndex { table, column } => {
            let tname = table_name(*table);
            let name = index_name(*table, *column);
            if !db.tables().contains_key(&tname) || db.indexes().lock().get(&name).is_some() {
                return false;
            }
            let (col, kind) = index_target(*column);
            db.create_index(&name, &tname, col, Some(kind)).unwrap();
            true
        }
        Op::DropIndex { table, column } => {
            let name = index_name(*table, *column);
            if db.indexes().lock().get(&name).is_none() {
                return false;
            }
            db.drop_index(&name).unwrap();
            true
        }
        Op::Full => {
            db.checkpoint().unwrap();
            false
        }
        Op::Incremental => {
            db.checkpoint_incremental().unwrap();
            false
        }
    }
}

/// Number of operations whose *commit frame* fits entirely inside
/// `bytes[..cut]`, mirroring the replay rule: parsing stops at the first
/// incomplete frame; base (2) and epoch (4) frames do not complete an
/// operation by themselves.
///
/// Outside a transaction group, a schema (1), tuple (3), stats (5),
/// delete (9), update (10), index-create (11) or index-drop (12) frame
/// each completes one operation. Between a
/// txn-begin (6) marker and its commit (7), data frames are buffered: they
/// count — all at once — only when the commit marker frame itself survives
/// the cut. An abort marker (8) or a cut before the commit discards the
/// whole group, exactly as recovery does.
fn committed_ops(bytes: &[u8], cut: usize) -> usize {
    let mut off = 0usize;
    let mut ops = 0;
    let mut pending: Option<usize> = None; // ops buffered in an open txn group
    while off + 8 <= cut {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > cut {
            break;
        }
        match (bytes[off + 8], &mut pending) {
            (6, _) => pending = Some(0),
            (7, Some(n)) => {
                ops += *n;
                pending = None;
            }
            (8, _) | (7, None) => pending = None,
            (1 | 3 | 5 | 9 | 10 | 11 | 12, Some(n)) => *n += 1,
            (1 | 3 | 5 | 9 | 10 | 11 | 12, None) => ops += 1,
            _ => {}
        }
        off += 8 + len;
    }
    ops
}

/// The oracle fingerprint extended with the byte-encoded index-definition
/// catalog: a definition lost (or resurrected) by recovery fails the
/// comparison exactly like lost tuple data.
fn fp_ix(
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
    ix: &IndexCatalog,
) -> String {
    let mut s = fingerprint(tables, reg, stats);
    s.push_str("|ix:");
    for b in ix.encode() {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Runs `ops` against both sides under `dir`. Returns the oracle
/// fingerprints indexed by *operations committed since the last
/// checkpoint*: `fps[0]` is the state baked into the snapshot chain,
/// `fps[k]` the state after `k` further committed operations (the WAL).
fn run_workload(dir: &Path, ops: &[Op]) -> Vec<String> {
    let mut db = DurableDb::open(dir).unwrap();
    let mut tables: HashMap<String, Relation> = HashMap::new();
    let mut reg = HistoryRegistry::new();
    let mut stats = StatsCatalog::new();
    let mut ix = IndexCatalog::new();
    let mut fps = vec![fp_ix(&tables, &reg, &stats, &ix)];
    for op in ops {
        let committed = apply_db(&mut db, op);
        match op {
            Op::Full | Op::Incremental => {
                // Checkpoints move the baseline: the WAL restarts empty.
                fps = vec![fp_ix(&tables, &reg, &stats, &ix)];
            }
            _ => {
                assert_eq!(
                    committed,
                    apply_oracle(&mut tables, &mut reg, &mut stats, &mut ix, op),
                    "skip rules agree"
                );
                if committed {
                    fps.push(fp_ix(&tables, &reg, &stats, &ix));
                }
            }
        }
    }
    // Live database and oracle agree before any crash is simulated.
    let live_ix = db.indexes();
    let live = fp_ix(db.tables(), db.registry(), db.stats_catalog(), &live_ix.lock());
    assert_eq!(live, *fps.last().unwrap(), "live state diverged");
    db.check_invariants().unwrap();
    fps
}

/// Deterministic probe answers over a built index — the observable the
/// recovered-vs-fresh-rebuild comparison runs on. The masks and probe
/// counts fix the tree's keyed entries, payloads, and unkeyed set, so
/// equality here means the recovered definition materializes the same
/// index a from-scratch build does.
fn probe_battery(ix: &BuiltIndex) -> String {
    let mut s = format!("{:?}|len={}|rows={}|pages={}", ix.def, ix.len(), ix.rows, ix.pages());
    match ix.def.kind {
        IndexKind::Evx => {
            for (lo, hi) in
                [(f64::NEG_INFINITY, f64::INFINITY), (-2.0, 3.0), (1.0, 1.0), (50.0, 60.0)]
            {
                s.push_str(&format!("|{:?}", ix.range_mask(lo, hi).unwrap()));
            }
        }
        IndexKind::Cdf => {
            for (lo, p) in [(0.0, 0.5), (-3.0, 0.9), (2.5, 0.2)] {
                let m = ix.threshold_mask(&Interval::new(lo, f64::INFINITY), CmpOp::Gt, p).unwrap();
                s.push_str(&format!("|{m:?}"));
            }
        }
    }
    s
}

/// The matrix itself: crash at every byte of the WAL left under `src` and
/// assert recovery lands exactly on the oracle fingerprint for the
/// surviving committed prefix — twice (idempotence).
fn crash_matrix(src: &Path, fps: &[String], scratch: &Path) {
    let wal = std::fs::read(src.join(WAL_FILE)).unwrap_or_default();
    let snapshot = std::fs::read(src.join(SNAPSHOT_FILE)).ok();
    let deltas: Vec<(PathBuf, Vec<u8>)> = DeltaFile::list(src)
        .unwrap()
        .into_iter()
        .map(|(_, p)| {
            let bytes = std::fs::read(&p).unwrap();
            (PathBuf::from(p.file_name().unwrap()), bytes)
        })
        .collect();
    for cut in 0..=wal.len() {
        std::fs::remove_dir_all(scratch).ok();
        std::fs::create_dir_all(scratch).unwrap();
        if let Some(snap) = &snapshot {
            std::fs::write(scratch.join(SNAPSHOT_FILE), snap).unwrap();
        }
        for (name, bytes) in &deltas {
            std::fs::write(scratch.join(name), bytes).unwrap();
        }
        std::fs::write(scratch.join(WAL_FILE), &wal[..cut]).unwrap();
        let k = committed_ops(&wal, cut);
        let db = DurableDb::open(scratch)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let handle = db.indexes();
        assert_eq!(
            fp_ix(db.tables(), db.registry(), db.stats_catalog(), &handle.lock()),
            fps[k],
            "recovered state != oracle after {k} ops (cut at byte {cut}/{})",
            wal.len()
        );
        // Every surviving definition must answer exactly like a fresh
        // from-scratch build over the recovered relation — the tree is
        // never persisted, so this is the rebuild path recovery relies on.
        let defs: Vec<IndexDef> = handle.lock().defs().cloned().collect();
        for def in &defs {
            let rel = &db.tables()[&def.table];
            let recovered = handle.lock().ensure_built(&def.name, rel).unwrap();
            let fresh = BuiltIndex::build(def, rel, recovered.epoch).unwrap();
            assert_eq!(
                probe_battery(&recovered),
                probe_battery(&fresh),
                "recovered index '{}' != fresh rebuild (cut at byte {cut})",
                def.name
            );
        }
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
        drop(db);
        let db = DurableDb::open(scratch).unwrap();
        let handle = db.indexes();
        assert_eq!(
            fp_ix(db.tables(), db.registry(), db.stats_catalog(), &handle.lock()),
            fps[k],
            "second recovery diverged (cut at byte {cut})"
        );
        assert_eq!(db.recovery().wal_bytes_truncated, 0, "second open must find a clean log");
    }
    std::fs::remove_dir_all(scratch).ok();
}

/// End-to-end: run the workload, then grind the matrix.
fn run_oracle(name: &str, ops: &[Op]) {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let src = temp_dir(&format!("{name}_{n}_src"));
    let scratch =
        std::env::temp_dir().join("orion_recovery_oracle").join(format!("{name}_{n}_cut"));
    let fps = run_workload(&src, ops);
    crash_matrix(&src, &fps, &scratch);
    std::fs::remove_dir_all(&src).ok();
}

#[test]
fn oracle_wal_only_matrix() {
    run_oracle(
        "wal_only",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.5 },
            Op::Joint { table: 0, key: 2, p: 0.8 },
            Op::Create(1),
            Op::Simple { table: 1, key: 3, mean: -2.0 },
        ],
    );
}

#[test]
fn oracle_full_checkpoint_matrix() {
    run_oracle(
        "full_ckpt",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 1.0 },
            Op::Joint { table: 0, key: 2, p: 0.6 },
            Op::Full,
            Op::Simple { table: 0, key: 3, mean: 2.0 },
            Op::Create(1),
            Op::Joint { table: 1, key: 4, p: 0.3 },
        ],
    );
}

#[test]
fn oracle_incremental_chain_matrix() {
    run_oracle(
        "incr_chain",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.0 },
            Op::Full,
            Op::Simple { table: 0, key: 2, mean: 1.0 },
            Op::Incremental,
            Op::Create(1),
            Op::Joint { table: 1, key: 3, p: 0.5 },
            Op::Incremental,
            Op::Simple { table: 1, key: 4, mean: -1.0 },
            Op::Joint { table: 0, key: 5, p: 0.9 },
        ],
    );
}

#[test]
fn oracle_analyze_survives_every_cut() {
    // ANALYZE → crash → recover must yield a bitwise-identical stats
    // catalog at every WAL cut: stats committed via tag-5 frames replay
    // like data, re-ANALYZE after more inserts overwrites, and a full
    // checkpoint bakes the catalog into the snapshot.
    run_oracle(
        "analyze",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.5 },
            Op::Joint { table: 0, key: 2, p: 0.8 },
            Op::Analyze(0),
            Op::Simple { table: 0, key: 3, mean: 2.5 },
            Op::Analyze(0),
            Op::Full,
            Op::Create(1),
            Op::Analyze(1),
            Op::Simple { table: 1, key: 4, mean: -1.0 },
        ],
    );
}

#[test]
fn oracle_incremental_without_base_matrix() {
    // The first incremental checkpoint has no base snapshot and must fall
    // back to a full one; the chain then grows from it.
    run_oracle(
        "incr_bootstrap",
        &[
            Op::Create(0),
            Op::Joint { table: 0, key: 1, p: 0.7 },
            Op::Incremental,
            Op::Simple { table: 0, key: 2, mean: 3.0 },
            Op::Incremental,
            Op::Simple { table: 0, key: 3, mean: 4.0 },
        ],
    );
}

#[test]
fn oracle_index_defs_survive_every_cut() {
    // CREATE INDEX / DROP INDEX interleaved with inserts and checkpoints:
    // at every WAL cut the surviving definitions must match the oracle
    // (tag-11/12 frames replay like data, defs bake into snapshots, a drop
    // forces the next checkpoint to rewrite the base), and every surviving
    // definition must rebuild into the same tree a fresh build produces.
    run_oracle(
        "index_defs",
        &[
            Op::Create(0),
            Op::Simple { table: 0, key: 1, mean: 0.5 },
            Op::CreateIndex { table: 0, column: 1 }, // cdf on x
            Op::Joint { table: 0, key: 2, p: 0.8 },
            Op::CreateIndex { table: 0, column: 0 }, // evx on id
            Op::CreateIndex { table: 0, column: 1 }, // duplicate: skipped on both sides
            Op::Full,
            Op::Simple { table: 0, key: 3, mean: 2.0 },
            Op::DropIndex { table: 0, column: 0 },
            Op::Create(1),
            Op::CreateIndex { table: 1, column: 1 },
            Op::Incremental,
            Op::Simple { table: 1, key: 4, mean: -1.0 },
            Op::DropIndex { table: 1, column: 1 },
            Op::CreateIndex { table: 1, column: 1 }, // recreate after drop
        ],
    );
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..2).prop_map(|i| Op::Create(i as u8)),
        (0u32..2, 0i64..100, -5.0..5.0f64).prop_map(|(table, key, mean)| Op::Simple {
            table: table as u8,
            key,
            mean
        }),
        (0u32..2, 0i64..100, 0.05..0.95f64).prop_map(|(table, key, p)| Op::Joint {
            table: table as u8,
            key,
            p
        }),
        (0u32..2).prop_map(|i| Op::Analyze(i as u8)),
        (0u32..2, 0u32..2).prop_map(|(table, column)| Op::CreateIndex {
            table: table as u8,
            column: column as u8
        }),
        (0u32..2, 0u32..2)
            .prop_map(|(table, column)| Op::DropIndex { table: table as u8, column: column as u8 }),
        Just(Op::Full),
        Just(Op::Incremental),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn oracle_random_workloads_survive_every_cut(tail in prop::collection::vec(arb_op(), 3..10)) {
        // Guarantee at least one table and one committed record so every
        // case exercises the matrix, then append the random tail.
        let mut ops = vec![Op::Create(0), Op::Simple { table: 0, key: -1, mean: 0.0 }];
        ops.extend(tail);
        run_oracle("random", &ops);
    }
}

// ---------------------------------------------------------------------------
// Multi-op transactions: the same byte-level crash matrix, but with WAL
// records grouped between txn-begin/commit markers. Recovery must apply a
// transaction *all or none* — a cut anywhere inside the group rolls the
// whole transaction back.
// ---------------------------------------------------------------------------

/// One DML statement inside (or outside) a transaction. Scripts keep keys
/// unique per table so each step maps to exactly one WAL data record —
/// the unit `committed_ops` counts.
#[derive(Debug, Clone)]
enum TxnStep {
    /// Create table `t{0}`.
    Create(u8),
    /// Insert one row with two independent per-column pdfs.
    Insert { table: u8, key: i64, mean: f64 },
    /// Delete the (single) row with `id == key`.
    Delete { table: u8, key: i64 },
    /// Replace the (single) `id == key` row's `x` node with `certain(val)`.
    Update { table: u8, key: i64, val: f64 },
}

/// One entry of a transactional workload script.
#[derive(Debug, Clone)]
enum Step {
    /// A transaction holding `steps`, committed or rolled back atomically.
    Txn { steps: Vec<TxnStep>, commit: bool },
    /// A plain auto-committed statement outside any transaction.
    Plain(TxnStep),
    /// Full checkpoint: snapshot everything, reset the WAL.
    Checkpoint,
}

fn key_is(key: i64) -> impl Fn(&ProbTuple) -> bool {
    move |t: &ProbTuple| t.certain[0] == Value::Int(key)
}

fn stage_txn_step(txn: &mut Txn, step: &TxnStep) {
    match step {
        TxnStep::Create(i) => txn.create_table(&table_name(*i), oracle_schema()).unwrap(),
        TxnStep::Insert { table, key, mean } => {
            let [x, y] = simple_pdfs(*mean);
            txn.insert_simple(&table_name(*table), &[("id", Value::Int(*key))], &[x, y]).unwrap();
        }
        TxnStep::Delete { table, key } => {
            let n = txn.delete_where(&table_name(*table), key_is(*key)).unwrap();
            assert_eq!(n, 1, "script keys are unique: delete hits one row");
        }
        TxnStep::Update { table, key, val } => {
            let v = *val;
            let n = txn
                .update_where(&table_name(*table), key_is(*key), |t, reg| {
                    let attr = t.nodes[0].dims[0].column.expect("x is visible");
                    let joint = JointPdf::from_pdf1(Pdf1::certain(v));
                    let id = reg.register(vec![attr], joint.clone());
                    t.nodes[0] = PdfNode::base(id, &[attr], joint, [id].into_iter().collect());
                    Ok(())
                })
                .unwrap();
            assert_eq!(n, 1, "script keys are unique: update hits one row");
        }
    }
}

/// Oracle-side mirror of one step, with the exact reference bookkeeping
/// WAL replay performs for the corresponding record.
fn oracle_txn_step(
    tables: &mut HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    step: &TxnStep,
) {
    match step {
        TxnStep::Create(i) => {
            let name = table_name(*i);
            tables.insert(name.clone(), Relation::new(name, oracle_schema()));
        }
        TxnStep::Insert { table, key, mean } => {
            let [x, y] = simple_pdfs(*mean);
            tables
                .get_mut(&table_name(*table))
                .unwrap()
                .insert_simple(reg, &[("id", Value::Int(*key))], &[x, y])
                .unwrap();
        }
        TxnStep::Delete { table, key } => {
            let n = tables.get_mut(&table_name(*table)).unwrap().delete_where(reg, key_is(*key));
            assert_eq!(n, 1, "oracle delete hits one row");
        }
        TxnStep::Update { table, key, val } => {
            let rel = tables.get_mut(&table_name(*table)).unwrap();
            let sel = key_is(*key);
            let idx = rel.tuples.iter().position(sel).expect("oracle update finds its row");
            let mut new_t = rel.tuples[idx].clone();
            let attr = new_t.nodes[0].dims[0].column.expect("x is visible");
            let joint = JointPdf::from_pdf1(Pdf1::certain(*val));
            let id = reg.register(vec![attr], joint.clone());
            new_t.nodes[0] = PdfNode::base(id, &[attr], joint, [id].into_iter().collect());
            let old_t = std::mem::replace(&mut rel.tuples[idx], new_t);
            let new_nodes = rel.tuples[idx].nodes.clone();
            // Position-wise node diff, new refs before old releases — the
            // same bookkeeping `apply_record` runs for an update record.
            for i in 0..old_t.nodes.len().max(new_nodes.len()) {
                if old_t.nodes.get(i) == new_nodes.get(i) {
                    continue;
                }
                if let Some(nw) = new_nodes.get(i) {
                    reg.add_refs(&nw.ancestors);
                }
                if let Some(o) = old_t.nodes.get(i) {
                    reg.release_refs(&o.ancestors);
                    if o.ancestors.len() == 1 {
                        let id = *o.ancestors.iter().next().expect("len checked");
                        reg.delete_base(id);
                    }
                }
            }
        }
    }
}

/// Runs a transactional script against a shared durable handle and the
/// oracle. Returns fingerprints indexed by committed-records-since-last-
/// checkpoint, matching `committed_ops`: a committed transaction
/// contributes one entry per step (all indexed past its commit marker), a
/// rolled-back one contributes nothing.
fn run_txn_workload(dir: &Path, script: &[Step]) -> Vec<String> {
    let db = SharedDurableDb::open(dir, GroupCommitConfig::default()).unwrap();
    let mut tables: HashMap<String, Relation> = HashMap::new();
    let mut reg = HistoryRegistry::new();
    let stats = StatsCatalog::new();
    let ix = IndexCatalog::new(); // txn scripts define no indexes
    let mut fps = vec![fp_ix(&tables, &reg, &stats, &ix)];
    for step in script {
        match step {
            Step::Checkpoint => {
                db.checkpoint().unwrap();
                fps = vec![fp_ix(&tables, &reg, &stats, &ix)];
            }
            Step::Plain(st) => {
                match st {
                    TxnStep::Create(i) => {
                        db.create_table(&table_name(*i), oracle_schema()).unwrap()
                    }
                    TxnStep::Insert { table, key, mean } => {
                        let [x, y] = simple_pdfs(*mean);
                        db.insert_simple(&table_name(*table), &[("id", Value::Int(*key))], &[x, y])
                            .unwrap();
                    }
                    other => panic!("plain steps are create/insert only, got {other:?}"),
                }
                oracle_txn_step(&mut tables, &mut reg, st);
                fps.push(fp_ix(&tables, &reg, &stats, &ix));
            }
            Step::Txn { steps, commit } => {
                let mut txn = Txn::begin(&db);
                for st in steps {
                    stage_txn_step(&mut txn, st);
                }
                if *commit {
                    txn.commit().unwrap();
                    for st in steps {
                        oracle_txn_step(&mut tables, &mut reg, st);
                        fps.push(fp_ix(&tables, &reg, &stats, &ix));
                    }
                } else {
                    let wal_before = db.wal_len();
                    txn.rollback();
                    assert_eq!(db.wal_len(), wal_before, "rollback leaves no WAL trace");
                }
            }
        }
    }
    let live = db.with_tables(|t, r| fp_ix(t, r, &stats, &ix));
    assert_eq!(live, *fps.last().unwrap(), "live state diverged from the oracle");
    db.check_invariants().unwrap();
    fps
}

fn run_txn_oracle(name: &str, script: &[Step]) {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let src = temp_dir(&format!("{name}_{n}_src"));
    let scratch =
        std::env::temp_dir().join("orion_recovery_oracle").join(format!("{name}_{n}_cut"));
    let fps = run_txn_workload(&src, script);
    crash_matrix(&src, &fps, &scratch);
    std::fs::remove_dir_all(&src).ok();
}

#[test]
fn oracle_txn_groups_recover_all_or_none() {
    run_txn_oracle(
        "txn_groups",
        &[
            Step::Txn {
                steps: vec![
                    TxnStep::Create(0),
                    TxnStep::Insert { table: 0, key: 1, mean: 0.5 },
                    TxnStep::Insert { table: 0, key: 2, mean: 1.5 },
                ],
                commit: true,
            },
            Step::Plain(TxnStep::Insert { table: 0, key: 3, mean: -2.0 }),
            Step::Txn {
                steps: vec![
                    TxnStep::Update { table: 0, key: 1, val: 5.0 },
                    TxnStep::Delete { table: 0, key: 2 },
                    TxnStep::Insert { table: 0, key: 4, mean: 2.0 },
                ],
                commit: true,
            },
            // A rolled-back transaction must be invisible at every cut.
            Step::Txn {
                steps: vec![
                    TxnStep::Insert { table: 0, key: 9, mean: 9.0 },
                    TxnStep::Delete { table: 0, key: 3 },
                ],
                commit: false,
            },
            Step::Txn {
                steps: vec![
                    TxnStep::Create(1),
                    TxnStep::Insert { table: 1, key: 5, mean: 1.0 },
                    TxnStep::Delete { table: 0, key: 3 },
                ],
                commit: true,
            },
            Step::Plain(TxnStep::Insert { table: 1, key: 6, mean: -1.0 }),
        ],
    );
}

#[test]
fn oracle_txn_after_checkpoint_recovers() {
    // A checkpoint mid-script: later transaction groups replay over the
    // snapshot; earlier ones are baked in.
    run_txn_oracle(
        "txn_ckpt",
        &[
            Step::Txn {
                steps: vec![
                    TxnStep::Create(0),
                    TxnStep::Insert { table: 0, key: 1, mean: 0.0 },
                    TxnStep::Insert { table: 0, key: 2, mean: 1.0 },
                ],
                commit: true,
            },
            Step::Checkpoint,
            Step::Txn {
                steps: vec![
                    TxnStep::Update { table: 0, key: 2, val: 7.5 },
                    TxnStep::Insert { table: 0, key: 3, mean: 3.0 },
                ],
                commit: true,
            },
            Step::Txn { steps: vec![TxnStep::Delete { table: 0, key: 1 }], commit: true },
        ],
    );
}

#[test]
fn oracle_conflicted_txn_leaves_no_wal_trace() {
    // First-committer-wins: the losing transaction's failed commit must
    // not write a single WAL byte, so every crash cut recovers to a chain
    // state that never contains its writes.
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let src = temp_dir(&format!("txn_conflict_{n}_src"));
    let scratch =
        std::env::temp_dir().join("orion_recovery_oracle").join(format!("txn_conflict_{n}_cut"));
    let db = SharedDurableDb::open(&src, GroupCommitConfig::default()).unwrap();
    let mut tables: HashMap<String, Relation> = HashMap::new();
    let mut reg = HistoryRegistry::new();
    let stats = StatsCatalog::new();
    let ix = IndexCatalog::new();
    let mut fps = vec![fp_ix(&tables, &reg, &stats, &ix)];
    let setup = [
        TxnStep::Create(0),
        TxnStep::Insert { table: 0, key: 1, mean: 0.5 },
        TxnStep::Insert { table: 0, key: 2, mean: 1.5 },
    ];
    let mut t0 = Txn::begin(&db);
    for st in &setup {
        stage_txn_step(&mut t0, st);
    }
    t0.commit().unwrap();
    for st in &setup {
        oracle_txn_step(&mut tables, &mut reg, st);
        fps.push(fp_ix(&tables, &reg, &stats, &ix));
    }

    // Two overlapping transactions race to delete the same row.
    let mut loser = Txn::begin(&db);
    let mut winner = Txn::begin(&db);
    stage_txn_step(&mut winner, &TxnStep::Delete { table: 0, key: 1 });
    winner.commit().unwrap();
    oracle_txn_step(&mut tables, &mut reg, &TxnStep::Delete { table: 0, key: 1 });
    fps.push(fp_ix(&tables, &reg, &stats, &ix));

    stage_txn_step(&mut loser, &TxnStep::Delete { table: 0, key: 1 });
    let wal_before = db.wal_len();
    let err = loser.commit().expect_err("second deleter must conflict");
    assert!(err.is_retryable(), "conflicts are retryable: {err}");
    assert_eq!(db.wal_len(), wal_before, "conflicted commit leaves no WAL trace");
    let live = db.with_tables(|t, r| fp_ix(t, r, &stats, &ix));
    assert_eq!(live, *fps.last().unwrap(), "conflicted commit mutated live state");
    db.check_invariants().unwrap();
    drop(db);
    crash_matrix(&src, &fps, &scratch);
    std::fs::remove_dir_all(&src).ok();
}

/// Seeded entry point for CI: `scripts/check.sh` runs this with three
/// pinned `ORION_ORACLE_SEED` values; unset, it uses a fixed default.
#[test]
fn oracle_env_seeded_workload() {
    let seed: u64 = std::env::var("ORION_ORACLE_SEED")
        .ok()
        .and_then(|s| match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        })
        .unwrap_or(0xA11CE);
    let mut rng = TestRng::deterministic(&format!("orion-oracle-{seed}"));
    let strat = prop::collection::vec(arb_op(), 6..14);
    // The fixed preamble guarantees a table, a data record, and a tag-11
    // index record in every seeded run.
    let mut ops = vec![
        Op::Create(0),
        Op::Simple { table: 0, key: -1, mean: 0.0 },
        Op::CreateIndex { table: 0, column: 1 },
    ];
    ops.extend(strat.generate(&mut rng));
    run_oracle(&format!("env_seed_{seed}"), &ops);
}
