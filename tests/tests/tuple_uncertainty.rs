//! Tuple uncertainty through shared phantom ancestors — the paper's claim
//! that the attribute-uncertainty model "can directly handle tuple
//! uncertainty, and thus is more general", including mutual-exclusion
//! constraints among tuples (Section I / Definition 2's phantom-ancestor
//! note). Verified against the ancestor-level possible-worlds engine,
//! which enumerates base pdf outcomes and therefore sees cross-tuple
//! correlation exactly.

use orion_core::plan::{execute, Plan};
use orion_core::prelude::*;
use orion_core::pws::{
    distribution_distance, engine_row_distribution, pws_row_distribution_via_ancestors, CanonValue,
};
use orion_pdf::prelude::*;
use std::collections::HashMap;

/// A table of data-cleaning alternatives: the extractor produced two
/// mutually exclusive readings for the same record, plus one independent
/// certain record.
fn mutex_table() -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("a", ColumnType::Int, true),
            ("b", ColumnType::Int, true),
        ],
        vec![],
    )
    .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_mutex_group(
        &mut reg,
        vec![
            (
                vec![("id", Value::Int(1))],
                vec![("a", Pdf1::certain(10.0)), ("b", Pdf1::certain(100.0))],
            ),
            (
                vec![("id", Value::Int(2))],
                vec![("a", Pdf1::certain(20.0)), ("b", Pdf1::certain(200.0))],
            ),
        ],
        &[0.3, 0.5],
    )
    .unwrap();
    rel.insert_simple(
        &mut reg,
        &[("id", Value::Int(3))],
        &[("a", Pdf1::certain(30.0)), ("b", Pdf1::certain(300.0))],
    )
    .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);
    (tables, reg)
}

fn int_key(i: i64) -> Vec<CanonValue> {
    vec![CanonValue::Int(i)]
}

#[test]
fn alternatives_exist_with_declared_probabilities() {
    let (tables, reg) = mutex_table();
    let rel = &tables["T"];
    let opts = ExecOptions::default();
    let p1 = orion_core::collapse::existence_prob(&rel.tuples[0], &reg, opts.resolution).unwrap();
    let p2 = orion_core::collapse::existence_prob(&rel.tuples[1], &reg, opts.resolution).unwrap();
    assert!((p1 - 0.3).abs() < 1e-12);
    assert!((p2 - 0.5).abs() < 1e-12);
}

#[test]
fn ancestor_level_pws_sees_mutual_exclusion() {
    let (tables, reg) = mutex_table();
    // Row-presence probabilities over the projection to id.
    let plan = Plan::scan("T").project(&["id"]);
    let dist = pws_row_distribution_via_ancestors(&plan, &tables, &reg).unwrap();
    assert!((dist[&int_key(1)] - 0.3).abs() < 1e-12);
    assert!((dist[&int_key(2)] - 0.5).abs() < 1e-12);
    assert!((dist[&int_key(3)] - 1.0).abs() < 1e-12);
    // A query whose output combines both alternatives can never fire: the
    // self-combination (a from alt 1, b from alt 2) is impossible.
    let both = Plan::scan("T").project(&["id", "a"]).join_on(
        Plan::scan("T").project(&["id", "b"]),
        Some(Predicate::cmp_cols("a", CmpOp::Lt, "b")),
    );
    let dist = pws_row_distribution_via_ancestors(&both, &tables, &reg).unwrap();
    // Output rows: (left id, a, right id, b). Surviving pairs are the
    // diagonal and the always-compatible pairs with tuple 3; the
    // anti-diagonal pairs (alt 1 with alt 2) have probability 0.
    let row = |lid: i64, a: f64, rid: i64, b: f64| {
        vec![
            CanonValue::Int(lid),
            CanonValue::Real(a.to_bits()),
            CanonValue::Int(rid),
            CanonValue::Real(b.to_bits()),
        ]
    };
    assert!((dist[&row(1, 10.0, 1, 100.0)] - 0.3).abs() < 1e-12);
    assert!((dist[&row(2, 20.0, 2, 200.0)] - 0.5).abs() < 1e-12);
    assert!(!dist.contains_key(&row(1, 10.0, 2, 200.0)), "mutually exclusive pair");
    assert!(!dist.contains_key(&row(2, 20.0, 1, 100.0)), "mutually exclusive pair");
    assert!((dist[&row(1, 10.0, 3, 300.0)] - 0.3).abs() < 1e-12);
    assert!((dist[&row(3, 30.0, 3, 300.0)] - 1.0).abs() < 1e-12);
}

#[test]
fn engine_join_drops_mutually_exclusive_pairs() {
    let (tables, mut reg) = mutex_table();
    let opts = ExecOptions::default();
    let plan = Plan::scan("T").project(&["id", "a"]).join_on(
        Plan::scan("T").project(&["id", "b"]),
        Some(Predicate::cmp_cols("a", CmpOp::Lt, "b")),
    );
    let truth = pws_row_distribution_via_ancestors(&plan, &tables, &reg).unwrap();
    let result = execute(&plan, &tables, &mut reg, &opts).unwrap();
    let engine = engine_row_distribution(&result, &reg, &opts).unwrap();
    // Project rows to the certain key columns for comparison: engine rows
    // also carry the uncertain columns; restrict both to shared keys by
    // comparing full distributions (values are certain here, so rows match
    // exactly).
    let d = distribution_distance(&truth, &engine);
    assert!(d < 1e-9, "deviation {d}\ntruth {truth:?}\nengine {engine:?}");
    // The anti-diagonal pairs were dropped as vacuous by the collapse.
    assert_eq!(result.len(), 7, "9 pairs minus the 2 impossible ones");
}

#[test]
fn selection_composes_with_mutex_constraints() {
    let (tables, mut reg) = mutex_table();
    let opts = ExecOptions::default();
    // Selection over an uncertain attribute of the alternatives.
    let plan = Plan::scan("T").select(Predicate::cmp("a", CmpOp::Lt, 25i64)).project(&["id"]);
    let truth = pws_row_distribution_via_ancestors(&plan, &tables, &reg).unwrap();
    let result = execute(&plan, &tables, &mut reg, &opts).unwrap();
    let engine = engine_row_distribution(&result, &reg, &opts).unwrap();
    assert!(distribution_distance(&truth, &engine) < 1e-9);
    assert!((truth[&int_key(1)] - 0.3).abs() < 1e-12);
    assert!((truth[&int_key(2)] - 0.5).abs() < 1e-12);
    assert!(!truth.contains_key(&int_key(3)), "30 fails a < 25");
}

#[test]
fn mutex_group_validation() {
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(vec![("a", ColumnType::Int, true)], vec![]).unwrap();
    let mut rel = Relation::new("t", schema);
    // Probabilities exceeding 1.
    assert!(rel
        .insert_mutex_group(
            &mut reg,
            vec![
                (vec![], vec![("a", Pdf1::certain(1.0))]),
                (vec![], vec![("a", Pdf1::certain(2.0))]),
            ],
            &[0.7, 0.7],
        )
        .is_err());
    // Arity mismatch.
    assert!(rel
        .insert_mutex_group(&mut reg, vec![(vec![], vec![("a", Pdf1::certain(1.0))])], &[0.5, 0.5])
        .is_err());
    // Residual: with probability 0.2 neither exists.
    rel.insert_mutex_group(
        &mut reg,
        vec![(vec![], vec![("a", Pdf1::certain(1.0))]), (vec![], vec![("a", Pdf1::certain(2.0))])],
        &[0.3, 0.5],
    )
    .unwrap();
    let opts = ExecOptions::default();
    let total: f64 = rel
        .tuples
        .iter()
        .map(|t| orion_core::collapse::existence_prob(t, &reg, opts.resolution).unwrap())
        .sum();
    assert!((total - 0.8).abs() < 1e-12, "expected count 0.8");
}

#[test]
fn node_and_ancestor_level_pws_agree_on_independent_data() {
    // For plain base tables the two reference engines must coincide.
    let (tables, reg) = orion_tests::table2();
    let plan = Plan::scan("T").select(Predicate::cmp_cols("a", CmpOp::Lt, "b"));
    let node_level = orion_core::pws::pws_row_distribution(&plan, &tables).unwrap();
    let anc_level = pws_row_distribution_via_ancestors(&plan, &tables, &reg).unwrap();
    assert!(distribution_distance(&node_level, &anc_level) < 1e-12);
}
