//! Crash matrix (`--features failpoints`): simulate a kill at every
//! injected fault point and assert the database recovers to a consistent
//! committed prefix.
//!
//! Two matrices run here:
//!
//! * **WAL matrix** — a [`DurableDb`] is killed at every byte offset of
//!   its write-ahead log; recovery must yield exactly the tuples whose
//!   commit records fit in the surviving prefix, with all structural
//!   invariants intact and an idempotent second recovery.
//! * **Storage matrix** — a heap-file workload runs over a
//!   [`FaultyStore`] that kills the process at the Nth write (clean
//!   failure or torn page); reopening the file must either read a clean
//!   prefix of records or flag the torn page through its CRC32 seal.
#![cfg(feature = "failpoints")]

use orion_core::durable::{DurableDb, WAL_FILE};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::{FaultPlan, FaultyStore, FileStore, HeapFile, PAGE_SIZE};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_crash_matrix").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sensor_schema() -> ProbSchema {
    ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
        .unwrap()
}

/// Builds a WAL-only database with `n` committed inserts and returns the
/// raw WAL bytes plus, for every frame boundary, the number of committed
/// tuple records up to it.
fn build_wal_db(dir: &std::path::Path, n: i64) -> Vec<u8> {
    let mut db = DurableDb::open(dir).unwrap();
    db.create_table("readings", sensor_schema()).unwrap();
    for i in 0..n {
        db.insert_simple(
            "readings",
            &[("id", Value::Int(i))],
            &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
        )
        .unwrap();
    }
    drop(db);
    std::fs::read(dir.join(WAL_FILE)).unwrap()
}

/// Number of tuple-tagged records whose frames fit entirely in `bytes[..cut]`.
/// Mirrors the replay rule: parsing stops at the first incomplete frame.
fn committed_tuples(bytes: &[u8], cut: usize) -> usize {
    const TAG_TUPLE: u8 = 3;
    let mut off = 0usize;
    let mut tuples = 0;
    while off + 8 <= cut {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > cut {
            break;
        }
        if bytes[off + 8] == TAG_TUPLE {
            tuples += 1;
        }
        off += 8 + len;
    }
    tuples
}

#[test]
fn wal_crash_matrix_recovers_committed_prefix_at_every_cut() {
    let src = temp_dir("wal_matrix_src");
    let wal = build_wal_db(&src, 4);
    assert!(!wal.is_empty());
    let scratch = temp_dir("wal_matrix_cut");
    // Kill at every byte offset of the log.
    for cut in 0..=wal.len() {
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(WAL_FILE), &wal[..cut]).unwrap();
        let expect = committed_tuples(&wal, cut);
        let db = DurableDb::open(&scratch).unwrap();
        let got = db.tables().get("readings").map_or(0, |r| r.len());
        assert_eq!(got, expect, "cut at byte {cut}");
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
        assert_eq!(db.recovery().wal_bytes_truncated, (cut - db.wal_len() as usize) as u64);
        drop(db);
        // Recovery is idempotent: the second open finds a clean log.
        let db = DurableDb::open(&scratch).unwrap();
        assert_eq!(db.recovery().wal_bytes_truncated, 0, "second open at cut {cut}");
        assert_eq!(db.tables().get("readings").map_or(0, |r| r.len()), expect);
    }
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn post_checkpoint_wal_crash_matrix_never_replays_into_duplicates() {
    // Like the WAL matrix above, but over a log that follows a checkpoint:
    // the first frame is the epoch stamp, and recovery must yield the
    // checkpointed tuples plus exactly the post-checkpoint commits that
    // fit in the surviving prefix — never a duplicate.
    use orion_core::durable::SNAPSHOT_FILE;
    let src = temp_dir("ckpt_matrix_src");
    {
        let mut db = DurableDb::open(&src).unwrap();
        db.create_table("readings", sensor_schema()).unwrap();
        for i in 0..2 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
        db.checkpoint().unwrap();
        for i in 2..5 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
    }
    let snap = std::fs::read(src.join(SNAPSHOT_FILE)).unwrap();
    let wal = std::fs::read(src.join(WAL_FILE)).unwrap();
    assert!(!wal.is_empty());
    let scratch = temp_dir("ckpt_matrix_cut");
    for cut in 0..=wal.len() {
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(SNAPSHOT_FILE), &snap).unwrap();
        std::fs::write(scratch.join(WAL_FILE), &wal[..cut]).unwrap();
        let expect = 2 + committed_tuples(&wal, cut);
        let db = DurableDb::open(&scratch).unwrap();
        assert!(db.recovery().snapshot_loaded);
        assert_eq!(db.table("readings").unwrap().len(), expect, "cut at byte {cut}");
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
    }
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn checkpoint_then_crash_preserves_checkpointed_state() {
    let dir = temp_dir("ckpt_crash");
    {
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", sensor_schema()).unwrap();
        for i in 0..3 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(0.0, 1.0).unwrap())],
            )
            .unwrap();
        }
        db.checkpoint().unwrap();
        db.insert_simple(
            "readings",
            &[("id", Value::Int(99))],
            &[("v", Pdf1::gaussian(9.0, 1.0).unwrap())],
        )
        .unwrap();
    }
    // Crash leaving a torn post-checkpoint append.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() / 2]).unwrap();
    let db = DurableDb::open(&dir).unwrap();
    assert!(db.recovery().snapshot_loaded);
    assert!(db.table("readings").unwrap().len() >= 3, "checkpointed tuples survive");
    db.check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leftover_tmp_snapshot_is_ignored_and_replaced() {
    let dir = temp_dir("tmp_snapshot");
    // A crash mid-save leaves a half-written temp file behind.
    std::fs::write(dir.join("snapshot.db.tmp"), b"half-written junk").unwrap();
    let mut db = DurableDb::open(&dir).unwrap();
    db.create_table("readings", sensor_schema()).unwrap();
    db.insert_simple(
        "readings",
        &[("id", Value::Int(1))],
        &[("v", Pdf1::gaussian(1.0, 1.0).unwrap())],
    )
    .unwrap();
    db.checkpoint().unwrap();
    assert!(!dir.join("snapshot.db.tmp").exists(), "checkpoint renames the tmp away");
    drop(db);
    let db = DurableDb::open(&dir).unwrap();
    assert!(db.recovery().snapshot_loaded);
    assert_eq!(db.table("readings").unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_wal_append_rolls_back_the_insert() {
    // A WAL append failure must leave neither an in-memory tuple that
    // recovery would never rebuild, nor registry garbage: the insert rolls
    // back wholesale and a retry commits exactly once.
    let dir = temp_dir("append_rollback");
    let mut db = DurableDb::open(&dir).unwrap();
    db.create_table("readings", sensor_schema()).unwrap();
    let insert = |db: &mut DurableDb, i: i64| {
        db.insert_simple(
            "readings",
            &[("id", Value::Int(i))],
            &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
        )
    };
    insert(&mut db, 0).unwrap();
    let committed_len = db.wal_len();
    let bases_before = db.registry().len();
    // Fail each of the two appends an insert makes (base pdf, then tuple).
    for nth in 0..2 {
        db.inject_wal_append_failure(nth);
        assert!(insert(&mut db, 99).is_err(), "injected failure at append {nth}");
        assert_eq!(db.table("readings").unwrap().len(), 1, "tuple rolled back (append {nth})");
        assert_eq!(db.registry().len(), bases_before, "bases rolled back (append {nth})");
        assert_eq!(db.wal_len(), committed_len, "wal rolled back (append {nth})");
        db.check_invariants().unwrap();
    }
    // Same for a sync failure: the commit point was never reached.
    db.inject_wal_sync_failure();
    assert!(insert(&mut db, 99).is_err());
    assert_eq!(db.table("readings").unwrap().len(), 1);
    assert_eq!(db.wal_len(), committed_len);
    db.check_invariants().unwrap();
    // A retry after the fault clears commits normally, exactly once.
    insert(&mut db, 1).unwrap();
    drop(db);
    let db = DurableDb::open(&dir).unwrap();
    assert_eq!(db.table("readings").unwrap().len(), 2, "recovery sees only committed inserts");
    db.check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_create_table_leaves_no_phantom_table() {
    let dir = temp_dir("schema_rollback");
    let mut db = DurableDb::open(&dir).unwrap();
    db.inject_wal_append_failure(0);
    assert!(db.create_table("readings", sensor_schema()).is_err());
    assert!(db.table("readings").is_err(), "table not created in memory");
    assert_eq!(db.wal_len(), 0, "wal rolled back");
    // Retry succeeds and survives recovery.
    db.create_table("readings", sensor_schema()).unwrap();
    drop(db);
    let db = DurableDb::open(&dir).unwrap();
    assert!(db.table("readings").is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds the canonical incremental-checkpoint crash scenario:
/// `base` tuples → full checkpoint → `tail` tuples riding the WAL.
/// Returns the directory; the caller snapshots its files before poking.
fn build_incremental_scenario(name: &str, base: i64, tail: i64) -> PathBuf {
    let dir = temp_dir(name);
    let mut db = DurableDb::open(&dir).unwrap();
    db.create_table("readings", sensor_schema()).unwrap();
    for i in 0..base {
        db.insert_simple(
            "readings",
            &[("id", Value::Int(i))],
            &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
        )
        .unwrap();
    }
    db.checkpoint().unwrap();
    for i in base..base + tail {
        db.insert_simple(
            "readings",
            &[("id", Value::Int(i))],
            &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
        )
        .unwrap();
    }
    drop(db);
    dir
}

#[test]
fn incremental_delta_write_crash_matrix_keeps_pre_checkpoint_state() {
    // Kill at every byte of the delta *temp-file* write: the crash window
    // before the rename. Recovery must ignore the torn `.tmp` and land on
    // the full pre-checkpoint state (old chain + old WAL), never a mix.
    use orion_core::durable::SNAPSHOT_FILE;
    use orion_storage::DeltaFile;
    let src = build_incremental_scenario("incr_write_matrix_src", 2, 3);
    let snap = std::fs::read(src.join(SNAPSHOT_FILE)).unwrap();
    let wal = std::fs::read(src.join(WAL_FILE)).unwrap();
    // Produce the delta bytes the checkpoint would have written.
    {
        let mut db = DurableDb::open(&src).unwrap();
        db.checkpoint_incremental().unwrap();
        drop(db);
    }
    let (delta_epoch, delta_path) = DeltaFile::list(&src).unwrap().pop().unwrap();
    let delta = std::fs::read(&delta_path).unwrap();
    assert_eq!(delta_epoch, 2);
    let scratch = temp_dir("incr_write_matrix_cut");
    for cut in 0..=delta.len() {
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(SNAPSHOT_FILE), &snap).unwrap();
        std::fs::write(scratch.join(WAL_FILE), &wal).unwrap();
        std::fs::write(scratch.join(format!("{}.tmp", DeltaFile::file_name(2))), &delta[..cut])
            .unwrap();
        let db = DurableDb::open(&scratch).unwrap();
        assert_eq!(db.epoch(), 1, "tmp delta must not advance the epoch (cut {cut})");
        assert_eq!(db.recovery().deltas_folded, 0, "tmp delta folded at cut {cut}");
        assert_eq!(db.table("readings").unwrap().len(), 5, "cut {cut}");
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
    }
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn incremental_wal_reset_crash_matrix_never_mixes_epochs() {
    // The crash window *after* the delta rename but before (or during) the
    // WAL reset: the renamed delta already holds every WAL commit, so any
    // surviving prefix of the stale WAL must be fenced off by the epoch
    // stamp — replaying even one record would double-apply it.
    use orion_core::durable::SNAPSHOT_FILE;
    use orion_storage::DeltaFile;
    let src = build_incremental_scenario("incr_reset_matrix_src", 2, 3);
    let snap = std::fs::read(src.join(SNAPSHOT_FILE)).unwrap();
    let stale_wal = std::fs::read(src.join(WAL_FILE)).unwrap();
    {
        let mut db = DurableDb::open(&src).unwrap();
        db.checkpoint_incremental().unwrap();
        drop(db);
    }
    let (_, delta_path) = DeltaFile::list(&src).unwrap().pop().unwrap();
    let delta = std::fs::read(&delta_path).unwrap();
    let delta_name = delta_path.file_name().unwrap().to_owned();
    let scratch = temp_dir("incr_reset_matrix_cut");
    for cut in 0..=stale_wal.len() {
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(SNAPSHOT_FILE), &snap).unwrap();
        std::fs::write(scratch.join(&delta_name), &delta).unwrap();
        std::fs::write(scratch.join(WAL_FILE), &stale_wal[..cut]).unwrap();
        let db = DurableDb::open(&scratch).unwrap();
        assert_eq!(db.epoch(), 2, "delta epoch wins (cut {cut})");
        assert_eq!(db.recovery().deltas_folded, 1, "cut {cut}");
        assert_eq!(db.recovery().wal_records_replayed, 0, "stale records replayed at cut {cut}");
        assert_eq!(
            db.table("readings").unwrap().len(),
            5,
            "epoch mix: tuple count drifted at cut {cut}"
        );
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
        assert_eq!(db.wal_len(), 0, "stale log must be reset (cut {cut})");
    }
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn stale_wal_discard_counter_is_golden() {
    // Crash between checkpoint commit and WAL reset, with the *whole*
    // stale log surviving: the discard counter must account for exactly
    // the records written before the checkpoint — 1 schema + 3 bases +
    // 3 tuples = 7 — no more, no less.
    let dir = temp_dir("stale_golden");
    {
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", sensor_schema()).unwrap();
        for i in 0..3 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
    }
    let stale_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
    {
        let mut db = DurableDb::open(&dir).unwrap();
        db.checkpoint().unwrap();
        drop(db);
    }
    assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
    // Resurrect the pre-checkpoint log: the simulated torn reset.
    std::fs::write(dir.join(WAL_FILE), &stale_wal).unwrap();
    let db = DurableDb::open(&dir).unwrap();
    assert!(db.recovery().snapshot_loaded);
    assert_eq!(db.recovery().stale_wal_records_discarded, 7, "1 schema + 3 bases + 3 tuples");
    assert_eq!(db.recovery().wal_records_replayed, 0);
    assert_eq!(db.table("readings").unwrap().len(), 3, "no double-apply");
    db.check_invariants().unwrap();
    // The counter surfaces verbatim in the grepable stats JSON.
    assert!(db.stats_json().contains("\"stale_wal_records_discarded\":7"));
    drop(db);
    // Idempotent: the discard is durable, a second open sees a clean log.
    let db = DurableDb::open(&dir).unwrap();
    assert_eq!(db.recovery().stale_wal_records_discarded, 0);
    assert_eq!(db.table("readings").unwrap().len(), 3);
    // Same fence after an *incremental* checkpoint: epoch 1 → 2.
    let mut db = db;
    db.insert_simple(
        "readings",
        &[("id", Value::Int(77))],
        &[("v", Pdf1::gaussian(7.0, 1.0).unwrap())],
    )
    .unwrap();
    let stale_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
    db.checkpoint_incremental().unwrap();
    drop(db);
    std::fs::write(dir.join(WAL_FILE), &stale_wal).unwrap();
    let db = DurableDb::open(&dir).unwrap();
    // Epoch stamp + 1 base + 1 tuple survived the simulated torn reset.
    assert_eq!(db.recovery().stale_wal_records_discarded, 3, "stamp + base + tuple");
    assert_eq!(db.table("readings").unwrap().len(), 4);
    db.check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_delta_cleanup_counter_is_golden() {
    // A full checkpoint that crashes between the snapshot rename and the
    // delta cleanup leaves deltas whose epochs the snapshot has subsumed;
    // recovery must delete them and count exactly how many.
    use orion_storage::DeltaFile;
    let dir = temp_dir("stale_delta_golden");
    {
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", sensor_schema()).unwrap();
        for i in 0..2 {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
            db.checkpoint_incremental().unwrap();
        }
        assert_eq!(DeltaFile::list(&dir).unwrap().len(), 1, "epoch 1 full + epoch 2 delta");
        db.insert_simple(
            "readings",
            &[("id", Value::Int(9))],
            &[("v", Pdf1::gaussian(9.0, 1.0).unwrap())],
        )
        .unwrap();
        // Save the delta, run the full checkpoint, then put it back —
        // simulating the crash before cleanup.
        let (_, delta_path) = DeltaFile::list(&dir).unwrap().pop().unwrap();
        let stale = std::fs::read(&delta_path).unwrap();
        db.checkpoint().unwrap();
        assert!(DeltaFile::list(&dir).unwrap().is_empty());
        std::fs::write(&delta_path, &stale).unwrap();
        drop(db);
    }
    let db = DurableDb::open(&dir).unwrap();
    assert_eq!(db.recovery().stale_deltas_removed, 1, "exactly the resurrected delta");
    assert_eq!(db.recovery().deltas_folded, 0);
    assert_eq!(db.epoch(), 3);
    assert_eq!(db.table("readings").unwrap().len(), 3);
    db.check_invariants().unwrap();
    assert!(DeltaFile::list(&dir).unwrap().is_empty(), "stale delta physically deleted");
    assert!(db.stats_json().contains("\"stale_deltas_removed\":1"));
    std::fs::remove_dir_all(&dir).ok();
}

/// A self-describing record: 8-byte index followed by that index repeated.
fn marked_record(i: u64, len: usize) -> Vec<u8> {
    let mut rec = i.to_le_bytes().to_vec();
    rec.resize(8 + len, (i % 251) as u8);
    rec
}

fn record_is_intact(rec: &[u8]) -> bool {
    if rec.len() < 8 {
        return false;
    }
    let i = u64::from_le_bytes(rec[..8].try_into().unwrap());
    rec[8..].iter().all(|&b| b == (i % 251) as u8)
}

/// Runs the heap workload until the injected kill, then reopens cleanly.
/// Returns (records inserted before the kill, fault stats snapshot).
fn run_until_kill(
    path: &std::path::Path,
    plan: FaultPlan,
) -> (u64, std::sync::Arc<orion_storage::faults::FaultStats>) {
    std::fs::remove_file(path).ok();
    let store = FaultyStore::new(FileStore::create(path).unwrap(), plan);
    let stats = store.stats();
    let mut heap = HeapFile::new(store, 4);
    let mut inserted = 0u64;
    for i in 0..200u64 {
        if heap.insert(&marked_record(i, 600)).is_err() {
            break;
        }
        inserted += 1;
        if i % 16 == 0 && heap.pool().flush().is_err() {
            break;
        }
    }
    let _ = heap.pool().flush();
    (inserted, stats)
}

#[test]
fn storage_crash_matrix_reads_clean_prefix_or_detects_torn_page() {
    let plan = FaultPlan::seeded(0xC0FFEE, 64, 8);
    let points = plan.write_fault_points();
    assert!(!points.is_empty(), "seeded plan must schedule write faults");
    let path = temp_dir("storage_matrix").join("heap.dat");
    let mut torn_detected = 0u64;
    // The matrix: one run per (kill point, fault shape).
    for &nth in &points {
        for shape in 0..2 {
            let plan = match shape {
                0 => FaultPlan::new().fail_write(nth),
                _ => FaultPlan::new().torn_write(nth, PAGE_SIZE / 3),
            };
            let (inserted, fstats) = run_until_kill(&path, plan);
            // Kill happened iff the workload generated enough writes.
            let killed = fstats.faults_injected.get() > 0;
            // Post-crash: reopen the *inner* file cleanly, like a restart.
            let heap = HeapFile::new(FileStore::open(&path).unwrap(), 4);
            let mut seen = 0u64;
            let scan = heap.scan(|_, rec| {
                assert!(record_is_intact(rec), "committed record corrupted (kill at {nth})");
                seen += 1;
                true
            });
            match scan {
                Ok(()) => assert!(seen <= inserted, "more records than inserted (kill at {nth})"),
                Err(e) => {
                    // Only a torn write may leave an unreadable page, and
                    // the pool must classify it as corruption.
                    assert!(killed && shape == 1, "unexpected scan failure: {e} (kill at {nth})");
                    assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                    assert!(heap.pool().stats().snapshot().torn_pages > 0);
                    torn_detected += 1;
                }
            }
        }
    }
    assert!(torn_detected > 0, "matrix must exercise torn-page detection");
    std::fs::remove_file(&path).ok();
}

#[test]
fn halt_on_fault_kill_leaves_parseable_flight_dump() {
    // The black-box contract: a simulated kill (halt-on-fault) must leave
    // a flight-recorder dump behind, and that dump must be parseable JSON
    // carrying the kill reason and the spans recorded before the kill.
    use orion_obs::{json, recorder, Tracer};
    let dir = temp_dir("flight_dump");
    let recorder_was = recorder::enabled();
    recorder::set_enabled(true);
    let tracer = Tracer::global();
    let tracer_was = tracer.enabled();
    tracer.set_enabled(true);
    {
        // Guarantee the flight ring holds at least one pre-kill span.
        let lane = tracer.unique_lane("crash-workload");
        let mut s = lane.span("before-kill", "test");
        s.arg("note", "recorded before the simulated kill");
    }
    let path = dir.join("heap.dat");
    // Concurrent tests may re-point the process-wide dump dir (every
    // DurableDb::open does); re-arm and retry to make the race harmless.
    let mut dump = None;
    for _ in 0..5 {
        recorder::set_dump_dir(&dir);
        let (_inserted, fstats) = run_until_kill(&path, FaultPlan::new().fail_write(0));
        assert!(fstats.faults_injected.get() > 0, "the kill must fire");
        dump = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("flight-")));
        if dump.is_some() {
            break;
        }
    }
    tracer.set_enabled(tracer_was);
    recorder::set_enabled(recorder_was);
    let dump = dump.expect("halt-on-fault kill wrote a flight dump");
    let text = std::fs::read_to_string(&dump).unwrap();
    let doc = json::parse(&text).expect("flight dump parses");
    let reason = doc.get("reason").and_then(json::Value::as_str).expect("reason recorded");
    assert!(reason.contains("halt-on-fault"), "reason: {reason}");
    // The dedicated validator (also behind the `trace_check` binary)
    // checks the reason string plus the trace-event structure.
    orion_obs::validate_flight_dump(&doc).unwrap_or_else(|e| panic!("flight dump malformed: {e}"));
    assert!(text.contains("before-kill"), "pre-kill span survives in the dump");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_bit_flip_is_detected_by_the_pool() {
    let path = temp_dir("bit_flip").join("heap.dat");
    {
        let mut heap = HeapFile::new(FileStore::create(&path).unwrap(), 4);
        for i in 0..20u64 {
            heap.insert(&marked_record(i, 300)).unwrap();
        }
        heap.sync().unwrap();
    }
    // Reopen through a store that flips one bit on the first read.
    let store =
        FaultyStore::new(FileStore::open(&path).unwrap(), FaultPlan::new().flip_read(0, 12_345));
    let fstats = store.stats();
    let heap = HeapFile::new(store, 4);
    let err = heap.scan(|_, _| true).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("torn page"));
    assert_eq!(fstats.read_bit_flips.get(), 1);
    // Golden: exactly the one flipped page is counted, nothing else.
    assert_eq!(heap.pool().stats().snapshot().torn_pages, 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn recovery_and_fault_counters_are_grepable() {
    // The observability contract: every durability counter surfaces in a
    // stats JSON a harness can grep.
    let dir = temp_dir("counters");
    let mut db = DurableDb::open(&dir).unwrap();
    db.create_table("readings", sensor_schema()).unwrap();
    db.insert_simple(
        "readings",
        &[("id", Value::Int(1))],
        &[("v", Pdf1::gaussian(1.0, 1.0).unwrap())],
    )
    .unwrap();
    drop(db);
    let db = DurableDb::open(&dir).unwrap();
    let s = db.stats_json();
    // Schema + base + tuple records land in the WAL.
    assert!(s.contains("\"wal_records_replayed\":3"), "stats: {s}");
    assert!(s.contains("\"wal_bytes_truncated\":0"), "stats: {s}");

    let store = FaultyStore::new(orion_storage::MemStore::new(), FaultPlan::new().fail_write(0));
    let fjson = store.stats().to_json().to_string_compact();
    assert!(fjson.contains("\"faults_injected\""));

    let heap = HeapFile::new(orion_storage::MemStore::new(), 4);
    let iojson = heap.pool().stats().snapshot().to_json().to_string_compact();
    assert!(iojson.contains("\"torn_pages\""));
    assert!(iojson.contains("\"write_errors\""));
    std::fs::remove_dir_all(&dir).ok();
}
