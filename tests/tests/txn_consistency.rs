//! Jepsen-style consistency checker for snapshot-isolation transactions.
//!
//! Four (or more) concurrent clients run seeded insert/update/delete mixes
//! through [`Txn`] against one [`SharedDurableDb`]. Each client records,
//! for every transaction that **committed**, its commit sequence number
//! and the *resolved* effects it staged (updates as **deltas** against the
//! balance its snapshot read), plus the `(uid, balance)` set its snapshot
//! observed at begin. Conflicted transactions retry with bounded backoff
//! and record only their final successful resolution.
//!
//! After the threads join, the checker replays the committed effects —
//! serially, in commit order — into a plain in-memory oracle built from
//! the same `Relation`/`HistoryRegistry` primitives and asserts:
//!
//! * **no dirty reads / no partial visibility**: every snapshot a client
//!   observed equals some state in the committed chain `S_0, S_1, …` — a
//!   half-applied transaction or an uncommitted write would produce a set
//!   matching no chain state;
//! * **no lost updates**: because updates replay as deltas against the
//!   oracle's own serial balance, two commits built on the same base value
//!   (a first-committer-wins failure) make the balances — and hence the
//!   canonical fingerprints — diverge;
//! * **serial equivalence**: the live database is bitwise identical
//!   (certain values, pdf bytes, ancestor sets, refcounts) to the oracle,
//!   via the shared [`orion_tests::fingerprint`];
//! * **durability**: reopening from disk reproduces the same fingerprint
//!   and a second open finds a clean log;
//! * **all-or-none recovery**: killing the database at *every byte* of the
//!   surviving WAL recovers exactly the first `k` fully-committed
//!   transactions — never a torn one (`txn_kill_matrix`);
//! * under `--features failpoints`, the same workload runs against
//!   injected fsync and append failures: failed commits abort cleanly,
//!   leave no WAL trace, and never corrupt later commits.
//!
//! Set `ORION_ORACLE_SEED` to replay `txn_consistency_env_seeded` with a
//! specific seed (`scripts/check.sh` pins three seeds in CI).

use orion_core::durable::{DurableDb, SNAPSHOT_FILE, WAL_FILE};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::DeltaFile;
use orion_tests::fingerprint;
use proptest::test_runner::TestRng;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Unique scratch directories across tests within one process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

const TABLE: &str = "acct";
/// Small shared key space so clients collide on rows and exercise
/// first-committer-wins validation, not just disjoint appends.
const KEYS: u64 = 8;
const MAX_ATTEMPTS: u32 = 200;

fn temp_dir(name: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("orion_txn_consistency").join(format!("{name}_{n}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn acct_schema() -> ProbSchema {
    ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("uid", ColumnType::Int, false),
            ("bal", ColumnType::Real, false),
            ("v", ColumnType::Real, true),
        ],
        vec![],
    )
    .unwrap()
}

fn uid_of(t: &ProbTuple) -> i64 {
    match t.certain[1] {
        Value::Int(u) => u,
        _ => panic!("uid is a certain int"),
    }
}

fn bal_of(t: &ProbTuple) -> f64 {
    match t.certain[2] {
        Value::Real(b) => b,
        _ => panic!("bal is a certain real"),
    }
}

type RowArgs = ([(&'static str, Value); 3], Vec<(Vec<&'static str>, JointPdf)>);

fn row_args(key: i64, uid: i64, val: f64) -> RowArgs {
    (
        [("id", Value::Int(key)), ("uid", Value::Int(uid)), ("bal", Value::Real(val))],
        vec![(vec!["v"], JointPdf::from_pdf1(Pdf1::gaussian(val, 1.0).unwrap()))],
    )
}

/// Sets a row's balance: the certain column and the uncertain `v` node
/// (replaced by a fresh certain base registered in `reg` — no `add_refs`;
/// the caller owns the reference bookkeeping).
fn set_balance(t: &mut ProbTuple, reg: &mut HistoryRegistry, new_bal: f64) {
    t.certain[2] = Value::Real(new_bal);
    let attr = t.nodes[0].dims[0].column.expect("v is visible");
    let joint = JointPdf::from_pdf1(Pdf1::certain(new_bal));
    let id = reg.register(vec![attr], joint.clone());
    t.nodes[0] = PdfNode::base(id, &[attr], joint, [id].into_iter().collect());
}

/// One resolved write of a committed transaction. Updates carry the
/// *delta*, not the absolute balance: the oracle re-derives the absolute
/// value from its own serial state, so lost updates are detectable.
#[derive(Debug, Clone)]
enum Effect {
    Insert { key: i64, uid: i64, val: f64 },
    Delete { uid: i64 },
    Update { uid: i64, delta: f64 },
}

/// Stages one effect on an open transaction.
fn stage(txn: &mut Txn, e: &Effect) -> EngineResult<()> {
    match e {
        Effect::Insert { key, uid, val } => {
            let (certain, uncertain) = row_args(*key, *uid, *val);
            txn.insert(TABLE, &certain, uncertain)
        }
        Effect::Delete { uid } => {
            let u = *uid;
            let n = txn.delete_where(TABLE, |t| uid_of(t) == u)?;
            assert_eq!(n, 1, "resolved delete targets exactly one private row");
            Ok(())
        }
        Effect::Update { uid, delta } => {
            let (u, d) = (*uid, *delta);
            let n = txn.update_where(
                TABLE,
                |t| uid_of(t) == u,
                |t, reg| {
                    let new_bal = bal_of(t) + d;
                    set_balance(t, reg, new_bal);
                    Ok(())
                },
            )?;
            assert_eq!(n, 1, "resolved update targets exactly one private row");
            Ok(())
        }
    }
}

/// Applies one committed effect to the serial in-memory oracle, mirroring
/// exactly the reference bookkeeping WAL replay performs.
fn oracle_apply(tables: &mut HashMap<String, Relation>, reg: &mut HistoryRegistry, e: &Effect) {
    let rel = tables.get_mut(TABLE).expect("oracle table exists");
    match e {
        Effect::Insert { key, uid, val } => {
            let (certain, uncertain) = row_args(*key, *uid, *val);
            rel.insert(reg, &certain, uncertain).unwrap();
        }
        Effect::Delete { uid } => {
            let u = *uid;
            let n = rel.delete_where(reg, |t| uid_of(t) == u);
            assert_eq!(n, 1, "committed delete of uid {u} must find its row in the serial oracle");
        }
        Effect::Update { uid, delta } => {
            let idx = rel
                .tuples
                .iter()
                .position(|t| uid_of(t) == *uid)
                .unwrap_or_else(|| panic!("committed update of uid {uid} lost its row"));
            let mut new_t = rel.tuples[idx].clone();
            let new_bal = bal_of(&new_t) + delta;
            set_balance(&mut new_t, reg, new_bal);
            let old_t = std::mem::replace(&mut rel.tuples[idx], new_t);
            let new_nodes = rel.tuples[idx].nodes.clone();
            // Position-wise node diff, same as `persist::apply_record` for
            // an update record: take new references before releasing old.
            for i in 0..old_t.nodes.len().max(new_nodes.len()) {
                if old_t.nodes.get(i) == new_nodes.get(i) {
                    continue;
                }
                if let Some(nw) = new_nodes.get(i) {
                    reg.add_refs(&nw.ancestors);
                }
                if let Some(o) = old_t.nodes.get(i) {
                    reg.release_refs(&o.ancestors);
                    if o.ancestors.len() == 1 {
                        let id = *o.ancestors.iter().next().expect("len checked");
                        reg.delete_base(id);
                    }
                }
            }
        }
    }
}

/// A snapshot observation: the sorted `(uid, balance-bits)` set a
/// transaction saw at begin.
type Observation = Vec<(i64, u64)>;

fn observe(txn: &mut Txn) -> Observation {
    let mut rows: Observation = txn.with_view(|tables, _| {
        tables[TABLE].tuples.iter().map(|t| (uid_of(t), bal_of(t).to_bits())).collect()
    });
    rows.sort_unstable();
    rows
}

fn oracle_observation(tables: &HashMap<String, Relation>) -> Observation {
    let mut rows: Observation =
        tables[TABLE].tuples.iter().map(|t| (uid_of(t), bal_of(t).to_bits())).collect();
    rows.sort_unstable();
    rows
}

/// What one client saw and did.
#[derive(Debug, Default)]
struct ClientReport {
    /// `(commit_seq, resolved effects)` for every committed transaction.
    committed: Vec<(u64, Vec<Effect>)>,
    /// Snapshot observations, one per begin (including retries).
    observations: Vec<Observation>,
    /// Deliberate rollbacks (client chose to abort).
    rolled_back: usize,
    /// Commits that failed on an injected I/O fault (chaos runs only).
    io_aborted: usize,
}

/// Runs one client's seeded transaction mix. Conflicts retry with bounded
/// exponential-ish backoff; with `tolerate_io_errors`, a non-retryable
/// commit failure counts as an abort instead of a panic.
fn run_client(
    db: &SharedDurableDb,
    seed: u64,
    cid: usize,
    txns: usize,
    tolerate_io_errors: bool,
) -> ClientReport {
    let mut rng = TestRng::deterministic(&format!("txn-consistency-{seed}-client-{cid}"));
    let mut report = ClientReport::default();
    let mut uid_counter: i64 = 0;
    for _ in 0..txns {
        let read_only = rng.below(8) == 0;
        let n_ops = if read_only { 0 } else { 1 + rng.below(3) as usize };
        let roll = !read_only && rng.below(10) == 0;
        let mut attempt = 0u32;
        'retry: loop {
            attempt += 1;
            assert!(attempt <= MAX_ATTEMPTS, "client {cid} livelocked on conflicts");
            let mut txn = Txn::begin(db);
            report.observations.push(observe(&mut txn));
            let mut effects = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                let rows: Vec<i64> =
                    txn.with_view(|tables, _| tables[TABLE].tuples.iter().map(uid_of).collect());
                let dice = rng.below(10);
                let e = if rows.is_empty() || dice < 4 {
                    uid_counter += 1;
                    Effect::Insert {
                        key: rng.below(KEYS) as i64,
                        uid: (cid as i64 + 1) * 1_000_000 + uid_counter,
                        val: rng.below(400) as f64 / 4.0,
                    }
                } else if dice < 8 {
                    Effect::Update {
                        uid: rows[rng.below(rows.len() as u64) as usize],
                        delta: (1 + rng.below(16)) as f64 / 4.0,
                    }
                } else {
                    Effect::Delete { uid: rows[rng.below(rows.len() as u64) as usize] }
                };
                stage(&mut txn, &e).unwrap();
                effects.push(e);
                // Read-your-writes sanity: every staged insert is visible
                // in this transaction's own private view.
                if let Effect::Insert { uid, .. } = effects.last().unwrap() {
                    let u = *uid;
                    assert!(
                        txn.with_view(|tables, _| tables[TABLE]
                            .tuples
                            .iter()
                            .any(|t| uid_of(t) == u)),
                        "own insert invisible to its transaction"
                    );
                }
            }
            if roll {
                txn.rollback();
                report.rolled_back += 1;
                break 'retry;
            }
            // A fully self-cancelled transaction (insert + delete of the
            // same private row) commits via the read-only path without a
            // sequence bump; its net effect is nothing, so it is not part
            // of the serial order.
            let wrote = txn.write_count() > 0;
            match txn.commit() {
                Ok(seq) => {
                    if wrote {
                        report.committed.push((seq, effects));
                    }
                    break 'retry;
                }
                Err(e) if e.is_retryable() => {
                    std::thread::sleep(Duration::from_micros(50 * u64::from(attempt.min(10))));
                    continue 'retry;
                }
                Err(e) if tolerate_io_errors => {
                    // Injected fault: the commit must have applied nothing;
                    // the next transaction proves the engine stays usable.
                    let _ = e;
                    report.io_aborted += 1;
                    break 'retry;
                }
                Err(e) => panic!("client {cid} commit failed: {e}"),
            }
        }
    }
    report
}

/// Everything the serial replay derives from the client reports.
struct OracleVerdict {
    /// Canonical fingerprints: `fps[0]` is the setup state, `fps[k]` the
    /// state after the first `k` committed transactions in commit order.
    fps: Vec<String>,
    committed_txns: usize,
}

/// Replays the committed effects serially and checks every invariant that
/// does not need the on-disk files.
fn check_against_oracle(
    db: &SharedDurableDb,
    reports: &[ClientReport],
    oracle_tables: &mut HashMap<String, Relation>,
    oracle_reg: &mut HistoryRegistry,
    base_seq: u64,
) -> OracleVerdict {
    let stats = StatsCatalog::new();
    // Total commit order: commit_seq is allocated under the engine's core
    // lock, so it is unique per writing transaction.
    let mut by_seq: BTreeMap<u64, &Vec<Effect>> = BTreeMap::new();
    for r in reports {
        for (seq, effects) in &r.committed {
            assert!(
                by_seq.insert(*seq, effects).is_none(),
                "two transactions claim commit_seq {seq}"
            );
        }
    }
    // No gaps: every sequence bump the engine handed out is accounted for
    // by exactly one recorded transaction (nothing committed untracked).
    let seqs: Vec<u64> = by_seq.keys().copied().collect();
    let expect: Vec<u64> = (base_seq + 1..=base_seq + seqs.len() as u64).collect();
    assert_eq!(seqs, expect, "commit sequence numbers must be contiguous");

    let mut valid_states: HashSet<Observation> = HashSet::new();
    valid_states.insert(oracle_observation(oracle_tables));
    let mut fps = vec![fingerprint(oracle_tables, oracle_reg, &stats)];
    for effects in by_seq.values() {
        for e in *effects {
            oracle_apply(oracle_tables, oracle_reg, e);
        }
        valid_states.insert(oracle_observation(oracle_tables));
        fps.push(fingerprint(oracle_tables, oracle_reg, &stats));
    }

    // No dirty reads, no partial visibility: every snapshot equals some
    // committed state of the serial chain.
    for (cid, r) in reports.iter().enumerate() {
        for (i, obs) in r.observations.iter().enumerate() {
            assert!(
                valid_states.contains(obs),
                "client {cid} observation {i} matches no committed state: {obs:?}"
            );
        }
    }

    // Serial equivalence of the live engine state, bitwise.
    let live = db.with_tables(|tables, reg| fingerprint(tables, reg, &stats));
    assert_eq!(live, *fps.last().unwrap(), "live state diverged from the serial oracle");
    db.check_invariants().unwrap();
    assert!(db.active_txns().is_empty(), "no transaction may remain registered");
    OracleVerdict { committed_txns: by_seq.len(), fps }
}

/// Number of transactions whose **commit marker frame** (tag 7) fits
/// entirely inside `bytes[..cut]` — the all-or-none unit of recovery.
fn committed_txn_groups(bytes: &[u8], cut: usize) -> usize {
    let mut off = 0usize;
    let mut k = 0;
    while off + 8 <= cut {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > cut {
            break;
        }
        if bytes[off + 8] == 7 {
            k += 1;
        }
        off += 8 + len;
    }
    k
}

fn fp_db(db: &DurableDb) -> String {
    fingerprint(db.tables(), db.registry(), db.stats_catalog())
}

/// Kills the database at every byte of the surviving WAL: recovery must
/// land exactly on the oracle state after the first `k` fully-committed
/// transactions — a transaction is never applied partially — and must be
/// idempotent.
fn kill_matrix(src: &Path, fps: &[String], scratch: &Path) {
    let wal = std::fs::read(src.join(WAL_FILE)).unwrap_or_default();
    let snapshot = std::fs::read(src.join(SNAPSHOT_FILE)).ok();
    let deltas: Vec<(PathBuf, Vec<u8>)> = DeltaFile::list(src)
        .unwrap()
        .into_iter()
        .map(|(_, p)| {
            let bytes = std::fs::read(&p).unwrap();
            (PathBuf::from(p.file_name().unwrap()), bytes)
        })
        .collect();
    for cut in 0..=wal.len() {
        std::fs::remove_dir_all(scratch).ok();
        std::fs::create_dir_all(scratch).unwrap();
        if let Some(snap) = &snapshot {
            std::fs::write(scratch.join(SNAPSHOT_FILE), snap).unwrap();
        }
        for (name, bytes) in &deltas {
            std::fs::write(scratch.join(name), bytes).unwrap();
        }
        std::fs::write(scratch.join(WAL_FILE), &wal[..cut]).unwrap();
        let k = committed_txn_groups(&wal, cut);
        let db = DurableDb::open(scratch)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(
            fp_db(&db),
            fps[k],
            "recovered state != oracle after {k} whole transactions (cut at byte {cut}/{})",
            wal.len()
        );
        db.check_invariants().unwrap_or_else(|e| panic!("invariants at cut {cut}: {e}"));
        drop(db);
        let db = DurableDb::open(scratch).unwrap();
        assert_eq!(fp_db(&db), fps[k], "second recovery diverged (cut at byte {cut})");
        assert_eq!(db.recovery().wal_bytes_truncated, 0, "second open must find a clean log");
    }
    std::fs::remove_dir_all(scratch).ok();
}

/// Opens a database, seeds it (one committed setup transaction, then a
/// checkpoint so the WAL holds only workload transactions) and mirrors the
/// setup into the oracle.
fn setup(dir: &Path) -> (SharedDurableDb, HashMap<String, Relation>, HistoryRegistry, u64) {
    let db = SharedDurableDb::open(dir, GroupCommitConfig::default()).unwrap();
    let mut oracle_tables: HashMap<String, Relation> = HashMap::new();
    let mut oracle_reg = HistoryRegistry::new();
    oracle_tables.insert(TABLE.to_string(), Relation::new(TABLE, acct_schema()));

    let mut txn = Txn::begin(&db);
    txn.create_table(TABLE, acct_schema()).unwrap();
    for i in 0..4i64 {
        let e = Effect::Insert { key: i % KEYS as i64, uid: i + 1, val: 10.0 * (i + 1) as f64 };
        stage(&mut txn, &e).unwrap();
        oracle_apply(&mut oracle_tables, &mut oracle_reg, &e);
    }
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    let base_seq = db.commit_seq();
    (db, oracle_tables, oracle_reg, base_seq)
}

/// The full checker: concurrent seeded clients, serial oracle replay,
/// durability reopen, and (optionally) the byte-level kill matrix.
fn run_checker(name: &str, seed: u64, clients: usize, txns: usize, matrix: bool) {
    assert!(clients >= 4, "the checker needs real concurrency");
    let dir = temp_dir(&format!("{name}_{seed}"));
    let (db, mut oracle_tables, mut oracle_reg, base_seq) = setup(&dir);

    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|cid| {
                let db = &db;
                s.spawn(move || run_client(db, seed, cid, txns, false))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });

    let verdict =
        check_against_oracle(&db, &reports, &mut oracle_tables, &mut oracle_reg, base_seq);
    assert!(verdict.committed_txns > 0, "workload must commit something");

    // Durability: a clean reopen reproduces the exact oracle state.
    drop(db);
    let re = DurableDb::open(&dir).unwrap();
    assert_eq!(fp_db(&re), *verdict.fps.last().unwrap(), "reopen diverged from the oracle");
    assert_eq!(re.recovery().wal_bytes_truncated, 0, "clean shutdown leaves a clean log");
    re.check_invariants().unwrap();
    drop(re);

    if matrix {
        let scratch =
            std::env::temp_dir().join("orion_txn_consistency").join(format!("{name}_{seed}_cut"));
        kill_matrix(&dir, &verdict.fps, &scratch);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn txn_consistency_four_clients() {
    run_checker("four_clients", 0xA11CE, 4, 12, false);
}

#[test]
fn txn_kill_matrix_all_or_none() {
    // Smaller workload: the matrix recovers at every single WAL byte.
    run_checker("kill_matrix", 0xBEEF, 4, 3, true);
}

/// Seeded entry point for CI: `scripts/check.sh` runs this with three
/// pinned `ORION_ORACLE_SEED` values; unset, it uses a fixed default.
#[test]
fn txn_consistency_env_seeded() {
    let seed: u64 = std::env::var("ORION_ORACLE_SEED")
        .ok()
        .and_then(|s| match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        })
        .unwrap_or(0xA11CE);
    run_checker("env_seeded", seed, 4, 4, true);
}

/// The same checker under injected faults: a nemesis thread keeps arming
/// fsync and append failpoints while the clients run. Faulted commits
/// must abort without trace and later transactions must stay correct;
/// recovery from the surviving log must land on the serial oracle.
#[cfg(feature = "failpoints")]
#[test]
fn txn_chaos_survives_injected_faults() {
    use std::sync::atomic::AtomicBool;

    let seed = 0xFA17;
    let dir = temp_dir("chaos");
    let (db, mut oracle_tables, mut oracle_reg, base_seq) = setup(&dir);

    let done = AtomicBool::new(false);
    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let nemesis = {
            let db = &db;
            let done = &done;
            s.spawn(move || {
                let mut i = 0u32;
                while !done.load(Ordering::Relaxed) {
                    if i.is_multiple_of(2) {
                        db.inject_wal_sync_failure();
                    } else {
                        db.inject_wal_append_failure(i % 3);
                    }
                    i = i.wrapping_add(1);
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };
        let handles: Vec<_> = (0..4)
            .map(|cid| {
                let db = &db;
                s.spawn(move || run_client(db, seed, cid, 10, true))
            })
            .collect();
        let reports = handles.into_iter().map(|h| h.join().expect("client panicked")).collect();
        done.store(true, Ordering::Relaxed);
        nemesis.join().expect("nemesis panicked");
        reports
    });

    // The chain check runs first: the probes below commit after every
    // client observation and would otherwise disturb the serial order.
    let verdict =
        check_against_oracle(&db, &reports, &mut oracle_tables, &mut oracle_reg, base_seq);
    assert!(verdict.committed_txns > 0, "chaos run must still commit transactions");

    // The nemesis may have left failpoints armed (one sync flag, one
    // append counter). Two probe commits consume whatever is pending —
    // each either commits (feed the oracle) or aborts without trace.
    let stats = StatsCatalog::new();
    for (i, uid) in [888_000_001i64, 888_000_002].into_iter().enumerate() {
        let e = Effect::Insert { key: i as i64, uid, val: 2.0 + i as f64 };
        let mut probe = Txn::begin(&db);
        stage(&mut probe, &e).unwrap();
        if probe.commit().is_ok() {
            oracle_apply(&mut oracle_tables, &mut oracle_reg, &e);
        }
        assert_eq!(
            db.with_tables(|tables, reg| fingerprint(tables, reg, &stats)),
            fingerprint(&oracle_tables, &oracle_reg, &stats),
            "probe {i} diverged engine and oracle"
        );
    }

    // Deterministic fault coverage (independent of nemesis timing): arm a
    // sync failure, prove the commit fails and leaves no trace anywhere,
    // then prove the engine stays usable.
    let wal_before = db.wal_len();
    let fp_before = db.with_tables(|tables, reg| fingerprint(tables, reg, &stats));
    db.inject_wal_sync_failure();
    let doomed_row = Effect::Insert { key: 0, uid: 999_999_999, val: 1.0 };
    let mut doomed = Txn::begin(&db);
    stage(&mut doomed, &doomed_row).unwrap();
    assert!(doomed.commit().is_err(), "armed sync failpoint must fail the commit");
    assert_eq!(db.wal_len(), wal_before, "failed commit must leave no WAL trace");
    assert_eq!(
        db.with_tables(|tables, reg| fingerprint(tables, reg, &stats)),
        fp_before,
        "failed commit must leave no in-memory trace"
    );
    let mut retry = Txn::begin(&db);
    stage(&mut retry, &doomed_row).unwrap();
    retry.commit().expect("engine must stay usable after an injected fault");
    oracle_apply(&mut oracle_tables, &mut oracle_reg, &doomed_row);
    db.check_invariants().unwrap();

    // Recovery from the surviving log lands exactly on the oracle.
    let expect = fingerprint(&oracle_tables, &oracle_reg, &stats);
    drop(db);
    let re = DurableDb::open(&dir).unwrap();
    assert_eq!(fp_db(&re), expect, "post-chaos recovery diverged from the oracle");
    re.check_invariants().unwrap();
    drop(re);
    let re = DurableDb::open(&dir).unwrap();
    assert_eq!(re.recovery().wal_bytes_truncated, 0, "second open must find a clean log");
    std::fs::remove_dir_all(&dir).ok();
}
