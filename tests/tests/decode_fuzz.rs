//! Decoder hardening: no sequence of bytes — random, truncated, or
//! adversarially crafted — may panic a decoder. Corrupt input must always
//! surface as a typed error (`DecodeError` / `EngineError::Corrupt`).

use orion_core::persist::{apply_record, save_database, LoadState};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::codec::{decode_joint, decode_pdf1, encode_joint, encode_pdf1};
use orion_storage::{FileStore, HeapFile};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u32..256, 0..max).prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_pdf1_never_panics_on_arbitrary_bytes(bytes in arb_bytes(400)) {
        let _ = decode_pdf1(&mut &bytes[..]);
    }

    #[test]
    fn decode_joint_never_panics_on_arbitrary_bytes(bytes in arb_bytes(400)) {
        let _ = decode_joint(&mut &bytes[..]);
    }

    #[test]
    fn apply_record_never_panics_on_arbitrary_bytes(bytes in arb_bytes(400)) {
        let mut state = LoadState::default();
        let _ = apply_record(&bytes, &mut state);
    }

    #[test]
    fn single_byte_mutations_of_valid_encodings_never_panic(
        pos in 0usize..4096, delta in 1u32..256
    ) {
        let joint = JointPdf::independent(vec![
            Pdf1::gaussian(3.0, 2.0).unwrap(),
            Pdf1::discrete(vec![(1.0, 0.4), (2.0, 0.6)]).unwrap(),
        ])
        .unwrap();
        let mut bytes = Vec::new();
        encode_joint(&joint, &mut bytes);
        let pos = pos % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta as u8);
        // Decode may succeed (mutation hit a payload float) or fail, but
        // must never panic or loop.
        let _ = decode_joint(&mut &bytes[..]);
    }
}

/// Every strict prefix of a valid encoding must decode to an error.
#[test]
fn truncated_pdf_encodings_always_error() {
    for pdf in [
        Pdf1::gaussian(0.0, 1.0).unwrap(),
        Pdf1::uniform(-1.0, 1.0).unwrap(),
        Pdf1::discrete(vec![(1.0, 0.5), (2.0, 0.5)]).unwrap(),
        Pdf1::Histogram(Pdf1::gaussian(0.0, 1.0).unwrap().to_histogram(6).unwrap()),
    ] {
        let mut bytes = Vec::new();
        encode_pdf1(&pdf, &mut bytes);
        for cut in 0..bytes.len() {
            assert!(decode_pdf1(&mut &bytes[..cut]).is_err(), "prefix {cut} of {pdf}");
        }
    }
}

#[test]
fn truncated_database_records_always_error_as_corruption() {
    // Snapshot a small database and harvest its raw tagged records.
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(
        vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
        vec![],
    )
    .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_simple(
        &mut reg,
        &[("id", Value::Int(1))],
        &[("v", Pdf1::gaussian(5.0, 2.0).unwrap())],
    )
    .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);
    let path = std::env::temp_dir().join("orion_decode_fuzz.db");
    save_database(&path, &tables, &reg).unwrap();
    let heap = HeapFile::new(FileStore::open(&path).unwrap(), 8);
    let mut records: Vec<Vec<u8>> = Vec::new();
    heap.scan(|_, rec| {
        records.push(rec.to_vec());
        true
    })
    .unwrap();
    assert!(records.len() >= 3, "schema + base + tuple");

    for (i, rec) in records.iter().enumerate() {
        for cut in 0..rec.len() {
            let mut state = LoadState::default();
            for prev in &records[..i] {
                apply_record(prev, &mut state).unwrap();
            }
            let err = apply_record(&rec[..cut], &mut state)
                .expect_err(&format!("record {i} prefix {cut} must not decode"));
            assert!(err.is_corruption(), "record {i} prefix {cut}: {err}");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Crafted length-field attacks: a u32::MAX count must be rejected by
/// bounds math, not by attempting a multi-gigabyte allocation.
#[test]
fn absurd_length_fields_are_rejected_cheaply() {
    // Tuple record claiming u32::MAX certain values.
    let mut rec = vec![3u8]; // TAG_TUPLE
    rec.extend_from_slice(&1u32.to_le_bytes());
    rec.push(b'T');
    rec.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut state = LoadState::default();
    assert!(apply_record(&rec, &mut state).unwrap_err().is_corruption());

    // Schema record claiming u32::MAX columns.
    let mut rec = vec![1u8]; // TAG_SCHEMA
    rec.extend_from_slice(&1u32.to_le_bytes());
    rec.push(b'S');
    rec.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut state = LoadState::default();
    assert!(apply_record(&rec, &mut state).unwrap_err().is_corruption());

    // Base record claiming u32::MAX attributes.
    let mut rec = vec![2u8]; // TAG_BASE
    rec.extend_from_slice(&7u64.to_le_bytes());
    rec.push(0);
    rec.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut state = LoadState::default();
    assert!(apply_record(&rec, &mut state).unwrap_err().is_corruption());

    // String with an absurd length.
    let mut rec = vec![3u8]; // TAG_TUPLE, table-name length lies
    rec.extend_from_slice(&u32::MAX.to_le_bytes());
    rec.push(b'x');
    let mut state = LoadState::default();
    assert!(apply_record(&rec, &mut state).unwrap_err().is_corruption());
}
