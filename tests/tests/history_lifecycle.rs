//! History lifecycle across operator pipelines: reference counting, phantom
//! survival after base deletion, and correctness of late recombination
//! against still-live phantoms.

use orion_core::prelude::*;
use orion_core::project::project;
use orion_core::select::select;
use orion_pdf::prelude::*;

fn base_with_joint(reg: &mut HistoryRegistry) -> Relation {
    let schema = ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("a", ColumnType::Int, true),
            ("b", ColumnType::Int, true),
        ],
        vec![vec!["a", "b"]],
    )
    .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert(
        reg,
        &[("id", Value::Int(1))],
        vec![(
            vec!["a", "b"],
            JointPdf::from_points(
                JointDiscrete::from_points(2, vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)])
                    .unwrap(),
            ),
        )],
    )
    .unwrap();
    rel
}

#[test]
fn derived_views_hold_references() {
    let mut reg = HistoryRegistry::new();
    let rel = base_with_joint(&mut reg);
    let base_id = *rel.tuples[0].nodes[0].ancestors.iter().next().unwrap();
    assert_eq!(reg.ref_count(base_id), 1, "base tuple holds one reference");
    let view = project(&rel, &["a"], &mut reg, &ExecOptions::default()).unwrap();
    assert_eq!(reg.ref_count(base_id), 2, "derived view adds one");
    view.release(&mut reg);
    assert_eq!(reg.ref_count(base_id), 1);
}

#[test]
fn phantom_base_supports_late_recombination() {
    // Derive two views, DELETE the base tuple, then recombine the views:
    // the phantom base pdf must still drive the dependent merge.
    let mut reg = HistoryRegistry::new();
    let mut rel = base_with_joint(&mut reg);
    let opts = ExecOptions::default();

    let mut ta = project(&rel, &["id", "a"], &mut reg, &opts).unwrap();
    ta.name = "Ta".into();
    let sel = select(&rel, &Predicate::cmp("b", CmpOp::Gt, 4i64), &mut reg, &opts).unwrap();
    let mut tb = project(&sel, &["id", "b"], &mut reg, &opts).unwrap();
    tb.name = "Tb".into();
    sel.release(&mut reg);

    // Delete the base tuple: its pdf survives as a phantom node.
    let base_id = *rel.tuples[0].nodes[0].ancestors.iter().next().unwrap();
    let removed = rel.delete_where(&mut reg, |_| true);
    assert_eq!(removed, 1);
    assert!(reg.base(base_id).unwrap().phantom, "kept as phantom while referenced");

    // The join still reconstructs the correct joint through the phantom.
    let joined = orion_core::join::join(
        &ta,
        &tb,
        Some(&Predicate::cmp_cols("Ta.id", CmpOp::Eq, "Tb.id")),
        &mut reg,
        &opts,
    )
    .unwrap();
    assert_eq!(joined.len(), 1);
    assert!((joined.tuples[0].naive_existence() - 0.9).abs() < 1e-12);

    // Releasing every derived relation reclaims the phantom.
    joined.release(&mut reg);
    ta.release(&mut reg);
    tb.release(&mut reg);
    assert!(reg.base(base_id).is_err(), "phantom reclaimed at refcount zero");
}

#[test]
fn unreferenced_delete_reclaims_immediately() {
    let mut reg = HistoryRegistry::new();
    let mut rel = base_with_joint(&mut reg);
    let base_id = *rel.tuples[0].nodes[0].ancestors.iter().next().unwrap();
    rel.delete_where(&mut reg, |_| true);
    assert!(reg.base(base_id).is_err());
    assert!(reg.is_empty());
}

#[test]
fn threshold_and_selection_share_history_semantics() {
    // Pr(a) over a set merged by selection equals the selection's mass.
    let mut reg = HistoryRegistry::new();
    let rel = base_with_joint(&mut reg);
    let opts = ExecOptions::default();
    let sel = select(&rel, &Predicate::cmp_cols("a", CmpOp::Lt, "b"), &mut reg, &opts).unwrap();
    let a_id = rel.schema.column("a").unwrap().id;
    let prob =
        orion_core::threshold::attr_set_probability(&sel.tuples[0], &[a_id], &reg, &opts).unwrap();
    assert!((prob - 1.0).abs() < 1e-12, "a < b always holds in this joint");
}

#[test]
fn eager_and_lazy_collapse_agree() {
    let mut reg = HistoryRegistry::new();
    let rel = base_with_joint(&mut reg);
    let eager = ExecOptions::default();
    let lazy = ExecOptions { eager_collapse: false, ..ExecOptions::default() };

    let build = |reg: &mut HistoryRegistry, opts: &ExecOptions| {
        let mut ta = project(&rel, &["id", "a"], reg, opts).unwrap();
        ta.name = "Ta".into();
        let sel = select(&rel, &Predicate::cmp("b", CmpOp::Gt, 4i64), reg, opts).unwrap();
        let mut tb = project(&sel, &["id", "b"], reg, opts).unwrap();
        tb.name = "Tb".into();
        orion_core::join::join(
            &ta,
            &tb,
            Some(&Predicate::cmp_cols("Ta.id", CmpOp::Eq, "Tb.id")),
            reg,
            opts,
        )
        .unwrap()
    };
    let je = build(&mut reg, &eager);
    let jl = build(&mut reg, &lazy);
    assert_eq!(je.len(), jl.len());
    // Lazy keeps two nodes; eager one — but collapsed existence agrees.
    assert_eq!(je.tuples[0].nodes.len(), 1);
    assert_eq!(jl.tuples[0].nodes.len(), 2);
    let pe = je.tuples[0].naive_existence();
    let pl = orion_core::collapse::existence_prob(&jl.tuples[0], &reg, eager.resolution).unwrap();
    assert!((pe - pl).abs() < 1e-12);
    assert!((pe - 0.9).abs() < 1e-12);
}
