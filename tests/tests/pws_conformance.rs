//! Property-based certification of Theorems 1 and 2: on randomly generated
//! finite discrete databases and randomly composed select / project / join
//! pipelines, the probabilistic operators must produce exactly the row
//! distribution obtained by brute-force possible-worlds enumeration.

use orion_core::plan::Plan;
use orion_core::prelude::*;
use orion_core::pws::{conformance_report, distribution_distance};
use orion_pdf::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const TOL: f64 = 1e-9;

/// A generated uncertain attribute: up to 3 integer support points with
/// rational-ish probabilities summing to <= 1.
fn arb_discrete_pdf() -> impl Strategy<Value = Pdf1> {
    (prop::collection::vec((0i64..6, 1u32..5), 1..3), prop::bool::ANY).prop_map(|(raw, partial)| {
        let mut points: Vec<(f64, f64)> = Vec::new();
        let denom: u32 = raw.iter().map(|(_, w)| w).sum::<u32>() + u32::from(partial);
        for (v, w) in raw {
            points.push((v as f64, w as f64 / denom as f64));
        }
        Pdf1::discrete(points).expect("valid pdf")
    })
}

/// A generated joint 2-attribute pdf (correlated dependency set).
fn arb_joint2() -> impl Strategy<Value = JointPdf> {
    prop::collection::vec(((0i64..4, 0i64..4), 1u32..4), 1..4).prop_map(|raw| {
        let denom: u32 = raw.iter().map(|(_, w)| w).sum();
        let pts: Vec<(Vec<f64>, f64)> = raw
            .into_iter()
            .map(|((a, b), w)| (vec![a as f64, b as f64], w as f64 / denom as f64))
            .collect();
        JointPdf::from_points(JointDiscrete::from_points(2, pts).expect("valid joint"))
    })
}

/// Builds a small random relation T(id, a, b) where (a, b) is either a
/// correlated joint or two independent pdfs, per tuple count 1..=2.
fn arb_relation(name: &'static str) -> impl Strategy<Value = (&'static str, Vec<TupleSpec>)> {
    prop::collection::vec(arb_tuple_spec(), 1..3).prop_map(move |ts| (name, ts))
}

#[derive(Debug, Clone)]
enum TupleSpec {
    Independent(Pdf1, Pdf1),
    Correlated(JointPdf),
}

fn arb_tuple_spec() -> impl Strategy<Value = TupleSpec> {
    prop_oneof![
        (arb_discrete_pdf(), arb_discrete_pdf()).prop_map(|(a, b)| TupleSpec::Independent(a, b)),
        arb_joint2().prop_map(TupleSpec::Correlated),
    ]
}

fn build_tables(
    specs: Vec<(&'static str, Vec<TupleSpec>)>,
) -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let mut tables = HashMap::new();
    for (name, tuples) in specs {
        let schema = ProbSchema::new(
            vec![
                ("id", ColumnType::Int, false),
                ("a", ColumnType::Int, true),
                ("b", ColumnType::Int, true),
            ],
            vec![],
        )
        .expect("valid schema");
        let mut rel = Relation::new(name, schema);
        for (i, spec) in tuples.into_iter().enumerate() {
            match spec {
                TupleSpec::Independent(a, b) => rel
                    .insert(
                        &mut reg,
                        &[("id", Value::Int(i as i64))],
                        vec![
                            (vec!["a"], JointPdf::from_pdf1(a)),
                            (vec!["b"], JointPdf::from_pdf1(b)),
                        ],
                    )
                    .expect("insert"),
                TupleSpec::Correlated(j) => rel
                    .insert(&mut reg, &[("id", Value::Int(i as i64))], vec![(vec!["a", "b"], j)])
                    .expect("insert"),
            }
        }
        tables.insert(name.to_string(), rel);
    }
    (tables, reg)
}

/// A random comparison predicate over the relation's columns.
fn arb_pred() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    prop_oneof![
        (op.clone(), 0i64..6).prop_map(|(o, c)| Predicate::cmp("a", o, c)),
        (op.clone(), 0i64..6).prop_map(|(o, c)| Predicate::cmp("b", o, c)),
        op.clone().prop_map(|o| Predicate::cmp_cols("a", o, "b")),
        (op.clone(), op).prop_map(|(o1, o2)| {
            Predicate::And(vec![Predicate::cmp("a", o1, 2i64), Predicate::cmp("b", o2, 2i64)])
        }),
    ]
}

fn check(plan: &Plan, tables: &HashMap<String, Relation>, reg: &mut HistoryRegistry) {
    let opts = ExecOptions::default();
    let (truth, engine) = conformance_report(plan, tables, reg, &opts).expect("both engines run");
    let d = distribution_distance(&truth, &engine);
    assert!(d < TOL, "deviation {d} for plan {plan:?}\ntruth: {truth:?}\nengine: {engine:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn selection_conforms(spec in arb_relation("t"), pred in arb_pred()) {
        let (tables, mut reg) = build_tables(vec![spec]);
        let plan = Plan::scan("t").select(pred);
        check(&plan, &tables, &mut reg);
    }

    #[test]
    fn select_then_project_conforms(spec in arb_relation("t"), pred in arb_pred()) {
        let (tables, mut reg) = build_tables(vec![spec]);
        let plan = Plan::scan("t").select(pred).project(&["id", "a"]);
        check(&plan, &tables, &mut reg);
    }

    #[test]
    fn double_selection_conforms(
        spec in arb_relation("t"),
        p1 in arb_pred(),
        p2 in arb_pred(),
    ) {
        let (tables, mut reg) = build_tables(vec![spec]);
        let plan = Plan::scan("t").select(p1).select(p2);
        check(&plan, &tables, &mut reg);
    }

    #[test]
    fn join_of_two_tables_conforms(
        l in arb_relation("l"),
        r in arb_relation("r"),
        op in prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Eq), Just(CmpOp::Ge)],
    ) {
        let (tables, mut reg) = build_tables(vec![l, r]);
        // Join on an uncertain cross-table comparison. After projecting,
        // `a` lives only on the left and `b` only on the right, so the
        // names need no qualification.
        let pred = Predicate::cmp_cols("a", op, "b");
        let plan = Plan::scan("l").project(&["id", "a"]).join_on(
            Plan::scan("r").project(&["id", "b"]),
            Some(pred),
        );
        check(&plan, &tables, &mut reg);
    }

    #[test]
    fn fig3_shape_pipeline_conforms(spec in arb_relation("t"), thresh in 0i64..5) {
        // Project two views of the same table, then rejoin them: the
        // history mechanism must reconstruct the original correlations.
        let (tables, mut reg) = build_tables(vec![spec]);
        let ta = Plan::scan("t").project(&["id", "a"]);
        let tb = Plan::scan("t")
            .select(Predicate::cmp("b", CmpOp::Gt, thresh))
            .project(&["id", "b"]);
        let plan = ta.join_on(tb, Some(Predicate::cmp_cols("pi(t).id", CmpOp::Eq, "pi(sigma(t)).id")));
        check(&plan, &tables, &mut reg);
    }
}

#[test]
fn join_project_join_composition() {
    // A deterministic deeper pipeline kept out of proptest for speed.
    let (tables, mut reg) = orion_tests::table2();
    let plan = Plan::scan("T").select(Predicate::cmp_cols("a", CmpOp::Lt, "b")).project(&["a"]);
    let opts = ExecOptions::default();
    let (truth, engine) = conformance_report(&plan, &tables, &mut reg, &opts).unwrap();
    assert!(distribution_distance(&truth, &engine) < TOL);
}
