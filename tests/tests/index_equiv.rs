//! Index-vs-scan differential oracle: on randomly generated relations
//! (gaussian, discrete, and partial-mass pdfs; NULL-bearing certain keys)
//! and randomly drawn threshold/selection queries, the persistent-index
//! access paths must be **bit-identical** to the plain scan — same result
//! tuples (certain values, pdf values, history ids) and same registry
//! reference counts — in every configuration: scan vs cost-planned vs
//! rule-forced index, row and batch modes, 1 and 4 threads.
//!
//! The index layer only ever *prunes* (its mask is a sound superset of the
//! passing set), so any divergence — an unsound cdf bound, a mis-keyed
//! support interval, a mask misapplied by the compacted executor — shows
//! up as an assertion failure, not as statistical noise.
//!
//! Set `ORION_ORACLE_SEED` to replay `index_env_seeded_differential` with
//! a pinned generator seed (decimal or 0x-hex), matching the recovery and
//! batch oracles' replay protocol.

use orion_core::batch::ExecMode;
use orion_core::pindex::{IndexDef, IndexHandle, IndexKind, PlannerMode};
use orion_core::plan::{plan_select_access, plan_threshold_access};
use orion_core::prelude::*;
use orion_core::select::select_masked;
use orion_core::threshold::{threshold_pred, threshold_pred_masked};
use orion_pdf::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Thread counts exercised per mode; morsel size 4 splits even the small
/// generated relations into several morsels.
const THREADS: [usize; 2] = [1, 4];

/// How the access path is chosen for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Path {
    /// No index infrastructure at all: the seed scan.
    Scan,
    /// Persistent cdf/evx index + cost-based planner.
    Cost,
    /// Persistent index forced by the rule-based planner.
    Rule,
}

/// One generated tuple: a NULL-able certain key plus one uncertain value.
#[derive(Debug, Clone)]
struct TupleSpec {
    k: Option<i64>,
    v: Pdf1,
}

/// Pdf mix: gaussians (continuous supports for the cdf quantile levels),
/// discretes, and partial-mass discretes (probabilistic existence; their
/// mass bound is what the index prunes on).
fn arb_pdf() -> impl Strategy<Value = Pdf1> {
    prop_oneof![
        (-20.0..20.0f64, 0.5..6.0f64)
            .prop_map(|(m, var)| Pdf1::gaussian(m, var).expect("valid gaussian")),
        (prop::collection::vec((-20i64..20, 1u32..5), 1..4), prop::bool::ANY).prop_map(
            |(raw, partial)| {
                let denom: u32 = raw.iter().map(|(_, w)| w).sum::<u32>() + 2 * u32::from(partial);
                let points: Vec<(f64, f64)> = raw
                    .into_iter()
                    .map(|(v, w)| (v as f64, f64::from(w) / f64::from(denom)))
                    .collect();
                Pdf1::discrete(points).expect("valid pdf")
            }
        ),
    ]
}

fn arb_tuple_spec() -> impl Strategy<Value = TupleSpec> {
    ((0u32..4, -10i64..10), arb_pdf())
        .prop_map(|((w, key), v)| TupleSpec { k: (w != 0).then_some(key), v })
}

fn arb_tuples() -> impl Strategy<Value = Vec<TupleSpec>> {
    prop::collection::vec(arb_tuple_spec(), 4..12)
}

/// A threshold query `σ_{Pr(v ∈ [lo, hi]) ⊙ p}`: bounded and lower-bounded
/// intervals, prunable (`>`/`>=`) and non-prunable (`<`/`<=`) operators —
/// the latter must make the planner fall back to the scan, still bitwise
/// identical.
#[derive(Debug, Clone)]
struct Query {
    pred: Predicate,
    op: CmpOp,
    p: f64,
}

fn arb_query() -> impl Strategy<Value = Query> {
    let op = prop_oneof![Just(CmpOp::Gt), Just(CmpOp::Ge), Just(CmpOp::Lt), Just(CmpOp::Le)];
    let pred = prop_oneof![
        (-15.0..15.0f64).prop_map(|lo| Predicate::cmp("v", CmpOp::Gt, lo)),
        (-15.0..10.0f64, 0.5..10.0f64).prop_map(|(lo, w)| Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, lo),
            Predicate::cmp("v", CmpOp::Le, lo + w),
        ])),
    ];
    (pred, op, 0u32..=10).prop_map(|(pred, op, p)| Query { pred, op, p: f64::from(p) / 10.0 })
}

fn schema() -> ProbSchema {
    ProbSchema::new(vec![("k", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
        .expect("valid schema")
}

/// Materializes the relation + registry + stats from the specs; each
/// configuration rebuilds from scratch so history ids align across runs.
/// The schema is shared (AttrIds are globally allocated and the tuples
/// record them — see `batch_equiv.rs`).
fn build(schema: &ProbSchema, specs: &[TupleSpec]) -> (Relation, HistoryRegistry, StatsCatalog) {
    let mut reg = HistoryRegistry::new();
    let mut rel = Relation::new("t", schema.clone());
    for spec in specs {
        let k = spec.k.map(Value::Int).unwrap_or(Value::Null);
        rel.insert_simple(&mut reg, &[("k", k)], &[("v", spec.v.clone())]).expect("insert");
    }
    let mut stats = StatsCatalog::new();
    stats.insert(analyze_relation(&rel).expect("analyze"));
    (rel, reg, stats)
}

fn opts_for(path: Path, mode: ExecMode, threads: usize) -> ExecOptions {
    let indexes = match path {
        Path::Scan => None,
        Path::Cost | Path::Rule => {
            let handle = IndexHandle::new();
            handle
                .lock()
                .create(IndexDef {
                    name: "ix_v".into(),
                    table: "t".into(),
                    column: "v".into(),
                    kind: IndexKind::Cdf,
                })
                .expect("create index");
            handle
                .lock()
                .create(IndexDef {
                    name: "ix_k".into(),
                    table: "t".into(),
                    column: "k".into(),
                    kind: IndexKind::Evx,
                })
                .expect("create index");
            Some(handle)
        }
    };
    let planner = if path == Path::Rule { PlannerMode::Rule } else { PlannerMode::Cost };
    ExecOptions { mode, threads, morsel_size: 4, planner, indexes, ..ExecOptions::default() }
}

/// Compact registry fingerprint: base count, highest id, and every live
/// id's reference count.
fn registry_fingerprint(reg: &HistoryRegistry) -> (usize, u64, Vec<(u64, usize)>) {
    let mut refs: Vec<(u64, usize)> =
        reg.iter_bases().map(|(id, _)| (id, reg.ref_count(id))).collect();
    refs.sort_unstable();
    (reg.len(), reg.last_id(), refs)
}

/// Runs the threshold query scan-row-serial (the baseline), then through
/// every (path, mode, threads) configuration, asserting bitwise-equal
/// outputs and registry effects.
fn assert_threshold_equivalent(specs: &[TupleSpec], q: &Query) {
    let schema = schema();
    let (rel, mut reg, _) = build(&schema, specs);
    let base =
        threshold_pred(&rel, &q.pred, q.op, q.p, &mut reg, &opts_for(Path::Scan, ExecMode::Row, 1))
            .expect("baseline scan");
    let base_fp = registry_fingerprint(&reg);

    for path in [Path::Scan, Path::Cost, Path::Rule] {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            for threads in THREADS {
                if path == Path::Scan && mode == ExecMode::Row && threads == 1 {
                    continue; // the baseline itself
                }
                let (rel, mut reg, stats) = build(&schema, specs);
                let opts = opts_for(path, mode, threads);
                let out = match path {
                    Path::Scan => {
                        threshold_pred(&rel, &q.pred, q.op, q.p, &mut reg, &opts).expect("scan run")
                    }
                    Path::Cost | Path::Rule => {
                        let ap =
                            plan_threshold_access(&rel, &q.pred, q.op, q.p, Some(&stats), &opts)
                                .expect("plan");
                        threshold_pred_masked(
                            &rel,
                            &q.pred,
                            q.op,
                            q.p,
                            ap.mask.as_deref(),
                            &mut reg,
                            &opts,
                        )
                        .expect("indexed run")
                    }
                };
                let ctx = format!("path={path:?} mode={mode} threads={threads}, query={q:?}");
                assert_eq!(out.tuples, base.tuples, "{ctx}");
                assert_eq!(registry_fingerprint(&reg), base_fp, "{ctx}");
            }
        }
    }
}

/// Same protocol for certain-key selection through the `evx` index.
fn assert_select_equivalent(specs: &[TupleSpec], pred: &Predicate) {
    let schema = schema();
    let (rel, mut reg, _) = build(&schema, specs);
    let base = select_masked(&rel, pred, None, &mut reg, &opts_for(Path::Scan, ExecMode::Row, 1))
        .expect("baseline scan");
    let base_fp = registry_fingerprint(&reg);

    for path in [Path::Cost, Path::Rule] {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            for threads in THREADS {
                let (rel, mut reg, stats) = build(&schema, specs);
                let opts = opts_for(path, mode, threads);
                let ap = plan_select_access(&rel, pred, Some(&stats), &opts).expect("plan");
                let out = select_masked(&rel, pred, ap.mask.as_deref(), &mut reg, &opts)
                    .expect("indexed run");
                let ctx = format!("path={path:?} mode={mode} threads={threads}, pred={pred:?}");
                assert_eq!(out.tuples, base.tuples, "{ctx}");
                assert_eq!(registry_fingerprint(&reg), base_fp, "{ctx}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn threshold_paths_are_equivalent(specs in arb_tuples(), q in arb_query()) {
        assert_threshold_equivalent(&specs, &q);
    }

    #[test]
    fn select_paths_are_equivalent(
        specs in arb_tuples(),
        op in prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Le), Just(CmpOp::Gt), Just(CmpOp::Ge), Just(CmpOp::Eq)],
        c in -10i64..10,
    ) {
        // NULL keys make the comparison UNKNOWN; the evx index must keep
        // them as candidates and the evaluator rejects them — in every
        // configuration.
        assert_select_equivalent(&specs, &Predicate::cmp("k", op, c));
    }
}

/// Seeded entry point for CI: `scripts/check.sh` runs this with pinned
/// `ORION_ORACLE_SEED` values; unset, it uses a fixed default. The seed
/// drives the same generators as the property tests, so a failure replays
/// exactly with the same seed.
#[test]
fn index_env_seeded_differential() {
    let seed: u64 = std::env::var("ORION_ORACLE_SEED")
        .ok()
        .and_then(|s| match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        })
        .unwrap_or(0x1DE5);
    let mut rng = TestRng::deterministic(&format!("orion-index-{seed}"));
    for _ in 0..6 {
        let specs = arb_tuples().generate(&mut rng);
        let q = arb_query().generate(&mut rng);
        assert_threshold_equivalent(&specs, &q);
        let op = prop_oneof![Just(CmpOp::Le), Just(CmpOp::Eq), Just(CmpOp::Gt)].generate(&mut rng);
        let c = (-10i64..10).generate(&mut rng);
        assert_select_equivalent(&specs, &Predicate::cmp("k", op, c));
    }
}
