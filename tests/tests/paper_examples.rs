//! Every worked example in the paper, reproduced end to end and asserted
//! against the numbers printed in the text.

use orion_core::plan::Plan;
use orion_core::prelude::*;
use orion_core::pws::{pws_row_distribution, CanonValue};
use orion_pdf::prelude::*;
use orion_sql::{Database, Output};
use orion_tests::table2;

fn real_row(vals: &[f64]) -> Vec<CanonValue> {
    vals.iter().map(|v| CanonValue::Real(v.to_bits())).collect()
}

#[test]
fn table1_sensor_database() {
    // Table I: three sensors with Gaus(20,5), Gaus(25,4), Gaus(13,1).
    let mut db = Database::new();
    db.execute("CREATE TABLE sensors (id INT, location REAL UNCERTAIN)").unwrap();
    db.execute(
        "INSERT INTO sensors VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), \
         (3, GAUSSIAN(13, 1))",
    )
    .unwrap();
    let rel = db.table("sensors").unwrap();
    assert_eq!(rel.len(), 3);
    for (i, (m, v)) in [(20.0, 5.0), (25.0, 4.0), (13.0, 1.0)].iter().enumerate() {
        let pdf = rel.marginal(i, "location").unwrap();
        assert!((pdf.expected_value().unwrap() - m).abs() < 1e-9);
        match pdf {
            Pdf1::Symbolic { dist: Symbolic::Gaussian { mean, variance }, .. } => {
                assert_eq!(mean, *m);
                assert_eq!(variance, *v);
            }
            other => panic!("stored symbolically, got {other}"),
        }
    }
}

#[test]
fn table3_possible_worlds_probabilities() {
    // Table III: the four worlds of tuple 1 have probabilities
    // 0.06, 0.04, 0.54, 0.36 (and tuple 2 is certain).
    let (tables, _) = table2();
    let dist = pws_row_distribution(&Plan::scan("T"), &tables).unwrap();
    assert!((dist[&real_row(&[0.0, 1.0])] - 0.06).abs() < 1e-12);
    assert!((dist[&real_row(&[0.0, 2.0])] - 0.04).abs() < 1e-12);
    assert!((dist[&real_row(&[1.0, 1.0])] - 0.54).abs() < 1e-12);
    assert!((dist[&real_row(&[1.0, 2.0])] - 0.36).abs() < 1e-12);
    assert!((dist[&real_row(&[7.0, 3.0])] - 1.0).abs() < 1e-12);
    assert_eq!(dist.len(), 5);
}

#[test]
fn section_3c_selection_example() {
    // σ_{a<b}(T) = one tuple with Discrete({0,1}:0.06, {0,2}:0.04,
    // {1,2}:0.36), schema Δ = {{a,b}}, ancestors {t1.a, t1.b}.
    let (tables, mut reg) = table2();
    let rel = &tables["T"];
    let out = orion_core::select::select(
        rel,
        &Predicate::cmp_cols("a", CmpOp::Lt, "b"),
        &mut reg,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.len(), 1);
    let n = &out.tuples[0].nodes[0];
    assert_eq!(n.ancestors.len(), 2);
    assert!((n.mass() - 0.46).abs() < 1e-12);
    let j = n.joint.enumerate().unwrap();
    assert_eq!(j.len(), 3);
    // Dimension order follows the merge; look probabilities up via columns.
    let pa = n.dim_of(rel.schema.column("a").unwrap().id).unwrap();
    let pb = n.dim_of(rel.schema.column("b").unwrap().id).unwrap();
    let prob = |a: f64, b: f64| {
        let mut pt = vec![0.0; 2];
        pt[pa] = a;
        pt[pb] = b;
        j.prob_at(&pt)
    };
    assert!((prob(0.0, 1.0) - 0.06).abs() < 1e-12);
    assert!((prob(0.0, 2.0) - 0.04).abs() < 1e-12);
    assert!((prob(1.0, 2.0) - 0.36).abs() < 1e-12);
}

#[test]
fn table4_missing_values_vs_missing_tuples() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b REAL UNCERTAIN, c REAL UNCERTAIN, CORRELATED (b, c))")
        .unwrap();
    // Missing *attribute values*: the tuple certainly exists but b, c are
    // NULL-like (here: an uninformative full-mass pdf is the probabilistic
    // analogue; SQL NULL stays available for certain columns).
    db.execute("INSERT INTO t VALUES (1, JOINT((2, 3):0.8, (0, 0):0.2))").unwrap();
    // Missing *tuple*: partial pdf summing to 0.8 (closed world).
    db.execute("INSERT INTO t VALUES (2, JOINT((4, 7):0.2, (4.1, 3.7):0.6))").unwrap();
    let rel = db.table("t").unwrap();
    assert!((rel.tuples[0].naive_existence() - 1.0).abs() < 1e-12);
    assert!((rel.tuples[1].naive_existence() - 0.8).abs() < 1e-12);
}

#[test]
fn figure3_complete_pipeline() {
    // T with joint {a,b}: t1 = Discrete({4,5}:0.9, {2,3}:0.1),
    // t2 = Discrete({7,3}:0.7). Ta = Π_a(T); Tb = Π_b(σ_{b>4}(T)).
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(
        vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)],
        vec![vec!["a", "b"]],
    )
    .unwrap();
    let mut t = Relation::new("T", schema);
    for pts in [vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)], vec![(vec![7.0, 3.0], 0.7)]] {
        t.insert(
            &mut reg,
            &[],
            vec![(
                vec!["a", "b"],
                JointPdf::from_points(JointDiscrete::from_points(2, pts).unwrap()),
            )],
        )
        .unwrap();
    }
    let opts = ExecOptions::default();
    let mut ta = orion_core::project::project(&t, &["a"], &mut reg, &opts).unwrap();
    ta.name = "Ta".into();
    // Ta's marginals: Discrete(4:0.9, 2:0.1) and Discrete(7:0.7).
    let a_id = t.schema.column("a").unwrap().id;
    let b_id = t.schema.column("b").unwrap().id;
    let ma = ta.marginal(0, "a").unwrap();
    assert!((ma.density(4.0) - 0.9).abs() < 1e-12);
    assert!((ma.density(2.0) - 0.1).abs() < 1e-12);

    let sel =
        orion_core::select::select(&t, &Predicate::cmp("b", CmpOp::Gt, 4i64), &mut reg, &opts)
            .unwrap();
    let mut tb = orion_core::project::project(&sel, &["b"], &mut reg, &opts).unwrap();
    tb.name = "Tb".into();
    assert_eq!(tb.len(), 1, "t2 fails b > 4");
    let mb = tb.marginal(0, "b").unwrap();
    assert!((mb.density(5.0) - 0.9).abs() < 1e-12);

    // The joined T2 (correct): t'1 joint = Discrete({4,5}:0.9);
    // t'2 = Discrete({7,5}:0.63) via independence.
    let joined = orion_core::join::join(&ta, &tb, None, &mut reg, &opts).unwrap();
    assert_eq!(joined.len(), 2);
    let existences: Vec<f64> = joined.tuples.iter().map(|tp| tp.naive_existence()).collect();
    let mut sorted = existences.clone();
    sorted.sort_by(f64::total_cmp);
    assert!((sorted[0] - 0.63).abs() < 1e-12);
    assert!((sorted[1] - 0.90).abs() < 1e-12);
    // Per-tuple joint distributions.
    for tp in &joined.tuples {
        let ma = tp.node_for(a_id).unwrap().marginal(a_id).unwrap();
        let mb = tp.node_for(b_id).unwrap().marginal(b_id).unwrap();
        if ma.density(4.0) > 0.0 {
            // t'1: no phantom (2, 5) world.
            assert_eq!(ma.density(2.0), 0.0, "phantom world excluded");
            assert!((mb.density(5.0) - 0.9).abs() < 1e-12);
        } else {
            // t'2: independent pair (7, 5).
            assert!((ma.density(7.0) - 0.7).abs() < 1e-12);
            assert!((mb.density(5.0) - 0.9).abs() < 1e-12);
        }
    }
}

#[test]
fn gaussian_floor_representation_example() {
    // Section III-A: Gaus(5,1) under x < 5 is stored as
    // [Gaus(5,1), Floor{[5, oo]}].
    let mut db = Database::new();
    db.execute("CREATE TABLE t (x REAL UNCERTAIN)").unwrap();
    db.execute("INSERT INTO t VALUES (GAUSSIAN(5, 1))").unwrap();
    let out = db.execute("SELECT * FROM t WHERE x < 5").unwrap();
    let Output::Table(rel) = out else { panic!("expected table") };
    assert_eq!(rel.marginal(0, "x").unwrap().to_string(), "[Gaus(5,1), Floor{[5,inf]}]");
}
