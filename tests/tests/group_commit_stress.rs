//! Group-commit stress (`--features failpoints`): many threads hammer a
//! [`SharedDurableDb`] while fsync failures are injected mid-run. The
//! durability contract under test:
//!
//! * every insert that was **acked** (returned `Ok`) survives recovery;
//! * every insert that was **nacked** (returned `Err`) leaves no trace —
//!   neither in memory after rollback nor on disk after recovery;
//! * concurrent commits share fsyncs (`group_commit_batches` /
//!   `fsyncs_saved` move), which is the entire point of the protocol.
#![cfg(feature = "failpoints")]

use orion_core::durable::{DurableDb, SharedDurableDb};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::GroupCommitConfig;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_group_commit_stress").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> ProbSchema {
    ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
        .unwrap()
}

fn batching_config() -> GroupCommitConfig {
    GroupCommitConfig {
        window: Duration::from_millis(2),
        max_batch_bytes: 1 << 20,
        ..GroupCommitConfig::default()
    }
}

/// Ids present in the `readings` table (certain column 0).
fn ids_of(rel: &Relation) -> BTreeSet<i64> {
    rel.tuples
        .iter()
        .map(|t| match t.certain[0] {
            Value::Int(i) => i,
            ref v => panic!("unexpected id value {v:?}"),
        })
        .collect()
}

/// Runs `threads × per_thread` concurrent inserts, optionally injecting a
/// sync failure before every `fail_every`-th insert issued by thread 0.
/// Returns (acked ids, nacked ids).
fn hammer(
    db: &SharedDurableDb,
    threads: i64,
    per_thread: i64,
    fail_every: Option<i64>,
) -> (BTreeSet<i64>, BTreeSet<i64>) {
    let acked = Mutex::new(BTreeSet::new());
    let nacked = Mutex::new(BTreeSet::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            let (acked, nacked) = (&acked, &nacked);
            s.spawn(move || {
                for i in 0..per_thread {
                    let id = t * 10_000 + i;
                    if t == 0 {
                        if let Some(every) = fail_every {
                            if i % every == 0 {
                                // Fails the *next batch* fsync: whichever
                                // commits share that batch all get nacked.
                                db.inject_wal_sync_failure();
                            }
                        }
                    }
                    let res = db.insert_simple(
                        "readings",
                        &[("id", Value::Int(id))],
                        &[("v", Pdf1::gaussian(id as f64, 1.0).unwrap())],
                    );
                    match res {
                        Ok(()) => drop(acked.lock().unwrap().insert(id)),
                        Err(_) => drop(nacked.lock().unwrap().insert(id)),
                    }
                }
            });
        }
    });
    (acked.into_inner().unwrap(), nacked.into_inner().unwrap())
}

/// Recovers the directory fresh and returns the surviving ids.
fn recovered_ids(dir: &Path) -> BTreeSet<i64> {
    let db = DurableDb::open(dir).unwrap();
    db.check_invariants().unwrap();
    ids_of(db.table("readings").unwrap())
}

#[test]
fn concurrent_writers_share_fsyncs_and_acked_commits_survive() {
    let dir = temp_dir("fault_free");
    let db = SharedDurableDb::open(&dir, batching_config()).unwrap();
    db.create_table("readings", schema()).unwrap();
    let (acked, nacked) = hammer(&db, 8, 40, None);
    assert_eq!(acked.len(), 8 * 40, "fault-free run acks everything");
    assert!(nacked.is_empty());
    db.check_invariants().unwrap();
    assert_eq!(db.with_tables(|tables, _| ids_of(&tables["readings"])), acked);

    let stats = db.wal_stats();
    let commits = stats.group_commit_commits.get();
    let fsyncs = stats.fsyncs.get();
    assert_eq!(commits, 8 * 40 + 1, "every insert plus the schema is one commit");
    assert!(stats.group_commit_batches.get() > 0);
    assert_eq!(stats.fsyncs_saved.get(), commits - fsyncs, "ledger: saved = commits − fsyncs");
    assert!(
        fsyncs < commits,
        "8 writers with a 2ms window must share fsyncs ({fsyncs} fsyncs for {commits} commits)"
    );
    drop(db);
    assert_eq!(recovered_ids(&dir), acked, "recovery returns exactly the acked set");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_sync_failures_nack_whole_batches_but_never_acked_commits() {
    let dir = temp_dir("sync_faults");
    let db = SharedDurableDb::open(&dir, batching_config()).unwrap();
    db.create_table("readings", schema()).unwrap();
    let (acked, nacked) = hammer(&db, 8, 25, Some(5));
    assert!(!nacked.is_empty(), "injected sync failures must nack some commits");
    assert!(!acked.is_empty(), "retries between faults must still land commits");
    db.check_invariants().unwrap();
    // Rollback removed every nacked tuple from memory, kept every ack.
    assert_eq!(db.with_tables(|tables, _| ids_of(&tables["readings"])), acked);
    drop(db);
    let recovered = recovered_ids(&dir);
    assert_eq!(recovered, acked, "acked ⊆ recovered and recovered ⊆ acked");
    assert!(recovered.is_disjoint(&nacked), "no nacked commit may resurrect");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn append_failpoint_under_concurrency_rolls_back_exactly_one_commit() {
    let dir = temp_dir("append_fault");
    let db = SharedDurableDb::open(&dir, batching_config()).unwrap();
    db.create_table("readings", schema()).unwrap();
    // Deterministic single-threaded probe first: the very next record
    // (the insert's base pdf) fails, the insert nacks and rolls back.
    db.inject_wal_append_failure(0);
    let err = db.insert_simple(
        "readings",
        &[("id", Value::Int(-1))],
        &[("v", Pdf1::gaussian(0.0, 1.0).unwrap())],
    );
    assert!(err.is_err());
    db.check_invariants().unwrap();
    assert!(db.with_tables(|tables, _| tables["readings"].is_empty()));
    // Then a concurrent burst with a handful of per-record faults sprayed
    // in: whoever draws the poisoned record nacks, everyone else lands.
    let acked = Mutex::new(BTreeSet::new());
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let db = db.clone();
            let acked = &acked;
            s.spawn(move || {
                for i in 0..20 {
                    let id = t * 10_000 + i;
                    if t == 0 && i % 7 == 0 {
                        db.inject_wal_append_failure(3);
                    }
                    if db
                        .insert_simple(
                            "readings",
                            &[("id", Value::Int(id))],
                            &[("v", Pdf1::gaussian(id as f64, 1.0).unwrap())],
                        )
                        .is_ok()
                    {
                        acked.lock().unwrap().insert(id);
                    }
                }
            });
        }
    });
    let acked = acked.into_inner().unwrap();
    db.check_invariants().unwrap();
    assert_eq!(db.with_tables(|tables, _| ids_of(&tables["readings"])), acked);
    drop(db);
    assert_eq!(recovered_ids(&dir), acked);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoints_interleaved_with_writers_preserve_the_acked_set() {
    let dir = temp_dir("ckpt_interleave");
    let db = SharedDurableDb::open(&dir, batching_config()).unwrap();
    db.create_table("readings", schema()).unwrap();
    let acked = Mutex::new(BTreeSet::new());
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let db = db.clone();
            let acked = &acked;
            s.spawn(move || {
                for i in 0..30 {
                    let id = t * 10_000 + i;
                    if db
                        .insert_simple(
                            "readings",
                            &[("id", Value::Int(id))],
                            &[("v", Pdf1::gaussian(id as f64, 1.0).unwrap())],
                        )
                        .is_ok()
                    {
                        acked.lock().unwrap().insert(id);
                    }
                }
            });
        }
        // A checkpointer thread alternates full and incremental snapshots
        // while the writers run; each one drains in-flight commits first.
        let db = db.clone();
        s.spawn(move || {
            for round in 0..6 {
                if round % 2 == 0 {
                    db.checkpoint_incremental().unwrap();
                } else {
                    db.checkpoint().unwrap();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });
    let acked = acked.into_inner().unwrap();
    assert_eq!(acked.len(), 4 * 30);
    db.check_invariants().unwrap();
    drop(db);
    assert_eq!(recovered_ids(&dir), acked, "chain + WAL recovery loses nothing");
    std::fs::remove_dir_all(&dir).ok();
}
