//! End-to-end SQL scenarios spanning the parser, planner, engine, and pdf
//! layers.

use orion_core::prelude::Value;
use orion_sql::{Database, Output};

fn table(out: Output) -> orion_core::prelude::Relation {
    match out {
        Output::Table(rel) => rel,
        other => panic!("expected table, got {other:?}"),
    }
}

fn rows(out: Output) -> (Vec<String>, Vec<Vec<String>>) {
    match out {
        Output::Rows { header, rows } => (header, rows),
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn sensor_monitoring_scenario() {
    let mut db = Database::new();
    db.execute("CREATE TABLE readings (rid INT, site TEXT, temp REAL UNCERTAIN)").unwrap();
    db.execute(
        "INSERT INTO readings VALUES \
         (1, 'north', GAUSSIAN(20, 4)), \
         (2, 'north', GAUSSIAN(35, 9)), \
         (3, 'south', GAUSSIAN(50, 1)), \
         (4, 'south', UNIFORM(10, 30))",
    )
    .unwrap();

    // Mixed certain + uncertain predicates.
    let rel =
        table(db.execute("SELECT * FROM readings WHERE site = 'north' AND temp < 30").unwrap());
    assert_eq!(rel.len(), 2);
    // Gaus(20,4): nearly all mass below 30; Gaus(35,9): small tail mass.
    assert!(rel.tuples[0].naive_existence() > 0.99);
    assert!(rel.tuples[1].naive_existence() < 0.05);

    // Threshold prunes low-probability matches.
    let rel = table(
        db.execute("SELECT * FROM readings WHERE site = 'north' AND PROB(temp < 30) > 0.5")
            .unwrap(),
    );
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.value(0, "rid").unwrap(), &Value::Int(1));

    // Expected values across mixed distribution families.
    let (_, out_rows) = rows(db.execute("SELECT rid, EXPECTED(temp) FROM readings").unwrap());
    let expected: Vec<f64> = out_rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!((expected[0] - 20.0).abs() < 1e-6);
    assert!((expected[3] - 20.0).abs() < 1e-6, "uniform [10,30] mean");
}

#[test]
fn join_pipeline_scenario() {
    let mut db = Database::new();
    db.execute("CREATE TABLE trucks (tid INT, pos REAL UNCERTAIN)").unwrap();
    db.execute("CREATE TABLE zones (zid INT, boundary REAL UNCERTAIN)").unwrap();
    db.execute("INSERT INTO trucks VALUES (1, GAUSSIAN(10, 4)), (2, GAUSSIAN(45, 4))").unwrap();
    db.execute("INSERT INTO zones VALUES (7, UNIFORM(20, 30)), (8, UNIFORM(40, 60))").unwrap();
    // Which (truck, zone) pairs have the truck west of the boundary?
    let rel = table(db.execute("SELECT * FROM trucks JOIN zones ON pos < boundary").unwrap());
    // Truck 1 is west of both zones almost surely; truck 2 of zone 8 with
    // moderate probability and of zone 7 almost never.
    assert!(rel.len() >= 3);
    let find = |tid: i64, zid: i64| {
        rel.tuples
            .iter()
            .find(|t| {
                t.certain[rel.schema.index_of("tid").unwrap()] == Value::Int(tid)
                    && t.certain[rel.schema.index_of("zid").unwrap()] == Value::Int(zid)
            })
            .map(|t| t.naive_existence())
    };
    assert!(find(1, 7).unwrap() > 0.99);
    assert!(find(1, 8).unwrap() > 0.99);
    let t2z8 = find(2, 8).unwrap();
    assert!(t2z8 > 0.3 && t2z8 < 0.9, "t2z8 = {t2z8}");
}

#[test]
fn correlated_insert_and_query() {
    let mut db = Database::new();
    db.execute("CREATE TABLE obj (oid INT, x REAL UNCERTAIN, y REAL UNCERTAIN, CORRELATED (x, y))")
        .unwrap();
    db.execute(
        "INSERT INTO obj VALUES (1, JOINT((0, 0):0.5, (10, 10):0.5)), \
         (2, JOINT((0, 10):0.5, (10, 0):0.5))",
    )
    .unwrap();
    // x < 5 AND y < 5: object 1 satisfies with p 0.5 (world (0,0));
    // object 2 never (its worlds are anti-correlated).
    let rel = table(db.execute("SELECT * FROM obj WHERE x < 5 AND y < 5").unwrap());
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.value(0, "oid").unwrap(), &Value::Int(1));
    assert!((rel.tuples[0].naive_existence() - 0.5).abs() < 1e-9);
}

#[test]
fn discrete_and_symbolic_families_coexist() {
    let mut db = Database::new();
    db.execute("CREATE TABLE mixed (k INT, v REAL UNCERTAIN)").unwrap();
    db.execute(
        "INSERT INTO mixed VALUES \
         (1, POISSON(3)), (2, BINOMIAL(10, 0.5)), (3, BERNOULLI(0.25)), \
         (4, GEOMETRIC(0.5)), (5, EXPONENTIAL(0.1)), \
         (6, HISTOGRAM(0, 2, 0.25, 0.25, 0.5)), (7, DISCRETE(1:0.4, 2:0.6))",
    )
    .unwrap();
    let (_, out_rows) = rows(db.execute("SELECT k, EXPECTED(v) FROM mixed").unwrap());
    let means: Vec<f64> = out_rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!((means[0] - 3.0).abs() < 1e-6);
    assert!((means[1] - 5.0).abs() < 1e-6);
    assert!((means[2] - 0.25).abs() < 1e-6);
    assert!((means[3] - 2.0).abs() < 1e-6);
    assert!((means[4] - 10.0).abs() < 1e-6);
    // Histogram buckets [0,2):.25, [2,4):.25, [4,6):.5 -> 1*.25+3*.25+5*.5.
    assert!((means[5] - 3.5).abs() < 1e-6);
    assert!((means[6] - 1.6).abs() < 1e-6);

    // A selection floors all families consistently.
    let rel = table(db.execute("SELECT * FROM mixed WHERE v >= 2").unwrap());
    for t in &rel.tuples {
        assert!(t.naive_existence() > 0.0);
    }
    // Bernoulli(0.25) has no mass at v >= 2: its tuple is gone.
    assert!(rel
        .tuples
        .iter()
        .all(|t| t.certain[rel.schema.index_of("k").unwrap()] != Value::Int(3)));
}

#[test]
fn update_workflow_delete_and_reinsert() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v REAL UNCERTAIN)").unwrap();
    db.execute("INSERT INTO t VALUES (1, GAUSSIAN(0, 1)), (2, GAUSSIAN(5, 1))").unwrap();
    assert!(matches!(db.execute("DELETE FROM t WHERE k = 1").unwrap(), Output::Count(1)));
    db.execute("INSERT INTO t VALUES (1, GAUSSIAN(100, 1))").unwrap();
    let (_, out_rows) = rows(db.execute("SELECT k, EXPECTED(v) FROM t WHERE k = 1").unwrap());
    assert_eq!(out_rows.len(), 1);
    assert!((out_rows[0][1].parse::<f64>().unwrap() - 100.0).abs() < 1e-6);
}

#[test]
fn error_paths_are_reported() {
    let mut db = Database::new();
    assert!(db.execute("SELECT * FROM missing").is_err());
    db.execute("CREATE TABLE t (v REAL UNCERTAIN)").unwrap();
    assert!(db.execute("CREATE TABLE t (v REAL UNCERTAIN)").is_err());
    assert!(db.execute("INSERT INTO t VALUES (GAUSSIAN(0, -1))").is_err(), "bad variance");
    assert!(db.execute("INSERT INTO t VALUES (DISCRETE(1:0.9, 2:0.9))").is_err(), "mass > 1");
    assert!(db.execute("SELECT nope FROM t").is_err());
    assert!(
        db.execute("SELECT * FROM t WHERE PROB(v < 1) > 0.5 OR v > 2").is_err(),
        "thresholds must be top-level conjuncts"
    );
}

#[test]
fn three_statement_composition_keeps_histories_consistent() {
    // Build a view chain through SQL and check existence probabilities stay
    // PWS-consistent (composition of floors).
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v REAL UNCERTAIN)").unwrap();
    db.execute("INSERT INTO t VALUES (1, DISCRETE(1:0.25, 2:0.25, 3:0.25, 4:0.25))").unwrap();
    let rel = table(db.execute("SELECT * FROM t WHERE v > 1 AND v < 4").unwrap());
    assert!((rel.tuples[0].naive_existence() - 0.5).abs() < 1e-12);
    let rel = table(db.execute("SELECT * FROM t WHERE v > 1 AND v < 4 AND v <> 2").unwrap());
    assert!((rel.tuples[0].naive_existence() - 0.25).abs() < 1e-12);
}
