//! Storage ↔ engine integration: relations round-trip through on-disk heap
//! files, the buffer pool behaves under pressure, and representation sizes
//! drive page counts the way Figure 5 requires.

use orion_pdf::prelude::*;
use orion_storage::codec::{decode_joint, decode_pdf1, encode_joint, encode_pdf1};
use orion_storage::{BufferPool, FileStore, HeapFile, MemStore, Page, PageId, PageStore, Wal};
use orion_workload::SensorWorkload;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_storage_integration");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn sensor_relation_round_trips_through_disk() {
    let path = temp_path("sensors.dat");
    let mut w = SensorWorkload::new(99);
    let readings = w.readings(1_000);
    {
        let mut heap = HeapFile::new(FileStore::create(&path).unwrap(), 32);
        let mut buf = Vec::new();
        for r in &readings {
            buf.clear();
            buf.extend_from_slice(&r.rid.to_le_bytes());
            encode_pdf1(&r.pdf(), &mut buf);
            heap.insert(&buf).unwrap();
        }
        heap.pool().flush().unwrap();
    }
    // Re-open cold and verify every record.
    let heap = HeapFile::new(FileStore::open(&path).unwrap(), 32);
    let mut seen = 0;
    heap.scan(|_, rec| {
        let rid = i64::from_le_bytes(rec[..8].try_into().unwrap());
        let pdf = decode_pdf1(&mut &rec[8..]).unwrap();
        let orig = &readings[(rid - 1) as usize];
        assert_eq!(pdf, orig.pdf(), "rid {rid}");
        seen += 1;
        true
    })
    .unwrap();
    assert_eq!(seen, 1_000);
    std::fs::remove_file(&path).ok();
}

#[test]
fn joint_pdfs_round_trip_through_disk() {
    let path = temp_path("joints.dat");
    let joint = JointPdf::from_points(
        JointDiscrete::from_points(2, vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)]).unwrap(),
    );
    let grid = JointPdf::from_grid(
        JointGrid::from_masses(
            vec![GridDim::over(0.0, 1.0, 4).unwrap(), GridDim::over(0.0, 1.0, 4).unwrap()],
            vec![1.0 / 16.0; 16],
        )
        .unwrap(),
    );
    let mixed = JointPdf::independent(vec![
        Pdf1::gaussian(0.0, 1.0).unwrap(),
        Pdf1::discrete(vec![(1.0, 0.5), (2.0, 0.5)]).unwrap(),
    ])
    .unwrap();
    let mut heap = HeapFile::new(FileStore::create(&path).unwrap(), 8);
    for j in [&joint, &grid, &mixed] {
        let mut buf = Vec::new();
        encode_joint(j, &mut buf);
        heap.insert(&buf).unwrap();
    }
    let originals = [joint, grid, mixed];
    let mut i = 0;
    heap.scan(|_, rec| {
        let j = decode_joint(&mut &rec[..]).unwrap();
        assert_eq!(j, originals[i]);
        i += 1;
        true
    })
    .unwrap();
    assert_eq!(i, 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn representation_sizes_drive_page_counts() {
    // The Figure 5 premise at storage level: symbolic < hist-5 < disc-25.
    let mut w = SensorWorkload::new(123);
    let readings = w.readings(2_000);
    let mut pages = Vec::new();
    for repr in 0..3 {
        let mut heap = HeapFile::new(MemStore::new(), 16);
        let mut buf = Vec::new();
        for r in &readings {
            let exact = r.pdf();
            let pdf = match repr {
                0 => exact,
                1 => Pdf1::Histogram(exact.to_histogram(5).unwrap()),
                _ => Pdf1::Discrete(exact.to_discrete(25).unwrap()),
            };
            buf.clear();
            buf.extend_from_slice(&r.rid.to_le_bytes());
            encode_pdf1(&pdf, &mut buf);
            heap.insert(&buf).unwrap();
        }
        pages.push(heap.page_count());
    }
    assert!(pages[0] <= pages[1], "symbolic {} <= hist {}", pages[0], pages[1]);
    assert!(pages[1] < pages[2], "hist {} < discrete {}", pages[1], pages[2]);
    assert!(pages[2] as f64 / pages[1] as f64 > 2.0, "discrete-25 is much wider");
}

#[test]
fn small_pool_scan_touches_every_page_once() {
    let mut heap = HeapFile::new(MemStore::new(), 4);
    let rec = vec![1u8; 2000];
    for _ in 0..64 {
        heap.insert(&rec).unwrap();
    }
    let pages = heap.page_count();
    assert!(pages as usize > 8, "spills past the pool");
    heap.pool().clear_cache().unwrap();
    heap.pool().stats().reset();
    let mut n = 0;
    heap.scan(|_, _| {
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 64);
    let stats = heap.pool().stats().snapshot();
    assert_eq!(stats.physical_reads, pages as u64, "sequential scan: one read per page");
}

#[test]
fn wal_survives_trailing_garbage_across_reopen() {
    let path = temp_path("garbage.wal");
    std::fs::remove_file(&path).ok();
    {
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"committed-1").unwrap();
        wal.append(b"committed-2").unwrap();
        wal.sync().unwrap();
    }
    // A crash mid-append leaves frame fragments behind.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&[0x5A; 11]).unwrap();
    drop(f);
    let (mut wal, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.records, vec![b"committed-1".to_vec(), b"committed-2".to_vec()]);
    assert_eq!(replay.truncated_bytes, 11);
    // The log is usable again and the garbage never resurfaces.
    wal.append(b"committed-3").unwrap();
    wal.sync().unwrap();
    drop(wal);
    let (_, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.records.len(), 3);
    assert_eq!(replay.truncated_bytes, 0);
    std::fs::remove_file(&path).ok();
}

/// A store whose next `fail` writes error without touching the data —
/// exercising the pool's keep-dirty-on-failure contract from outside the
/// storage crate.
struct FlakyStore {
    inner: MemStore,
    fail: std::sync::Arc<std::sync::atomic::AtomicU32>,
}

impl PageStore for FlakyStore {
    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }
    fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()> {
        self.inner.read_page(id, page)
    }
    fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()> {
        use std::sync::atomic::Ordering;
        if self.fail.load(Ordering::SeqCst) > 0 {
            self.fail.fetch_sub(1, Ordering::SeqCst);
            return Err(std::io::Error::other("transient write failure"));
        }
        self.inner.write_page(id, page)
    }
    fn allocate(&mut self) -> std::io::Result<PageId> {
        self.inner.allocate()
    }
}

#[test]
fn buffer_pool_retries_after_transient_write_errors_without_data_loss() {
    let fail = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let pool = BufferPool::new(FlakyStore { inner: MemStore::new(), fail: fail.clone() }, 8);
    let mut ids = Vec::new();
    for i in 0..5u8 {
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| p.insert(&[i; 64]).unwrap()).unwrap();
        ids.push(id);
    }
    // Two flushes fail transiently; no write must be silently dropped.
    fail.store(2, std::sync::atomic::Ordering::SeqCst);
    assert!(pool.flush().is_err());
    assert!(pool.flush().is_err());
    assert_eq!(pool.stats().snapshot().write_errors, 2);
    // The device recovers; the retry lands every dirty page.
    pool.flush().unwrap();
    pool.clear_cache().unwrap();
    for (i, id) in ids.iter().enumerate() {
        let ok = pool.with_page(*id, |p| p.get(0) == Some(&[i as u8; 64][..])).unwrap();
        assert!(ok, "page {id} lost its data");
    }
}

#[test]
fn corrupted_record_is_detected() {
    let mut heap = HeapFile::new(MemStore::new(), 4);
    let mut buf = Vec::new();
    encode_pdf1(&Pdf1::gaussian(0.0, 1.0).unwrap(), &mut buf);
    buf.truncate(buf.len() - 3);
    let rid = heap.insert(&buf).unwrap();
    let rec = heap.get(rid).unwrap().unwrap();
    assert!(decode_pdf1(&mut &rec[..]).is_err());
}
