//! Serial-vs-batch differential oracle: on randomly generated databases
//! (with NULL-bearing certain columns) and randomly composed pipelines,
//! columnar batch execution must be **bit-identical** to the scalar row
//! path — same result tuples (certain values, pdf values, history ids),
//! same registry contents and reference counts, same existence
//! probabilities — in every (mode, thread-count) configuration:
//! row-serial, row-parallel, batch-serial, batch-parallel at 1/2/4/8
//! threads. The batch kernels recompute the exact scalar arithmetic in the
//! same order, so any drift — a reordered reduction, a lane skipped by a
//! selection vector, a NULL mishandled by the certain-column lanes — shows
//! up as an assertion failure, not as statistical noise.
//!
//! Set `ORION_ORACLE_SEED` to replay `batch_env_seeded_pipeline` with a
//! pinned generator seed (decimal or 0x-hex), matching the recovery and
//! transaction oracles' replay protocol.

use orion_core::batch::ExecMode;
use orion_core::collapse;
use orion_core::plan::{execute, Plan};
use orion_core::prelude::*;
use orion_pdf::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::HashMap;

/// Thread counts exercised in each mode. Morsel size is forced to 2 so
/// even the tiny generated relations split into many morsels (and, in
/// batch mode, many batches).
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn opts_with(mode: ExecMode, threads: usize) -> ExecOptions {
    ExecOptions { mode, threads, morsel_size: 2, ..ExecOptions::default() }
}

/// A generated uncertain attribute: up to 3 integer support points, with
/// an optional missing share (partial pdf, so tuple existence is itself
/// probabilistic).
fn arb_discrete_pdf() -> impl Strategy<Value = Pdf1> {
    (prop::collection::vec((0i64..6, 1u32..5), 1..3), prop::bool::ANY).prop_map(|(raw, partial)| {
        let denom: u32 = raw.iter().map(|(_, w)| w).sum::<u32>() + u32::from(partial);
        let points: Vec<(f64, f64)> =
            raw.into_iter().map(|(v, w)| (v as f64, w as f64 / denom as f64)).collect();
        Pdf1::discrete(points).expect("valid pdf")
    })
}

/// One generated tuple: a NULL-able certain key plus two uncertain
/// attributes. NULLs flow through the certain-column lanes as 3VL UNKNOWN
/// and must be treated identically by both modes.
#[derive(Debug, Clone)]
struct TupleSpec {
    k: Option<i64>,
    a: Pdf1,
    b: Pdf1,
}

fn arb_tuple_spec() -> impl Strategy<Value = TupleSpec> {
    // `w == 0` makes the key NULL (~25% of tuples).
    ((0u32..4, 0i64..4), arb_discrete_pdf(), arb_discrete_pdf())
        .prop_map(|((w, v), a, b)| TupleSpec { k: (w != 0).then_some(v), a, b })
}

fn arb_tuples() -> impl Strategy<Value = Vec<TupleSpec>> {
    prop::collection::vec(arb_tuple_spec(), 3..7)
}

/// `T(id, k, a, b)`: `id` a certain row number, `k` a certain NULL-able
/// key, `a`/`b` uncertain.
fn shared_schema() -> ProbSchema {
    ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("k", ColumnType::Int, false),
            ("a", ColumnType::Int, true),
            ("b", ColumnType::Int, true),
        ],
        vec![],
    )
    .expect("valid schema")
}

/// Materializes one table set + fresh registry from the specs. Each
/// configuration run rebuilds from scratch, so every run assigns history
/// ids from the same starting point.
fn build(
    schemas: &[(&str, &ProbSchema)],
    specs: &[Vec<TupleSpec>],
) -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let mut tables = HashMap::new();
    for ((name, schema), tuples) in schemas.iter().zip(specs) {
        let mut rel = Relation::new(*name, (*schema).clone());
        for (i, spec) in tuples.iter().enumerate() {
            let k = spec.k.map(Value::Int).unwrap_or(Value::Null);
            rel.insert(
                &mut reg,
                &[("id", Value::Int(i as i64)), ("k", k)],
                vec![
                    (vec!["a"], JointPdf::from_pdf1(spec.a.clone())),
                    (vec!["b"], JointPdf::from_pdf1(spec.b.clone())),
                ],
            )
            .expect("insert");
        }
        tables.insert(name.to_string(), rel);
    }
    (tables, reg)
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

/// A random predicate spanning the certain lanes (`k`, where NULL makes
/// the comparison UNKNOWN), the pdf kernels (`a`/`b`), and conjunctions of
/// both.
fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 0i64..4).prop_map(|(o, c)| Predicate::cmp("k", o, c)),
        (arb_op(), 0i64..6).prop_map(|(o, c)| Predicate::cmp("a", o, c)),
        (arb_op(), 0i64..6).prop_map(|(o, c)| Predicate::cmp("b", o, c)),
        arb_op().prop_map(|o| Predicate::cmp_cols("a", o, "b")),
        (arb_op(), arb_op(), 0i64..4).prop_map(|(o1, o2, c)| {
            Predicate::And(vec![Predicate::cmp("k", o1, c), Predicate::cmp("a", o2, 2i64)])
        }),
    ]
}

/// A compact fingerprint of the registry: base count, highest id, and the
/// reference count of every live id.
fn registry_fingerprint(reg: &HistoryRegistry) -> (usize, u64, Vec<(u64, usize)>) {
    let mut refs: Vec<(u64, usize)> =
        reg.iter_bases().map(|(id, _)| (id, reg.ref_count(id))).collect();
    refs.sort_unstable();
    (reg.len(), reg.last_id(), refs)
}

/// Runs the plan row-serial (the baseline), then in every other
/// (mode, threads) configuration over a freshly built copy of the
/// database, and asserts the outputs are bit-identical: result tuples
/// (including every pdf value and history id they carry), registry
/// fingerprint, and existence probabilities.
fn assert_mode_equivalent(plan: &Plan, schemas: &[(&str, &ProbSchema)], specs: &[Vec<TupleSpec>]) {
    let (tables, mut reg) = build(schemas, specs);
    let base =
        execute(plan, &tables, &mut reg, &opts_with(ExecMode::Row, 1)).expect("row-serial run");
    let base_fp = registry_fingerprint(&reg);
    let base_probs: Vec<f64> = base
        .tuples
        .iter()
        .map(|t| collapse::existence_prob(t, &reg, 64).expect("existence"))
        .collect();

    for mode in [ExecMode::Row, ExecMode::Batch] {
        for threads in THREADS {
            if mode == ExecMode::Row && threads == 1 {
                continue; // the baseline itself
            }
            let (tables, mut reg) = build(schemas, specs);
            let out = execute(plan, &tables, &mut reg, &opts_with(mode, threads))
                .expect("configuration run");
            assert_eq!(out.tuples, base.tuples, "mode={mode} threads={threads}, plan={plan:?}");
            assert_eq!(
                registry_fingerprint(&reg),
                base_fp,
                "mode={mode} threads={threads}, plan={plan:?}"
            );
            let probs: Vec<f64> = out
                .tuples
                .iter()
                .map(|t| collapse::existence_prob(t, &reg, 64).expect("existence"))
                .collect();
            // Identical tuples + identical registries make these identical
            // bit patterns, not merely close.
            assert_eq!(probs, base_probs, "mode={mode} threads={threads}, plan={plan:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn selection_is_mode_invariant(specs in arb_tuples(), pred in arb_pred()) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::scan("t").select(pred);
        assert_mode_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
    }

    #[test]
    fn select_project_is_mode_invariant(specs in arb_tuples(), pred in arb_pred()) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::scan("t").select(pred).project(&["id", "a"]);
        assert_mode_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
    }

    #[test]
    fn threshold_attrs_is_mode_invariant(specs in arb_tuples(), p in 0u32..10) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::ThresholdAttrs(
            Box::new(Plan::scan("t")),
            vec!["a".into()],
            CmpOp::Gt,
            f64::from(p) / 10.0,
        );
        assert_mode_equivalent(&plan, &schemas, &[specs]);
    }

    #[test]
    fn threshold_pred_is_mode_invariant(
        specs in arb_tuples(),
        pred in arb_pred(),
        p in 0u32..10,
    ) {
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let plan = Plan::ThresholdPred(
            Box::new(Plan::scan("t")),
            pred,
            CmpOp::Ge,
            f64::from(p) / 10.0,
        );
        assert_mode_equivalent(&plan, &schemas, &[specs]);
    }

    #[test]
    fn join_is_mode_invariant(
        l in arb_tuples(),
        r in arb_tuples(),
        op in prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Eq), Just(CmpOp::Ge)],
    ) {
        let (sl, sr) = (shared_schema(), shared_schema());
        let schemas = [("l", &sl), ("r", &sr)];
        let pred = Predicate::cmp_cols("a", op, "b");
        let plan = Plan::scan("l").project(&["id", "a"]).join_on(
            Plan::scan("r").project(&["id", "b"]),
            Some(pred),
        );
        assert_mode_equivalent(&plan, &schemas, &[l, r]);
    }

    #[test]
    fn null_key_equi_join_is_mode_invariant(l in arb_tuples(), r in arb_tuples()) {
        // Certain equi-join on the NULL-able key: NULL = NULL is UNKNOWN,
        // so the certain-equality prefilter must not prune NULL pairs in
        // either mode — the 3VL regression the batch refactor fixed.
        let (sl, sr) = (shared_schema(), shared_schema());
        let schemas = [("l", &sl), ("r", &sr)];
        let pred = Predicate::And(vec![
            Predicate::cmp_cols("pi(l).k", CmpOp::Eq, "pi(r).k"),
            Predicate::cmp_cols("a", CmpOp::Le, "b"),
        ]);
        let plan = Plan::scan("l").project(&["id", "k", "a"]).join_on(
            Plan::scan("r").project(&["id", "k", "b"]),
            Some(pred),
        );
        assert_mode_equivalent(&plan, &schemas, &[l, r]);
    }

    #[test]
    fn fig3_pipeline_is_mode_invariant(specs in arb_tuples(), thresh in 0i64..5) {
        // The history-heavy shape: two projections of the same table,
        // rejoined. Recombination through common ancestors must commute
        // with both morsel parallelism and columnar batching.
        let schema = shared_schema();
        let schemas = [("t", &schema)];
        let ta = Plan::scan("t").project(&["id", "a"]);
        let tb = Plan::scan("t")
            .select(Predicate::cmp("b", CmpOp::Gt, thresh))
            .project(&["id", "b"]);
        let plan = ta.join_on(
            tb,
            Some(Predicate::cmp_cols("pi(t).id", CmpOp::Eq, "pi(sigma(t)).id")),
        );
        assert_mode_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
    }
}

/// Seeded entry point for CI: `scripts/check.sh` runs this with pinned
/// `ORION_ORACLE_SEED` values; unset, it uses a fixed default. The seed
/// drives the same generators as the property tests, so any failure seen
/// here replays exactly with the same seed.
#[test]
fn batch_env_seeded_pipeline() {
    let seed: u64 = std::env::var("ORION_ORACLE_SEED")
        .ok()
        .and_then(|s| match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        })
        .unwrap_or(0xBA7C4);
    let mut rng = TestRng::deterministic(&format!("orion-batch-{seed}"));
    let schema = shared_schema();
    let schemas = [("t", &schema)];
    for round in 0..4 {
        let specs = arb_tuples().generate(&mut rng);
        let pred = arb_pred().generate(&mut rng);
        let thresh = f64::from((0u32..10).generate(&mut rng)) / 10.0;
        let select = Plan::scan("t").select(pred.clone()).project(&["id", "k", "a"]);
        let threshold =
            Plan::ThresholdPred(Box::new(Plan::scan("t")), pred.clone(), CmpOp::Ge, thresh);
        for plan in [select, threshold] {
            assert_mode_equivalent(&plan, &schemas, std::slice::from_ref(&specs));
        }
        // One join round is enough to cover the probe path per seed.
        if round == 0 {
            let r = arb_tuples().generate(&mut rng);
            let pred = Predicate::And(vec![
                Predicate::cmp_cols("pi(t).k", CmpOp::Eq, "pi(r).k"),
                Predicate::cmp_cols("a", CmpOp::Le, "b"),
            ]);
            let (sr,) = (shared_schema(),);
            let schemas2 = [("t", &schema), ("r", &sr)];
            let plan = Plan::scan("t")
                .project(&["id", "k", "a"])
                .join_on(Plan::scan("r").project(&["id", "k", "b"]), Some(pred));
            assert_mode_equivalent(&plan, &schemas2, &[specs.clone(), r]);
        }
    }
}
