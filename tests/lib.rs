//! Shared helpers for Orion-RS integration tests.

use orion_core::prelude::*;
use orion_pdf::prelude::*;
use std::collections::HashMap;

/// Builds the paper's Table II relation and its registry.
pub fn table2() -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let schema =
        ProbSchema::new(vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)], vec![])
            .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_simple(
        &mut reg,
        &[],
        &[
            ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
            ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
        ],
    )
    .unwrap();
    rel.insert_simple(&mut reg, &[], &[("a", Pdf1::certain(7.0)), ("b", Pdf1::certain(3.0))])
        .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);
    (tables, reg)
}
