//! Shared helpers for Orion-RS integration tests.

use orion_core::prelude::*;
use orion_pdf::prelude::*;
use orion_storage::codec::encode_joint;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Builds the paper's Table II relation and its registry.
pub fn table2() -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let schema =
        ProbSchema::new(vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)], vec![])
            .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_simple(
        &mut reg,
        &[],
        &[
            ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
            ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
        ],
    )
    .unwrap();
    rel.insert_simple(&mut reg, &[], &[("a", Pdf1::certain(7.0)), ("b", Pdf1::certain(3.0))])
        .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);
    (tables, reg)
}

/// Canonical fingerprint of a database state, invariant under the two
/// identity allocators that differ across runs:
///
/// * attribute ids are replaced by `table.column` names;
/// * pdf ids are remapped to dense first-seen order over a deterministic
///   walk (tables by name, tuples in order, dims then ancestors).
///
/// Covers schemas, certain values, per-node joints (exact encoded bytes,
/// so probability masses are compared bit-for-bit), ancestor sets, tuple
/// existence masses, and — for every base reachable from some tuple — its
/// attribute list, joint, phantom flag and refcount. Unreachable bases
/// (a replayed base record whose tuple frame died in a crash) are
/// deliberately invisible: they are logically unobservable garbage.
///
/// Shared by the crash-recovery oracle and the transaction consistency
/// checker so both compare the exact same notion of logical state.
pub fn fingerprint(
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
) -> String {
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    let mut attr_names: HashMap<AttrId, String> = HashMap::new();
    for name in &names {
        for c in tables[*name].schema.columns() {
            attr_names.insert(c.id, format!("{name}.{}", c.name));
        }
    }
    let col = |id: &AttrId| attr_names.get(id).cloned().unwrap_or_else(|| format!("?{id}"));

    let mut remap: HashMap<PdfId, usize> = HashMap::new();
    let mut seen: Vec<PdfId> = Vec::new();
    let dense = |id: PdfId, remap: &mut HashMap<PdfId, usize>, seen: &mut Vec<PdfId>| {
        *remap.entry(id).or_insert_with(|| {
            seen.push(id);
            seen.len() - 1
        })
    };

    let mut out = String::new();
    for name in &names {
        let rel = &tables[*name];
        write!(out, "table {name} schema=[").unwrap();
        for c in rel.schema.columns() {
            write!(out, "({} {:?} u={})", c.name, c.ty, c.uncertain).unwrap();
        }
        let deps: Vec<Vec<String>> =
            rel.schema.deps().iter().map(|g| g.iter().map(&col).collect()).collect();
        writeln!(out, "] deps={deps:?}").unwrap();
        for t in &rel.tuples {
            let mut nodes: Vec<String> = Vec::with_capacity(t.nodes.len());
            for n in &t.nodes {
                let dims: Vec<String> = n
                    .dims
                    .iter()
                    .map(|d| {
                        let base = dense(d.var.base, &mut remap, &mut seen);
                        let vis = d.column.as_ref().map(&col);
                        format!("b{base}.{}:{vis:?}", d.var.dim)
                    })
                    .collect();
                let anc: Vec<usize> =
                    n.ancestors.iter().map(|&a| dense(a, &mut remap, &mut seen)).collect();
                let mut joint = Vec::new();
                encode_joint(&n.joint, &mut joint);
                nodes.push(format!("dims={dims:?} anc={anc:?} joint={}", hex(&joint)));
            }
            nodes.sort(); // node order within a tuple is not significant
            writeln!(
                out,
                "  tuple certain={:?} exists={:.12e} nodes={nodes:?}",
                t.certain,
                t.naive_existence()
            )
            .unwrap();
        }
    }
    for (i, raw) in seen.iter().enumerate() {
        let b = reg.base(*raw).expect("reachable base must be registered");
        let attrs: Vec<String> = b.attrs.iter().map(&col).collect();
        let mut joint = Vec::new();
        encode_joint(&b.joint, &mut joint);
        writeln!(
            out,
            "base b{i} attrs={attrs:?} phantom={} refs={} joint={}",
            b.phantom,
            reg.ref_count(*raw),
            hex(&joint)
        )
        .unwrap();
    }
    // The stats catalog must survive crashes bitwise: compare its exact
    // snapshot encoding.
    writeln!(out, "stats {}", hex(&stats.encode())).unwrap();
    out
}

/// Lowercase hex of a byte string.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().fold(String::with_capacity(bytes.len() * 2), |mut s, b| {
        write!(s, "{b:02x}").unwrap();
        s
    })
}
