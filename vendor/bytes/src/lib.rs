//! Offline vendored shim exposing the subset of the `bytes` crate that the
//! Orion-RS codecs use: the [`Buf`] / [`BufMut`] traits for little-endian
//! scalar reads and writes, implemented for `&[u8]` and `Vec<u8>`.
//!
//! Reads past the end of a buffer panic, matching the real crate's
//! contract; callers bounds-check with [`Buf::remaining`] first.

/// Read access to a contiguous stream of bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies bytes into `dst`, advancing the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(512);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_i64_le(-9);
        out.put_f64_le(2.5);
        out.put_slice(b"ab");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), out.len());
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 512);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.get_i64_le(), -9);
        assert_eq!(buf.get_f64_le(), 2.5);
        let mut tail = [0u8; 2];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"ab");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1];
        let _ = buf.get_u16_le();
    }
}
