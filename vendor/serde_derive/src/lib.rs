//! Offline vendored no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The Orion-RS pdf types carry serde derives for downstream users, but
//! nothing in this workspace consumes the generated impls (persistence goes
//! through the hand-written binary codecs in `orion-storage::codec`, and
//! bench JSON goes through `orion_obs::json`). In the offline build the
//! derives therefore expand to nothing: the attribute parses and the
//! `#[serde(...)]` helper is accepted, but no trait impl is emitted.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
