//! Offline vendored shim exposing the subset of the `parking_lot` API that
//! Orion-RS uses, implemented on `std::sync`. The build environment has no
//! network access to crates.io, so the workspace points the `parking_lot`
//! dependency at this path crate instead.
//!
//! Semantics match `parking_lot` where it matters for us: `lock()` never
//! returns a poison error (a panicked holder does not poison the lock).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicked holder");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
