//! Offline vendored shim exposing the subset of the `parking_lot` API that
//! Orion-RS uses, implemented on `std::sync`. The build environment has no
//! network access to crates.io, so the workspace points the `parking_lot`
//! dependency at this path crate instead.
//!
//! Semantics match `parking_lot` where it matters for us: `lock()` never
//! returns a poison error (a panicked holder does not poison the lock).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed wait on a [`Condvar`] (mirrors `parking_lot`'s type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`Mutex`] (std-backed).
///
/// Matches the `parking_lot` API shape: `wait` takes `&mut MutexGuard`
/// instead of consuming and returning the guard, and never reports poison.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded lock and blocks until notified,
    /// re-acquiring the lock before returning. Spurious wakeups are
    /// possible, as with any condvar — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; parking_lot's borrows it. Move the
        // guard out and back without running Drop in between.
        unsafe {
            let g = std::ptr::read(guard);
            let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, g);
        }
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let g = std::ptr::read(guard);
            let (g, r) = self.0.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, g);
            WaitTimeoutResult(r.timed_out())
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicked holder");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
            *g
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
