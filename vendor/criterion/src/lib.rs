//! Offline vendored mini benchmark harness.
//!
//! Exposes the subset of the `criterion` API used by the Orion-RS benches
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`).
//! Measurement is deliberately simple: per benchmark it warms up briefly,
//! then times batches of iterations for a bounded wall-clock budget and
//! reports the mean time per iteration. No plots, no statistics files —
//! just one line per benchmark on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter (for single-series groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly, timing each batch, until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not measured).
        black_box(f());
        let start = Instant::now();
        let mut batch = 1u64;
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.elapsed += t0.elapsed();
            self.iters += batch;
            // Grow batches so fast closures are not dominated by clock reads.
            if t0.elapsed() < Duration::from_micros(50) {
                batch = batch.saturating_mul(2).min(1 << 20);
            }
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    // sample_size scales the budget the way criterion's sample count would:
    // the default (100) gets ~200ms, reduced groups proportionally less.
    let budget = Duration::from_millis((2 * sample_size.max(10)) as u64);
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, budget };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<40} (no measured iterations)");
    } else {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{label:<40} {:>12.1} ns/iter ({} iters)", per_iter, b.iters);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count (here: shrinks the time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 100, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = id.into().id;
        run_one(&label, 100, f);
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(demo_group, fake_bench);

    #[test]
    fn harness_runs() {
        demo_group();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("join", 128).id, "join/128");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }
}
