//! Offline vendored serde facade: marker traits plus the no-op derives from
//! the vendored `serde_derive`. See that crate's docs for why the derives
//! expand to nothing in this workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
