//! Offline vendored shim exposing the subset of the `rand` crate that
//! Orion-RS uses: a seedable [`rngs::StdRng`] plus [`Rng::gen_range`] over
//! half-open and inclusive numeric ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction rand 0.8 documents for reproducible small-state PRNGs. The
//! exact stream differs from upstream `StdRng` (which is ChaCha12); all
//! Orion-RS workloads only require determinism for a fixed seed, not
//! bit-compatibility with the crates.io build.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a raw word to a uniform f64 in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform integer in `[0, n)` via Lemire-style widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_ranges!(i64, u64, i32, u32, usize);

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// A small-state deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.2..1.0);
            assert!((0.2..1.0).contains(&f));
            let i = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
