//! Offline vendored mini property-testing harness.
//!
//! Exposes the subset of the `proptest` API that the Orion-RS test suite
//! uses — `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! range / tuple / `Just` / mapped / boxed strategies, `prop::collection::vec`
//! and `prop::bool::ANY` — over a deterministic per-test RNG.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case reports its generated inputs verbatim.
//! * **Deterministic seeds.** Each test function derives its seed from its
//!   own name, so failures reproduce across runs without a regression file
//!   (`proptest-regressions/` seeds from upstream runs are kept in-tree for
//!   documentation but are not replayed by this harness).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! Test configuration and the deterministic generator.

    /// Subset of `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases with all other settings default.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xorshift generator seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (FNV-1a of the bytes).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw word (xorshift64*).
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use super::*;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, O>
        where
            F: Fn(Self::Value) -> O + 'static,
            Self: Sized + 'static,
        {
            Map { inner: self, f: Rc::new(f) }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S: Strategy, O> {
        inner: S,
        f: Rc<dyn Fn(S::Value) -> O>,
    }

    impl<S: Strategy, O> Clone for Map<S, O> {
        fn clone(&self) -> Self {
            Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
        }
    }

    impl<S: Strategy, O> Strategy for Map<S, O> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe mirror of [`Strategy`] for type erasure.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between equally-weighted alternatives.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(i64, u64, i32, u32, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection`, `prop::bool`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Vector of `elem` values with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        /// Strategy returned by [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S: Strategy> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.clone().generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for a fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniform `true` / `false`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = ::core::primitive::bool;

            fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
                rng.below(2) == 1
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a property over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__msg)) => {
                        panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            __case + 1, __config.cases, __msg, __inputs
                        );
                    }
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "property panicked at case {}/{}\n  inputs: {}",
                            __case + 1, __config.cases, __inputs
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Point(i64),
        Pair(i64, i64),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            (0i64..10).prop_map(Shape::Point),
            (0i64..10, 0i64..10).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..5, f in 0.25..0.75f64, n in 1usize..4) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0i64..3, 2..5), flag in prop::bool::ANY) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..3).contains(x)));
            prop_assert_eq!(flag as u8 as i64 * 0, 0);
        }

        #[test]
        fn oneof_and_just(s in arb_shape(), j in Just(41)) {
            match s {
                Shape::Point(a) => prop_assert!((0..10).contains(&a)),
                Shape::Pair(a, b) => prop_assert!(a < 10 && b < 10, "pair {a} {b}"),
            }
            prop_assert_eq!(j + 1, 42);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::prop::collection::vec(0i64..100, 3..6);
        let a: Vec<_> = {
            let mut rng = TestRng::deterministic("label");
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::deterministic("label");
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
