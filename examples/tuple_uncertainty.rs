//! Tuple uncertainty: mutually exclusive alternatives through shared
//! phantom ancestors — the paper's claim that the attribute-uncertainty
//! model subsumes tuple-uncertainty models ("multiple tuples can have
//! constraints such as mutual exclusion among them").
//!
//! An OCR pipeline produced two conflicting readings of the same invoice
//! line; at most one is real. The alternatives live as ordinary tuples
//! whose existence derives from one shared selector variable, and every
//! downstream operator — selection, join, the possible-worlds engine —
//! handles the constraint through the ordinary history machinery.
//!
//! Run with: `cargo run -p orion-examples --bin tuple_uncertainty`

use orion_core::plan::Plan;
use orion_core::prelude::*;
use orion_core::pws::pws_row_distribution_via_ancestors;
use orion_examples::banner;
use orion_pdf::prelude::*;
use std::collections::HashMap;

fn main() {
    banner("OCR alternatives as a mutual-exclusion group");
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(
        vec![("line", ColumnType::Int, false), ("amount", ColumnType::Real, true)],
        vec![],
    )
    .unwrap();
    let mut invoices = Relation::new("invoices", schema);
    // Reading A: $100 +- small OCR noise (confidence 0.6).
    // Reading B: $1000 +- noise (confidence 0.3). With probability 0.1 the
    // line is spurious and neither reading is real.
    invoices
        .insert_mutex_group(
            &mut reg,
            vec![
                (
                    vec![("line", Value::Int(1))],
                    vec![("amount", Pdf1::discrete(vec![(100.0, 0.8), (101.0, 0.2)]).unwrap())],
                ),
                (
                    vec![("line", Value::Int(2))],
                    vec![("amount", Pdf1::discrete(vec![(1000.0, 1.0)]).unwrap())],
                ),
            ],
            &[0.6, 0.3],
        )
        .unwrap();
    let opts = ExecOptions::default();
    for (i, t) in invoices.tuples.iter().enumerate() {
        let p = orion_core::collapse::existence_prob(t, &reg, opts.resolution).unwrap();
        println!("  alternative {} exists with probability {:.2}", i + 1, p);
    }
    println!("  P(neither) = 0.10\n");

    banner("Selection composes with the constraint");
    let sel = orion_core::select::select(
        &invoices,
        &Predicate::cmp("amount", CmpOp::Lt, 500.0),
        &mut reg,
        &opts,
    )
    .unwrap();
    println!(
        "  sigma(amount < 500): {} tuple(s); alternative A survives with p = {:.2}\n",
        sel.len(),
        orion_core::collapse::existence_prob(&sel.tuples[0], &reg, opts.resolution).unwrap()
    );

    banner("The possible-worlds engine sees the exclusion exactly");
    let mut tables = HashMap::new();
    tables.insert("invoices".to_string(), invoices);
    // Pair the table with itself: worlds where both alternatives coexist
    // must have probability zero.
    let both = Plan::scan("invoices")
        .project(&["line"])
        .join_on(Plan::scan("invoices").project(&["line"]), None);
    let dist = pws_row_distribution_via_ancestors(&both, &tables, &reg).unwrap();
    let mut rows: Vec<(String, f64)> = dist.iter().map(|(k, p)| (format!("{k:?}"), *p)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    for (k, p) in rows {
        println!("  pair {k} : {p:.2}");
    }
    println!("  (no (1,2) or (2,1) pair: the alternatives never coexist)");
}
