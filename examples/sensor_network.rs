//! Sensor network monitoring: a fleet of temperature sensors with
//! per-device Gaussian error models, queried for alarm conditions.
//!
//! Demonstrates the evaluation workload of the paper's Section IV at
//! application scale: symbolic pdfs in storage, threshold range queries,
//! floors composing across repeated selections, and the accuracy gap
//! against discretized storage.
//!
//! Run with: `cargo run -p orion-examples --bin sensor_network`

use orion_examples::banner;
use orion_pdf::prelude::*;
use orion_sql::{render_output, Database};
use orion_workload::SensorWorkload;

fn main() {
    banner("Sensor network: 500 uncertain readings");
    let mut db = Database::new();
    db.execute("CREATE TABLE readings (rid INT, temp REAL UNCERTAIN)").unwrap();

    // Bulk-insert workload readings through SQL.
    let mut w = SensorWorkload::new(2024);
    let readings = w.readings(500);
    for chunk in readings.chunks(50) {
        let values: Vec<String> = chunk
            .iter()
            .map(|r| format!("({}, GAUSSIAN({:.4}, {:.6}))", r.rid, r.mean, r.sd * r.sd))
            .collect();
        db.execute(&format!("INSERT INTO readings VALUES {}", values.join(", "))).unwrap();
    }

    banner("Alarm query: which sensors read above 90 with > 50% confidence?");
    let out = db
        .execute(
            "SELECT rid, EXPECTED(temp), PROB(temp > 90) FROM readings WHERE PROB(temp > 90) > 0.5",
        )
        .unwrap();
    println!("{}\n", render_output(&out).unwrap());

    banner("Compound condition: hot but not extreme");
    let out = db
        .execute(
            "SELECT rid, PROB(temp BETWEEN 80 AND 95) FROM readings \
             WHERE PROB(temp BETWEEN 80 AND 95) >= 0.9",
        )
        .unwrap();
    println!("{}\n", render_output(&out).unwrap());

    banner("Floors compose: temp > 40 then temp < 60 leaves a window");
    db.execute("CREATE TABLE window (rid INT, temp REAL UNCERTAIN)").unwrap();
    db.execute("INSERT INTO window VALUES (1, GAUSSIAN(50, 100))").unwrap();
    db.execute("DROP TABLE window").unwrap();
    let exact = Pdf1::gaussian(50.0, 100.0).unwrap();
    let floored = exact
        .floor_region(&RegionSet::from_interval(Interval::at_most(40.0)))
        .floor_region(&RegionSet::from_interval(Interval::at_least(60.0)));
    println!("stored representation: {floored}");
    println!("window mass P(40 < temp < 60): {:.4}\n", floored.mass());

    banner("Why symbolic storage matters: accuracy at equal size");
    let query = Interval::new(88.0, 92.0);
    let truth = exact.range_prob(&query);
    let hist5 = Pdf1::Histogram(exact.to_histogram(5).unwrap());
    let disc5 = Pdf1::Discrete(exact.to_discrete(5).unwrap());
    println!("P(temp in [88, 92]) exact symbolic : {truth:.6}");
    println!(
        "  5-bucket histogram : {:.6} (err {:+.6})",
        hist5.range_prob(&query),
        hist5.range_prob(&query) - truth
    );
    println!(
        "  5-point discrete   : {:.6} (err {:+.6})",
        disc5.range_prob(&query),
        disc5.range_prob(&query) - truth
    );
}
