//! Shared helpers for the Orion-RS example binaries.

use orion_sql::{render_output, Database, Output};

/// Executes a statement, printing the SQL and its rendered result.
pub fn run_and_show(db: &mut Database, sql: &str) -> Output {
    println!("orion> {sql}");
    let out = db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    println!("{}\n", render_output(&out).expect("renderable output"));
    out
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(64));
    println!("{title}");
    println!("{}", "=".repeat(64));
}
