//! Data cleaning: dirty records with discrete repair alternatives — the
//! paper's "multiple alternatives for an incorrect value" motivation.
//!
//! Shows discrete uncertainty living natively next to continuous pdfs,
//! maybe-tuples via partial pdfs, and deletion with phantom-node history
//! preservation.
//!
//! Run with: `cargo run -p orion-examples --bin data_cleaning`

use orion_examples::{banner, run_and_show};
use orion_sql::Database;

fn main() {
    banner("Data cleaning: candidate repairs as discrete pdfs");
    let mut db = Database::new();
    run_and_show(&mut db, "CREATE TABLE invoices (inv INT, amount REAL UNCERTAIN, region TEXT)");
    // Three dirty rows: OCR produced candidate amounts with confidences.
    run_and_show(
        &mut db,
        "INSERT INTO invoices VALUES \
         (1, DISCRETE(100:0.7, 1000:0.3), 'emea'), \
         (2, DISCRETE(250:0.5, 260:0.5), 'apac'), \
         (3, DISCRETE(75:0.9, 750:0.1), 'emea')",
    );
    run_and_show(&mut db, "SELECT * FROM invoices");

    banner("A maybe-record: the extractor is only 60% sure the row exists");
    run_and_show(&mut db, "INSERT INTO invoices VALUES (4, DISCRETE(42:0.6), 'apac')");
    run_and_show(&mut db, "SELECT * FROM invoices WHERE inv = 4");

    banner("Queries over repairs: which invoices might exceed 500?");
    run_and_show(
        &mut db,
        "SELECT inv, PROB(amount > 500) FROM invoices WHERE PROB(amount > 500) > 0",
    );

    banner("Selection floors impossible repairs away");
    // amount < 500 zeroes the 1000/750 candidates; tuple 1 survives with
    // probability 0.7, tuple 3 with 0.9.
    run_and_show(&mut db, "SELECT * FROM invoices WHERE amount < 500");

    banner("Expected totals under uncertainty");
    run_and_show(&mut db, "SELECT ECOUNT(*), ESUM(amount), EAVG(amount) FROM invoices");

    banner("Certain-attribute filters still work classically");
    run_and_show(&mut db, "SELECT inv, amount FROM invoices WHERE region = 'emea'");

    banner("Deletion with history bookkeeping");
    run_and_show(&mut db, "DELETE FROM invoices WHERE inv = 2");
    run_and_show(&mut db, "SELECT inv FROM invoices");
}
