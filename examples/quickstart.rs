//! Quickstart: the paper's Table I sensor database, expressed in Orion SQL.
//!
//! Creates an uncertain relation, inserts symbolic Gaussian readings,
//! and runs certain selections, uncertain (flooring) selections, and
//! probabilistic threshold range queries.
//!
//! Run with: `cargo run -p orion-examples --bin quickstart`

use orion_examples::{banner, run_and_show};
use orion_sql::Database;

fn main() {
    banner("Orion-RS quickstart: probabilistic attributes in SQL");
    let mut db = Database::new();

    // The paper's Table I: sensor locations with Gaussian error.
    run_and_show(&mut db, "CREATE TABLE sensors (id INT, location REAL UNCERTAIN)");
    run_and_show(
        &mut db,
        "INSERT INTO sensors VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), \
         (3, GAUSSIAN(13, 1))",
    );
    run_and_show(&mut db, "SELECT * FROM sensors");

    banner("Certain selection (Case 1): pdfs are copied untouched");
    run_and_show(&mut db, "SELECT * FROM sensors WHERE id = 1");

    banner("Uncertain selection: a symbolic floor, not an approximation");
    // The result pdf is stored as [Gaus(20,5), Floor{[20,inf]}] — exactly
    // the paper's Section III-A representation.
    run_and_show(&mut db, "SELECT * FROM sensors WHERE location < 20");

    banner("Expected values and range probabilities per tuple");
    run_and_show(
        &mut db,
        "SELECT id, EXPECTED(location), PROB(location BETWEEN 18 AND 22) FROM sensors",
    );

    banner("Distribution statistics: variance, median, tail quantile");
    run_and_show(
        &mut db,
        "SELECT id, VARIANCE(location), MEDIAN(location), QUANTILE(location, 0.975) FROM sensors",
    );

    banner("Probabilistic threshold range query (Section III-E)");
    run_and_show(&mut db, "SELECT * FROM sensors WHERE PROB(location BETWEEN 18 AND 22) > 0.5");

    banner("Aggregates with continuous approximation (Section I)");
    run_and_show(&mut db, "SELECT ECOUNT(*), ESUM(location), EAVG(location) FROM sensors");
}
