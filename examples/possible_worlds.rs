//! Possible worlds semantics, end to end: reproduces the paper's Tables
//! II/III and Section III-C example, then certifies the engine against the
//! brute-force possible-worlds reference for a select-project-join
//! pipeline.
//!
//! Run with: `cargo run -p orion-examples --bin possible_worlds`

use orion_core::prelude::*;
use orion_core::pws::{
    conformance_report, distribution_distance, pws_row_distribution, CanonValue,
};
use orion_examples::banner;
use orion_pdf::prelude::*;
use std::collections::HashMap;

fn show_distribution(dist: &HashMap<Vec<CanonValue>, f64>) {
    let mut rows: Vec<(String, f64)> = dist
        .iter()
        .map(|(row, p)| {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    CanonValue::Real(bits) => format!("{}", f64::from_bits(*bits)),
                    CanonValue::Int(i) => i.to_string(),
                    other => format!("{other:?}"),
                })
                .collect();
            (format!("({})", cells.join(", ")), *p)
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    for (r, p) in rows {
        println!("  {r}  Pr = {p:.4}");
    }
}

fn main() {
    banner("The paper's Table II relation");
    let mut reg = HistoryRegistry::new();
    let schema =
        ProbSchema::new(vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)], vec![])
            .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_simple(
        &mut reg,
        &[],
        &[
            ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
            ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
        ],
    )
    .unwrap();
    rel.insert_simple(&mut reg, &[], &[("a", Pdf1::certain(7.0)), ("b", Pdf1::certain(3.0))])
        .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);

    banner("Table III: row-presence probabilities across all worlds");
    let dist = pws_row_distribution(&Plan::scan("T"), &tables).unwrap();
    show_distribution(&dist);

    banner("Section III-C: sigma_(a < b), engine vs possible worlds");
    let plan = Plan::scan("T").select(Predicate::cmp_cols("a", CmpOp::Lt, "b"));
    let (truth, engine) =
        conformance_report(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
    println!("possible-worlds ground truth:");
    show_distribution(&truth);
    println!("engine result:");
    show_distribution(&engine);
    println!("max deviation: {:.2e}", distribution_distance(&truth, &engine));

    banner("A full select-project pipeline is still PWS-consistent");
    let plan = Plan::scan("T").select(Predicate::cmp("b", CmpOp::Gt, 1i64)).project(&["a"]);
    let (truth, engine) =
        conformance_report(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
    println!("possible-worlds ground truth:");
    show_distribution(&truth);
    println!("engine result:");
    show_distribution(&engine);
    let d = distribution_distance(&truth, &engine);
    println!("max deviation: {d:.2e}");
    assert!(d < 1e-9, "engine must conform to possible worlds semantics");
    println!("\nTheorems 1 & 2 hold on this input: closed and consistent under PWS.");
}
