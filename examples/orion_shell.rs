//! An interactive Orion SQL shell.
//!
//! ```text
//! cargo run -p orion-examples --bin orion_shell [-- database.orion]
//! ```
//!
//! Reads statements from stdin (terminated by `;`), executes them against
//! an in-memory database, and renders results. Meta-commands:
//!
//! * `\tables` — list tables with tuple counts;
//! * `\save PATH` / `\open PATH` — persist / load the whole database;
//! * `\quit` — exit (also Ctrl-D).
//!
//! If a path is given on the command line and exists, it is opened; on
//! exit the database is saved back to it.

use orion_sql::{render_output, Database};
use std::io::{BufRead, Write};

fn main() {
    let path = std::env::args().nth(1).map(std::path::PathBuf::from);
    let mut db = match &path {
        Some(p) if p.exists() => match Database::open(p) {
            Ok(db) => {
                eprintln!("opened {}", p.display());
                db
            }
            Err(e) => {
                eprintln!("cannot open {}: {e}", p.display());
                std::process::exit(1);
            }
        },
        _ => Database::new(),
    };

    eprintln!("Orion-RS SQL shell — end statements with ';', \\quit to exit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("orion> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match run_meta(&mut db, trimmed) {
                MetaResult::Continue => {}
                MetaResult::Quit => break,
            }
            print!("orion> ");
            std::io::stdout().flush().ok();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let stmt = std::mem::take(&mut buffer);
            match db.execute(&stmt) {
                Ok(out) => match render_output(&out) {
                    Ok(text) => println!("{text}"),
                    Err(e) => eprintln!("render error: {e}"),
                },
                Err(e) => eprintln!("error: {e}"),
            }
        }
        let prompt = if buffer.is_empty() { "orion> " } else { "   ... " };
        print!("{prompt}");
        std::io::stdout().flush().ok();
    }
    if let Some(p) = path {
        match db.save(&p) {
            Ok(()) => eprintln!("\nsaved {}", p.display()),
            Err(e) => eprintln!("\nsave failed: {e}"),
        }
    }
}

enum MetaResult {
    Continue,
    Quit,
}

fn run_meta(db: &mut Database, cmd: &str) -> MetaResult {
    let mut parts = cmd.splitn(2, ' ');
    match parts.next().unwrap_or("") {
        "\\quit" | "\\q" => return MetaResult::Quit,
        "\\tables" => {
            // Render via a throwaway query per table name is wasteful;
            // Database exposes direct table access instead.
            let mut names = db.table_names();
            names.sort();
            if names.is_empty() {
                println!("(no tables)");
            }
            for n in names {
                let len = db.table(&n).map(|r| r.len()).unwrap_or(0);
                println!("{n}  ({len} tuples)");
            }
        }
        "\\save" => match parts.next() {
            Some(p) => match db.save(std::path::Path::new(p.trim())) {
                Ok(()) => println!("saved {p}"),
                Err(e) => eprintln!("save failed: {e}"),
            },
            None => eprintln!("usage: \\save PATH"),
        },
        "\\open" => match parts.next() {
            Some(p) => match Database::open(std::path::Path::new(p.trim())) {
                Ok(loaded) => {
                    *db = loaded;
                    println!("opened {p}");
                }
                Err(e) => eprintln!("open failed: {e}"),
            },
            None => eprintln!("usage: \\open PATH"),
        },
        other => eprintln!("unknown meta-command '{other}' (try \\tables, \\save, \\open, \\quit)"),
    }
    MetaResult::Continue
}
