//! Moving objects with correlated 2-D position uncertainty: the paper's
//! Section II-A motivation for *joint* pdfs over dependency sets.
//!
//! An object's x/y position error is correlated along its heading; storing
//! two independent 1-D pdfs would misestimate region probabilities. This
//! example quantifies that, runs range selections that floor the joint,
//! and projects to show phantom-dimension retention.
//!
//! Run with: `cargo run -p orion-examples --bin moving_objects`

use orion_core::prelude::*;
use orion_core::project::project;
use orion_core::select::select;
use orion_examples::banner;
use orion_pdf::prelude::*;
use orion_workload::MovingObjectsWorkload;

fn main() {
    banner("Fleet of 20 objects with correlated (x, y) uncertainty");
    let mut w = MovingObjectsWorkload::new(77);
    let mut reg = HistoryRegistry::new();
    let fleet = w.relation(20, &mut reg);
    println!("objects: {}   dependency sets per tuple: 1 (joint over x, y)\n", fleet.len());

    banner("Correlation matters: joint vs independent-marginals probability");
    let t = &fleet.tuples[0];
    let node = &t.nodes[0];
    let (ex, ey) = (node.joint.expected(0).unwrap(), node.joint.expected(1).unwrap());
    // A diagonal box aligned with the heading captures more joint mass than
    // the product of its marginals suggests.
    let box_q = [(0, Interval::new(ex - 1.0, ex + 1.0)), (1, Interval::new(ey - 1.0, ey + 1.0))];
    let joint_p = node.joint.box_prob(&box_q);
    let mx = node.joint.marginal1(0).unwrap();
    let my = node.joint.marginal1(1).unwrap();
    let indep_p = mx.range_prob(&box_q[0].1) * my.range_prob(&box_q[1].1);
    println!("P((x,y) in 2x2 box around the mean)");
    println!("  with the joint pdf       : {joint_p:.4}");
    println!("  independence assumption  : {indep_p:.4}");
    println!("  relative error of independence: {:+.1}%\n", (indep_p / joint_p - 1.0) * 100.0);

    banner("Window query: objects west of x = 50 (floors the joint)");
    let west =
        select(&fleet, &Predicate::cmp("x", CmpOp::Lt, 50.0), &mut reg, &ExecOptions::default())
            .unwrap();
    println!("{} of {} objects have mass west of the line:", west.len(), fleet.len());
    for t in west.tuples.iter().take(5) {
        let Value::Int(oid) = t.certain[0] else { continue };
        println!("  object {oid}: P(x < 50) = {:.4}", t.naive_existence());
    }
    println!();

    banner("Projection keeps the correlated y as a phantom dimension");
    let xs = project(&west, &["oid", "x"], &mut reg, &ExecOptions::default()).unwrap();
    let t = &xs.tuples[0];
    println!(
        "visible columns: {:?}",
        xs.schema.columns().iter().map(|c| &c.name).collect::<Vec<_>>()
    );
    println!(
        "node dimensions: {} ({} visible, {} phantom)",
        t.nodes[0].dims.len(),
        t.nodes[0].dims.iter().filter(|d| d.column.is_some()).count(),
        t.nodes[0].dims.iter().filter(|d| d.column.is_none()).count(),
    );
    println!("existence probability preserved: {:.4}", t.naive_existence());

    banner("Corridor query via the general floor (x and y correlated)");
    // Objects probably inside the diagonal corridor |y - x| < 10. The
    // predicate language has no arithmetic, so floor the joint directly —
    // the same primitive selection Case 2(b) uses internally.
    let mut in_corridor = 0;
    for t in &fleet.tuples {
        let n = &t.nodes[0];
        let floored = n.joint.floor_predicate(&[0, 1], 32, |p| (p[1] - p[0]).abs() < 10.0).unwrap();
        if floored.mass() > 0.5 {
            in_corridor += 1;
        }
    }
    println!("objects with P(|y - x| < 10) > 0.5: {in_corridor} of {}", fleet.len());
}
