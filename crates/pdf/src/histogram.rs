//! Equi-width histogram pdfs — the paper's generic `Hist` representation for
//! non-standard continuous distributions.
//!
//! A histogram stores the probability **mass** per bucket; within a bucket
//! the density is uniform. Partial pdfs (total mass < 1) arise naturally
//! from floors. Because the density is piecewise-constant, a range query can
//! interpolate inside a bucket, which is why histograms beat same-size
//! discrete samplings in the paper's Figure 4.

use crate::error::{PdfError, Result};
use crate::interval::{Interval, RegionSet};
use serde::{Deserialize, Serialize};

/// An equi-width histogram over `[lo, lo + width * masses.len()]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    masses: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram from bucket masses. Masses must be non-negative
    /// and sum to at most `1 + 1e-9` (partial pdfs are allowed).
    pub fn from_masses(lo: f64, width: f64, masses: Vec<f64>) -> Result<Self> {
        if !lo.is_finite() || !width.is_finite() || width <= 0.0 {
            return Err(PdfError::InvalidParameter(format!(
                "histogram requires finite lo and width > 0, got ({lo}, {width})"
            )));
        }
        if masses.is_empty() {
            return Err(PdfError::InvalidParameter("histogram needs >= 1 bucket".into()));
        }
        let mut total = 0.0;
        for &m in &masses {
            if !m.is_finite() || m < 0.0 {
                return Err(PdfError::InvalidParameter(format!(
                    "bucket masses must be finite and >= 0, got {m}"
                )));
            }
            total += m;
        }
        if total > 1.0 + 1e-9 {
            return Err(PdfError::InvalidParameter(format!(
                "total histogram mass {total} exceeds 1"
            )));
        }
        Ok(Histogram { lo, width, masses })
    }

    /// Reassembles a histogram from parts already validated by
    /// [`Histogram::from_masses`] (used by the columnar batch arena to
    /// reconstruct records bit-for-bit, including zero-probability buckets).
    pub(crate) fn from_parts_unchecked(lo: f64, width: f64, masses: Vec<f64>) -> Self {
        Histogram { lo, width, masses }
    }

    /// Builds a histogram by binning an arbitrary cdf over `[lo, hi]` into
    /// `bins` equi-width buckets; bucket mass is the exact cdf difference.
    pub fn from_cdf(lo: f64, hi: f64, bins: usize, cdf: impl Fn(f64) -> f64) -> Result<Self> {
        if bins == 0 || lo >= hi || lo.is_nan() || hi.is_nan() {
            return Err(PdfError::InvalidParameter(format!(
                "from_cdf requires bins >= 1 and lo < hi, got ({lo}, {hi}, {bins})"
            )));
        }
        let width = (hi - lo) / bins as f64;
        let mut masses = Vec::with_capacity(bins);
        let mut prev = cdf(lo);
        for i in 1..=bins {
            let x = if i == bins { hi } else { lo + i as f64 * width };
            let c = cdf(x);
            masses.push((c - prev).max(0.0));
            prev = c;
        }
        Histogram::from_masses(lo, width, masses)
    }

    /// Lower edge of the first bucket.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the last bucket.
    pub fn hi(&self) -> f64 {
        self.lo + self.width * self.masses.len() as f64
    }

    /// Bucket width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.masses.len()
    }

    /// Bucket masses.
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Total probability mass (<= 1; < 1 for partial pdfs).
    pub fn mass(&self) -> f64 {
        self.masses.iter().sum()
    }

    /// Support interval of the histogram grid.
    pub fn support(&self) -> Interval {
        Interval::new(self.lo, self.hi())
    }

    /// Probability density at `x` (uniform within each bucket).
    pub fn density(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi() {
            // Closed upper edge belongs to the last bucket.
            if x == self.hi() {
                return self.masses[self.masses.len() - 1] / self.width;
            }
            return 0.0;
        }
        let idx = (((x - self.lo) / self.width) as usize).min(self.masses.len() - 1);
        self.masses[idx] / self.width
    }

    /// Unnormalized cumulative `P(X <= x and tuple exists)`,
    /// piecewise-linear across buckets.
    pub fn cumulative(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi() {
            return self.mass();
        }
        let pos = (x - self.lo) / self.width;
        let idx = (pos as usize).min(self.masses.len() - 1);
        let frac = pos - idx as f64;
        self.masses[..idx].iter().sum::<f64>() + self.masses[idx] * frac
    }

    /// Probability mass on `[iv.lo, iv.hi]`, interpolating partial buckets.
    pub fn range_prob(&self, iv: &Interval) -> f64 {
        (self.cumulative(iv.hi) - self.cumulative(iv.lo)).max(0.0)
    }

    /// Applies a floor: zeroes the density on `region`, scaling partially
    /// overlapped buckets by the surviving fraction of their width.
    pub fn floor_region(&self, region: &RegionSet) -> Histogram {
        let mut masses = self.masses.clone();
        for (i, m) in masses.iter_mut().enumerate() {
            if *m == 0.0 {
                continue;
            }
            let b_lo = self.lo + i as f64 * self.width;
            let bucket = Interval::new(b_lo, b_lo + self.width);
            let mut removed = 0.0;
            for riv in region.intervals() {
                if let Some(x) = bucket.intersect(riv) {
                    removed += x.length();
                }
            }
            let kept = ((self.width - removed) / self.width).clamp(0.0, 1.0);
            *m *= kept;
        }
        Histogram { lo: self.lo, width: self.width, masses }
    }

    /// Expected value of `X` conditioned on existence; `None` when the pdf
    /// is vacuous (zero mass). Uses bucket midpoints.
    pub fn expected_value(&self) -> Option<f64> {
        let mass = self.mass();
        if mass <= 0.0 {
            return None;
        }
        let num: f64 = self
            .masses
            .iter()
            .enumerate()
            .map(|(i, m)| m * (self.lo + (i as f64 + 0.5) * self.width))
            .sum();
        Some(num / mass)
    }

    /// Rescales all bucket masses by `factor` (used by product and
    /// existence-probability arithmetic). Factor must be in `[0, 1]`.
    pub fn scale(&self, factor: f64) -> Histogram {
        debug_assert!((0.0..=1.0 + 1e-12).contains(&factor));
        Histogram {
            lo: self.lo,
            width: self.width,
            masses: self.masses.iter().map(|m| m * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Histogram {
        // 4 buckets over [0, 4], masses .1 .2 .3 .4
        Histogram::from_masses(0.0, 1.0, vec![0.1, 0.2, 0.3, 0.4]).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(Histogram::from_masses(0.0, 0.0, vec![1.0]).is_err());
        assert!(Histogram::from_masses(0.0, 1.0, vec![]).is_err());
        assert!(Histogram::from_masses(0.0, 1.0, vec![-0.1]).is_err());
        assert!(Histogram::from_masses(0.0, 1.0, vec![0.7, 0.7]).is_err());
        assert!(Histogram::from_masses(0.0, 1.0, vec![0.5, 0.3]).is_ok());
    }

    #[test]
    fn geometry() {
        let h = simple();
        assert_eq!(h.hi(), 4.0);
        assert_eq!(h.bins(), 4);
        assert!((h.mass() - 1.0).abs() < 1e-12);
        assert_eq!(h.support(), Interval::new(0.0, 4.0));
    }

    #[test]
    fn density_is_piecewise_uniform() {
        let h = simple();
        assert!((h.density(0.5) - 0.1).abs() < 1e-12);
        assert!((h.density(3.9) - 0.4).abs() < 1e-12);
        assert!((h.density(4.0) - 0.4).abs() < 1e-12, "closed upper edge");
        assert_eq!(h.density(-0.1), 0.0);
        assert_eq!(h.density(4.1), 0.0);
    }

    #[test]
    fn cumulative_interpolates() {
        let h = simple();
        assert_eq!(h.cumulative(0.0), 0.0);
        assert!((h.cumulative(1.0) - 0.1).abs() < 1e-12);
        assert!((h.cumulative(1.5) - 0.2).abs() < 1e-12);
        assert!((h.cumulative(4.0) - 1.0).abs() < 1e-12);
        assert!((h.cumulative(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_prob_partial_buckets() {
        let h = simple();
        let p = h.range_prob(&Interval::new(0.5, 2.5));
        // half of .1 + all of .2 + half of .3
        assert!((p - (0.05 + 0.2 + 0.15)).abs() < 1e-12);
    }

    #[test]
    fn from_cdf_matches_source() {
        let cdf = |x: f64| (x / 4.0).clamp(0.0, 1.0); // uniform on [0,4]
        let h = Histogram::from_cdf(0.0, 4.0, 8, cdf).unwrap();
        assert!((h.mass() - 1.0).abs() < 1e-12);
        for &x in &[0.3, 1.7, 2.2, 3.9] {
            assert!(
                (h.cumulative(x) - cdf(x)).abs() < 1e-12,
                "piecewise-linear cdf is exact for uniform"
            );
        }
    }

    #[test]
    fn floor_scales_partial_overlap() {
        let h = simple();
        // Zero everything above x = 2.5: bucket 2 keeps half, bucket 3 gone.
        let f = h.floor_region(&RegionSet::from_interval(Interval::at_least(2.5)));
        assert!((f.mass() - (0.1 + 0.2 + 0.15)).abs() < 1e-12);
        assert_eq!(f.density(3.0), 0.0);
        // NOTE: histogram floors scale partially-overlapped buckets by the
        // surviving width fraction, so re-flooring the same region scales
        // again — a documented consequence of the piecewise-uniform
        // approximation (symbolic pdfs keep floors exactly instead).
        let f2 = f.floor_region(&RegionSet::from_interval(Interval::at_least(2.5)));
        assert!(f2.mass() < f.mass());
        assert!((f2.mass() - (0.1 + 0.2 + 0.075)).abs() < 1e-12);
    }

    #[test]
    fn floor_order_independence() {
        let h = simple();
        let r1 = RegionSet::from_interval(Interval::new(0.0, 1.2));
        let r2 = RegionSet::from_interval(Interval::new(3.1, 4.0));
        let a = h.floor_region(&r1).floor_region(&r2);
        let b = h.floor_region(&r2).floor_region(&r1);
        let c = h.floor_region(&r1.union(&r2));
        for (x, y) in a.masses().iter().zip(b.masses()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in a.masses().iter().zip(c.masses()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_value_uses_midpoints() {
        let h = Histogram::from_masses(0.0, 2.0, vec![0.5, 0.5]).unwrap();
        // midpoints 1 and 3, equal mass
        assert!((h.expected_value().unwrap() - 2.0).abs() < 1e-12);
        let vac = h.scale(0.0);
        assert!(vac.expected_value().is_none());
    }

    #[test]
    fn scale_preserves_shape() {
        let h = simple().scale(0.5);
        assert!((h.mass() - 0.5).abs() < 1e-12);
        assert!((h.density(3.5) - 0.2).abs() < 1e-12);
    }
}
