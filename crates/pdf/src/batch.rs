//! Columnar batches of one-dimensional pdfs.
//!
//! A [`Pdf1Batch`] packs many [`Pdf1`] records into contiguous arenas: a
//! kind lane, a symbolic-parameter lane, and shared `f64` arenas for floor
//! intervals, histogram bucket masses, and discrete support points, with
//! per-record `(offset, len)` windows. The batch kernels (`mass_into`,
//! `range_prob_into`, `cumulative_into`, `floor_region_batch`, `scale_all`,
//! `marginalize_fold`, `product_mass_into`) run as flat loops over the
//! arenas, so the compiler can autovectorize the bucket/point sums, and
//! Gaussian cdf evaluations across the whole batch are funneled through
//! [`special::std_normal_cdf_slice`].
//!
//! **Invariant:** every kernel is bitwise-identical to mapping its scalar
//! [`Pdf1`] counterpart over the records — same formulas, same iteration
//! and summation order — so batch execution can never change query answers.
//! `tests/batch_kernels.rs` proves this property per kernel.

use crate::discrete::DiscretePdf;
use crate::error::{PdfError, Result as PdfResult};
use crate::histogram::Histogram;
use crate::interval::{Interval, RegionSet};
use crate::pdf1d::Pdf1;
use crate::special;
use crate::symbolic::Symbolic;

/// Representation tag of one packed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdfKind {
    /// Closed-form distribution + symbolic floor set + existence scale.
    Symbolic,
    /// Equi-width histogram (header lanes + a window into the mass arena).
    Histogram,
    /// Value–probability list (windows into parallel value/prob arenas).
    Discrete,
}

/// Placeholder parameter block for non-symbolic records.
const NO_DIST: Symbolic = Symbolic::Bernoulli { p: 0.0 };

/// A columnar batch of `Pdf1` records (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Pdf1Batch {
    kind: Vec<PdfKind>,
    /// Symbolic distribution per record ([`NO_DIST`] for other kinds).
    dist: Vec<Symbolic>,
    /// Existence scale per record (meaningful for symbolic records only).
    scale: Vec<f64>,
    /// Per-record window into the floor arenas (symbolic records only).
    floor_off: Vec<u32>,
    floor_len: Vec<u32>,
    floor_lo: Vec<f64>,
    floor_hi: Vec<f64>,
    /// Histogram headers (lower edge / bucket width).
    hlo: Vec<f64>,
    hwidth: Vec<f64>,
    /// Per-record window into the kind-selected data arena: `hmass` for
    /// histograms, `dval`/`dprob` for discrete records.
    off: Vec<u32>,
    len: Vec<u32>,
    hmass: Vec<f64>,
    dval: Vec<f64>,
    dprob: Vec<f64>,
}

impl Pdf1Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packed records.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Representation tag of record `i`.
    pub fn kind(&self, i: usize) -> PdfKind {
        self.kind[i]
    }

    /// Drops all records but keeps the arena capacity for reuse.
    pub fn clear(&mut self) {
        self.kind.clear();
        self.dist.clear();
        self.scale.clear();
        self.floor_off.clear();
        self.floor_len.clear();
        self.floor_lo.clear();
        self.floor_hi.clear();
        self.hlo.clear();
        self.hwidth.clear();
        self.off.clear();
        self.len.clear();
        self.hmass.clear();
        self.dval.clear();
        self.dprob.clear();
    }

    /// Record headers shared by every push path. `off`/`len` describe the
    /// data-arena window the caller has just (or is about to) fill.
    fn push_header(&mut self, kind: PdfKind, dist: Symbolic, scale: f64, off: u32, len: u32) {
        self.kind.push(kind);
        self.dist.push(dist);
        self.scale.push(scale);
        self.floor_off.push(self.floor_lo.len() as u32);
        self.floor_len.push(0);
        self.hlo.push(0.0);
        self.hwidth.push(0.0);
        self.off.push(off);
        self.len.push(len);
    }

    /// Appends a symbolic record.
    pub fn push_symbolic(&mut self, dist: Symbolic, floor: &[Interval], scale: f64) {
        self.push_header(PdfKind::Symbolic, dist, scale, 0, 0);
        *self.floor_len.last_mut().expect("just pushed") = floor.len() as u32;
        for iv in floor {
            self.floor_lo.push(iv.lo);
            self.floor_hi.push(iv.hi);
        }
    }

    /// Appends a histogram record. The masses must already satisfy the
    /// [`Histogram::from_masses`] invariants.
    pub fn push_histogram_unchecked(
        &mut self,
        lo: f64,
        width: f64,
        masses: impl Iterator<Item = f64>,
    ) {
        let off = self.hmass.len() as u32;
        self.hmass.extend(masses);
        self.push_header(PdfKind::Histogram, NO_DIST, 1.0, off, self.hmass.len() as u32 - off);
        let n = self.kind.len() - 1;
        self.hlo[n] = lo;
        self.hwidth[n] = width;
    }

    /// Appends a discrete record. The points must already be sorted and
    /// merged per the [`DiscretePdf::from_points`] invariants.
    pub fn push_discrete_unchecked(&mut self, points: impl Iterator<Item = (f64, f64)>) {
        let off = self.dval.len() as u32;
        for (v, p) in points {
            self.dval.push(v);
            self.dprob.push(p);
        }
        self.push_header(PdfKind::Discrete, NO_DIST, 1.0, off, self.dval.len() as u32 - off);
    }

    /// Validates and appends a histogram record, streaming the masses
    /// straight into the arena. Enforces exactly the
    /// [`Histogram::from_masses`] invariants — same checks, same order,
    /// same error text — so callers decoding untrusted input get behavior
    /// identical to building the scalar `Histogram`. On error the arena is
    /// rolled back and the iterator may be left partially consumed.
    pub fn push_histogram_checked(
        &mut self,
        lo: f64,
        width: f64,
        masses: impl Iterator<Item = f64>,
    ) -> PdfResult<()> {
        if !lo.is_finite() || !width.is_finite() || width <= 0.0 {
            return Err(PdfError::InvalidParameter(format!(
                "histogram requires finite lo and width > 0, got ({lo}, {width})"
            )));
        }
        let off = self.hmass.len();
        let mut total = 0.0;
        for m in masses {
            if !m.is_finite() || m < 0.0 {
                self.hmass.truncate(off);
                return Err(PdfError::InvalidParameter(format!(
                    "bucket masses must be finite and >= 0, got {m}"
                )));
            }
            total += m;
            self.hmass.push(m);
        }
        if self.hmass.len() == off {
            return Err(PdfError::InvalidParameter("histogram needs >= 1 bucket".into()));
        }
        if total > 1.0 + 1e-9 {
            self.hmass.truncate(off);
            return Err(PdfError::InvalidParameter(format!(
                "total histogram mass {total} exceeds 1"
            )));
        }
        let len = (self.hmass.len() - off) as u32;
        self.push_header(PdfKind::Histogram, NO_DIST, 1.0, off as u32, len);
        let n = self.kind.len() - 1;
        self.hlo[n] = lo;
        self.hwidth[n] = width;
        Ok(())
    }

    /// Validates and appends a discrete record. Already-canonical input
    /// (strictly increasing values, every probability > 0) streams straight
    /// into the arenas; anything needing the [`DiscretePdf::from_points`]
    /// sort/merge/drop pass is handed to that constructor, so results and
    /// errors are identical to building the scalar `DiscretePdf`. On error
    /// the arena is rolled back.
    pub fn push_discrete_checked(
        &mut self,
        mut points: impl Iterator<Item = (f64, f64)>,
    ) -> PdfResult<()> {
        let off = self.dval.len();
        for (v, p) in points.by_ref() {
            if !v.is_finite() || !p.is_finite() || p < 0.0 {
                self.dval.truncate(off);
                self.dprob.truncate(off);
                return Err(PdfError::InvalidParameter(format!(
                    "discrete point ({v}, {p}) must be finite with p >= 0"
                )));
            }
            if p == 0.0 || (self.dval.len() > off && self.dval[self.dval.len() - 1] >= v) {
                // Non-canonical input: hand everything to `from_points` for
                // the canonical sort/merge (and its exact error reporting).
                let mut all: Vec<(f64, f64)> = self.dval[off..]
                    .iter()
                    .copied()
                    .zip(self.dprob[off..].iter().copied())
                    .collect();
                all.push((v, p));
                all.extend(points);
                self.dval.truncate(off);
                self.dprob.truncate(off);
                let d = DiscretePdf::from_points(all)?;
                self.push_discrete_unchecked(d.points().iter().copied());
                return Ok(());
            }
            self.dval.push(v);
            self.dprob.push(p);
        }
        let total: f64 = self.dprob[off..].iter().sum();
        if total > 1.0 + 1e-9 {
            self.dval.truncate(off);
            self.dprob.truncate(off);
            return Err(PdfError::InvalidParameter(format!(
                "total discrete mass {total} exceeds 1"
            )));
        }
        let len = (self.dval.len() - off) as u32;
        self.push_header(PdfKind::Discrete, NO_DIST, 1.0, off as u32, len);
        Ok(())
    }

    /// Bulk variant of [`push_discrete_checked`] for decode hot paths:
    /// appends the points first and validates the freshly written arena
    /// windows with flat slice passes (which vectorize), instead of
    /// branching on every point. Non-canonical input rolls back and re-runs
    /// the streaming checked path, so results and errors are identical.
    pub fn push_discrete_checked_bulk(
        &mut self,
        points: impl Iterator<Item = (f64, f64)> + Clone,
    ) -> PdfResult<()> {
        let off = self.dval.len();
        for (v, p) in points.clone() {
            self.dval.push(v);
            self.dprob.push(p);
        }
        let (vals, probs) = (&self.dval[off..], &self.dprob[off..]);
        let canonical = vals.iter().all(|v| v.is_finite())
            && probs.iter().all(|&p| p.is_finite() && p > 0.0)
            && vals.windows(2).all(|w| w[0] < w[1]);
        if !canonical {
            self.dval.truncate(off);
            self.dprob.truncate(off);
            return self.push_discrete_checked(points);
        }
        let total: f64 = self.dprob[off..].iter().sum();
        if total > 1.0 + 1e-9 {
            self.dval.truncate(off);
            self.dprob.truncate(off);
            return Err(PdfError::InvalidParameter(format!(
                "total discrete mass {total} exceeds 1"
            )));
        }
        let len = (self.dval.len() - off) as u32;
        self.push_header(PdfKind::Discrete, NO_DIST, 1.0, off as u32, len);
        Ok(())
    }

    /// Appends any `Pdf1`.
    pub fn push(&mut self, pdf: &Pdf1) {
        match pdf {
            Pdf1::Symbolic { dist, floor, scale } => {
                self.push_symbolic(*dist, floor.intervals(), *scale)
            }
            Pdf1::Histogram(h) => {
                self.push_histogram_unchecked(h.lo(), h.width(), h.masses().iter().copied())
            }
            Pdf1::Discrete(d) => self.push_discrete_unchecked(d.points().iter().copied()),
        }
    }

    /// Reconstructs record `i` as a scalar `Pdf1`, bit-for-bit equal to the
    /// value that was packed (plus any kernel mutations applied since).
    pub fn get(&self, i: usize) -> Pdf1 {
        match self.kind[i] {
            PdfKind::Symbolic => Pdf1::Symbolic {
                dist: self.dist[i],
                floor: RegionSet::from_intervals(self.floor_slice(i).collect()),
                scale: self.scale[i],
            },
            PdfKind::Histogram => Pdf1::Histogram(Histogram::from_parts_unchecked(
                self.hlo[i],
                self.hwidth[i],
                self.hmass_window(i).to_vec(),
            )),
            PdfKind::Discrete => {
                let (vals, probs) = self.discrete_window(i);
                Pdf1::Discrete(DiscretePdf::from_sorted_points_unchecked(
                    vals.iter().copied().zip(probs.iter().copied()).collect(),
                ))
            }
        }
    }

    fn floor_slice(&self, i: usize) -> impl Iterator<Item = Interval> + '_ {
        let (o, n) = (self.floor_off[i] as usize, self.floor_len[i] as usize);
        self.floor_lo[o..o + n]
            .iter()
            .zip(&self.floor_hi[o..o + n])
            .map(|(&lo, &hi)| Interval::new(lo, hi))
    }

    fn hmass_window(&self, i: usize) -> &[f64] {
        let (o, n) = (self.off[i] as usize, self.len[i] as usize);
        &self.hmass[o..o + n]
    }

    fn discrete_window(&self, i: usize) -> (&[f64], &[f64]) {
        let (o, n) = (self.off[i] as usize, self.len[i] as usize);
        (&self.dval[o..o + n], &self.dprob[o..o + n])
    }

    /// Total probability mass of record `i` (scalar [`Pdf1::mass`]).
    pub fn mass_at(&self, i: usize) -> f64 {
        match self.kind[i] {
            PdfKind::Symbolic => {
                let dist = self.dist[i];
                let floored: f64 = self.floor_slice(i).map(|iv| dist.interval_prob(&iv)).sum();
                self.scale[i] * (1.0 - floored).max(0.0)
            }
            PdfKind::Histogram => self.hmass_window(i).iter().sum(),
            PdfKind::Discrete => self.discrete_window(i).1.iter().sum(),
        }
    }

    /// Mass kernel: `out[i] = mass_at(i)` for every record.
    pub fn mass_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.mass_at(i));
        }
    }

    /// Mass kernel over a selection vector: `out[j] = mass_at(sel[j])`.
    pub fn mass_sel_into(&self, sel: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(sel.len());
        for &i in sel {
            out.push(self.mass_at(i as usize));
        }
    }

    /// Pairwise naive product kernel: `out[i] = self.mass(i) * other.mass(i)`
    /// (the independence product used when histories are off).
    pub fn product_mass_into(&self, other: &Pdf1Batch, out: &mut Vec<f64>) {
        assert_eq!(self.len(), other.len(), "product over unequal batches");
        self.mass_into(out);
        let mut mb = Vec::with_capacity(other.len());
        other.mass_into(&mut mb);
        for (a, b) in out.iter_mut().zip(&mb) {
            *a *= b;
        }
    }

    /// Range-probability kernel (the paper's range-query primitive):
    /// `out[i] = get(i).range_prob(iv)`. Gaussian cdf evaluations across
    /// the batch are funneled through [`special::std_normal_cdf_slice`].
    /// Allocation-free when the batch holds no Gaussian records.
    pub fn range_prob_into(&self, iv: &Interval, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len(), 0.0);
        let mut gauss: Vec<(u32, u32)> = Vec::new();
        for (i, o) in out.iter_mut().enumerate() {
            match self.kind[i] {
                PdfKind::Symbolic => match self.dist[i] {
                    Symbolic::Gaussian { .. } => gauss.push((i as u32, i as u32)),
                    dist => *o = self.symbolic_range_nongauss(i, &dist, iv),
                },
                PdfKind::Histogram => *o = self.hist_range_prob(i, iv),
                PdfKind::Discrete => *o = self.discrete_range_prob(i, iv),
            }
        }
        self.gauss_range_lane(iv, &gauss, out);
    }

    /// Range-probability kernel over a selection vector:
    /// `out[j] = get(sel[j]).range_prob(iv)`.
    pub fn range_prob_sel_into(&self, iv: &Interval, sel: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.resize(sel.len(), 0.0);
        let mut gauss: Vec<(u32, u32)> = Vec::new();
        for (j, &rec) in sel.iter().enumerate() {
            let i = rec as usize;
            match self.kind[i] {
                PdfKind::Symbolic => match self.dist[i] {
                    Symbolic::Gaussian { .. } => gauss.push((rec, j as u32)),
                    dist => out[j] = self.symbolic_range_nongauss(i, &dist, iv),
                },
                PdfKind::Histogram => out[j] = self.hist_range_prob(i, iv),
                PdfKind::Discrete => out[j] = self.discrete_range_prob(i, iv),
            }
        }
        self.gauss_range_lane(iv, &gauss, out);
    }

    /// Scalar range probability of a non-Gaussian symbolic record
    /// (replicates [`Pdf1::range_prob`]'s symbolic arm).
    fn symbolic_range_nongauss(&self, i: usize, dist: &Symbolic, iv: &Interval) -> f64 {
        let mut p = dist.interval_prob(iv);
        for f in self.floor_slice(i) {
            if let Some(x) = f.intersect(iv) {
                p -= dist.interval_prob(&x);
            }
        }
        self.scale[i] * p.max(0.0)
    }

    /// Replicates [`Histogram::range_prob`] over the arena window.
    fn hist_range_prob(&self, i: usize, iv: &Interval) -> f64 {
        (self.hist_cumulative(i, iv.hi) - self.hist_cumulative(i, iv.lo)).max(0.0)
    }

    /// Finishes the Gaussian `(record, out slot)` pairs of a range-prob
    /// call as one cdf lane: z-values for (hi, lo) per record, evaluated by
    /// the vectorized slice kernel (bitwise-identical to the scalar
    /// `std_normal_cdf`). Floor corrections are rare and stay scalar — the
    /// scalar path computes them with the same calls.
    fn gauss_range_lane(&self, iv: &Interval, gauss: &[(u32, u32)], out: &mut [f64]) {
        if gauss.is_empty() {
            return;
        }
        let mut zs = Vec::with_capacity(gauss.len() * 2);
        for &(rec, _) in gauss {
            let Symbolic::Gaussian { mean, variance } = self.dist[rec as usize] else {
                unreachable!("gauss list holds gaussians")
            };
            zs.push((iv.hi - mean) / variance.sqrt());
            zs.push((iv.lo - mean) / variance.sqrt());
        }
        let mut phi = vec![0.0; zs.len()];
        special::std_normal_cdf_slice(&zs, &mut phi);
        for (k, &(rec, slot)) in gauss.iter().enumerate() {
            let i = rec as usize;
            let dist = self.dist[i];
            let mut p = (phi[2 * k] - phi[2 * k + 1]).max(0.0);
            for f in self.floor_slice(i) {
                if let Some(x) = f.intersect(iv) {
                    p -= dist.interval_prob(&x);
                }
            }
            out[slot as usize] = self.scale[i] * p.max(0.0);
        }
    }

    /// Cumulative kernel: `out[i] = get(i).cumulative(x)`, Gaussian mains
    /// batched through the vectorized cdf.
    pub fn cumulative_into(&self, x: f64, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len(), 0.0);
        let mut gauss: Vec<u32> = Vec::new();
        for (i, o) in out.iter_mut().enumerate() {
            match self.kind[i] {
                PdfKind::Symbolic => match self.dist[i] {
                    Symbolic::Gaussian { .. } => gauss.push(i as u32),
                    dist => *o = self.symbolic_cumulative_tail(i, &dist, dist.cdf(x), x),
                },
                PdfKind::Histogram => *o = self.hist_cumulative(i, x),
                PdfKind::Discrete => {
                    let (vals, probs) = self.discrete_window(i);
                    // `-0.0` is `Iterator::sum`'s additive identity; starting
                    // there keeps empty prefixes bitwise-equal to the scalar.
                    let mut s = -0.0;
                    for (v, p) in vals.iter().zip(probs) {
                        if *v <= x {
                            s += p;
                        } else {
                            break;
                        }
                    }
                    *o = s;
                }
            }
        }
        if gauss.is_empty() {
            return;
        }
        let mut zs = Vec::with_capacity(gauss.len());
        for &i in &gauss {
            let Symbolic::Gaussian { mean, variance } = self.dist[i as usize] else {
                unreachable!("gauss list holds gaussians")
            };
            zs.push((x - mean) / variance.sqrt());
        }
        let mut phi = vec![0.0; zs.len()];
        special::std_normal_cdf_slice(&zs, &mut phi);
        for (k, &i) in gauss.iter().enumerate() {
            let i = i as usize;
            let dist = self.dist[i];
            out[i] = self.symbolic_cumulative_tail(i, &dist, phi[k], x);
        }
    }

    /// Floor corrections + scale for a symbolic cumulative whose main cdf
    /// value `c` has already been computed (scalar [`Pdf1::cumulative`]).
    fn symbolic_cumulative_tail(&self, i: usize, dist: &Symbolic, mut c: f64, x: f64) -> f64 {
        for iv in self.floor_slice(i) {
            if iv.lo > x {
                break;
            }
            let clipped = Interval::new(iv.lo, iv.hi.min(x));
            c -= dist.interval_prob(&clipped);
        }
        self.scale[i] * c.max(0.0)
    }

    /// Replicates [`Histogram::cumulative`] over the arena window.
    fn hist_cumulative(&self, i: usize, x: f64) -> f64 {
        let (lo, width) = (self.hlo[i], self.hwidth[i]);
        let masses = self.hmass_window(i);
        if x <= lo {
            return 0.0;
        }
        if x >= lo + width * masses.len() as f64 {
            return masses.iter().sum();
        }
        let pos = (x - lo) / width;
        let idx = (pos as usize).min(masses.len() - 1);
        let frac = pos - idx as f64;
        masses[..idx].iter().sum::<f64>() + masses[idx] * frac
    }

    /// Replicates [`DiscretePdf::range_prob`] over the arena windows.
    fn discrete_range_prob(&self, i: usize, iv: &Interval) -> f64 {
        let (vals, probs) = self.discrete_window(i);
        let start = vals.partition_point(|v| *v < iv.lo);
        // `-0.0` is `Iterator::sum`'s additive identity; starting there
        // keeps empty suffixes bitwise-equal to the scalar.
        let mut s = -0.0;
        for (v, p) in vals[start..].iter().zip(&probs[start..]) {
            if *v <= iv.hi {
                s += p;
            } else {
                break;
            }
        }
        s
    }

    /// Floor kernel: packs `get(i).floor_region(region)` for every record
    /// into `out` (cleared first). Symbolic floors stay symbolic (interval
    /// union), histogram buckets keep their surviving width fraction, and
    /// discrete points inside the region are dropped — exactly the scalar
    /// semantics.
    pub fn floor_region_batch(&self, region: &RegionSet, out: &mut Pdf1Batch) {
        out.clear();
        for i in 0..self.len() {
            match self.kind[i] {
                PdfKind::Symbolic => {
                    let floor = RegionSet::from_intervals(self.floor_slice(i).collect());
                    let united = floor.union(region);
                    out.push_symbolic(self.dist[i], united.intervals(), self.scale[i]);
                }
                PdfKind::Histogram => {
                    let (lo, width) = (self.hlo[i], self.hwidth[i]);
                    let off = out.hmass.len() as u32;
                    for (k, &m0) in self.hmass_window(i).iter().enumerate() {
                        let mut m = m0;
                        if m != 0.0 {
                            let b_lo = lo + k as f64 * width;
                            let bucket = Interval::new(b_lo, b_lo + width);
                            let mut removed = 0.0;
                            for riv in region.intervals() {
                                if let Some(x) = bucket.intersect(riv) {
                                    removed += x.length();
                                }
                            }
                            let kept = ((width - removed) / width).clamp(0.0, 1.0);
                            m *= kept;
                        }
                        out.hmass.push(m);
                    }
                    out.push_header(
                        PdfKind::Histogram,
                        NO_DIST,
                        1.0,
                        off,
                        out.hmass.len() as u32 - off,
                    );
                    let n = out.kind.len() - 1;
                    out.hlo[n] = lo;
                    out.hwidth[n] = width;
                }
                PdfKind::Discrete => {
                    let (vals, probs) = self.discrete_window(i);
                    let off = out.dval.len() as u32;
                    for (v, p) in vals.iter().zip(probs) {
                        if !region.contains(*v) {
                            out.dval.push(*v);
                            out.dprob.push(*p);
                        }
                    }
                    out.push_header(
                        PdfKind::Discrete,
                        NO_DIST,
                        1.0,
                        off,
                        out.dval.len() as u32 - off,
                    );
                }
            }
        }
    }

    /// Scale kernel: multiplies every record's densities by `factor` in
    /// place (scalar [`Pdf1::scale`]) — three flat passes over the arenas.
    pub fn scale_all(&mut self, factor: f64) {
        for s in &mut self.scale {
            *s *= factor;
        }
        for m in &mut self.hmass {
            *m *= factor;
        }
        for p in &mut self.dprob {
            *p *= factor;
        }
    }

    /// Marginalization fold: applies the dropped-block mass `dm[i]` to
    /// record `i` exactly as `JointPdf::marginalize` folds dropped blocks
    /// into the first kept one — scale by `dm.max(0.0)` only when `dm < 1`.
    pub fn marginalize_fold(&mut self, dropped_mass: &[f64]) {
        assert_eq!(dropped_mass.len(), self.len(), "marginalize_fold length mismatch");
        for (i, &dm) in dropped_mass.iter().enumerate() {
            if dm < 1.0 {
                let f = dm.max(0.0);
                match self.kind[i] {
                    PdfKind::Symbolic => self.scale[i] *= f,
                    PdfKind::Histogram => {
                        let (o, n) = (self.off[i] as usize, self.len[i] as usize);
                        for m in &mut self.hmass[o..o + n] {
                            *m *= f;
                        }
                    }
                    PdfKind::Discrete => {
                        let (o, n) = (self.off[i] as usize, self.len[i] as usize);
                        for p in &mut self.dprob[o..o + n] {
                            *p *= f;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_batch() -> (Vec<Pdf1>, Pdf1Batch) {
        let pdfs = vec![
            Pdf1::gaussian(20.0, 5.0).unwrap(),
            Pdf1::gaussian(5.0, 1.0)
                .unwrap()
                .floor_region(&RegionSet::from_interval(Interval::at_least(5.0))),
            Pdf1::histogram(0.0, 1.0, vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
            Pdf1::discrete(vec![(1.0, 0.25), (2.0, 0.5), (3.0, 0.25)]).unwrap(),
            Pdf1::symbolic(Symbolic::uniform(2.0, 6.0).unwrap()),
            Pdf1::symbolic(Symbolic::binomial(4, 0.5).unwrap()),
        ];
        let mut b = Pdf1Batch::new();
        for p in &pdfs {
            b.push(p);
        }
        (pdfs, b)
    }

    #[test]
    fn roundtrip_is_exact() {
        let (pdfs, b) = mixed_batch();
        assert_eq!(b.len(), pdfs.len());
        for (i, p) in pdfs.iter().enumerate() {
            assert_eq!(&b.get(i), p);
        }
    }

    #[test]
    fn mass_kernel_bitwise() {
        let (pdfs, b) = mixed_batch();
        let mut out = Vec::new();
        b.mass_into(&mut out);
        for (i, p) in pdfs.iter().enumerate() {
            assert_eq!(out[i].to_bits(), p.mass().to_bits(), "record {i}");
        }
    }

    #[test]
    fn range_prob_kernel_bitwise() {
        let (pdfs, b) = mixed_batch();
        let mut out = Vec::new();
        for iv in [
            Interval::new(1.5, 4.5),
            Interval::new(-100.0, 100.0),
            Interval::at_most(3.0),
            Interval::at_least(19.0),
            Interval::point(2.0),
        ] {
            b.range_prob_into(&iv, &mut out);
            for (i, p) in pdfs.iter().enumerate() {
                assert_eq!(out[i].to_bits(), p.range_prob(&iv).to_bits(), "record {i}, {iv:?}");
            }
        }
    }

    #[test]
    fn selection_vector_kernels() {
        let (pdfs, b) = mixed_batch();
        let sel = [3u32, 0, 5];
        let mut out = Vec::new();
        b.mass_sel_into(&sel, &mut out);
        assert_eq!(out.len(), 3);
        for (j, &i) in sel.iter().enumerate() {
            assert_eq!(out[j].to_bits(), pdfs[i as usize].mass().to_bits());
        }
        let iv = Interval::new(0.5, 21.0);
        b.range_prob_sel_into(&iv, &sel, &mut out);
        for (j, &i) in sel.iter().enumerate() {
            assert_eq!(out[j].to_bits(), pdfs[i as usize].range_prob(&iv).to_bits());
        }
        // All-filtered selection: empty in, empty out.
        b.mass_sel_into(&[], &mut out);
        assert!(out.is_empty());
        b.range_prob_sel_into(&iv, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn checked_pushers_match_scalar_constructors() {
        let mut b = Pdf1Batch::new();
        b.push_histogram_checked(0.0, 1.0, [0.1, 0.2, 0.3].into_iter()).unwrap();
        assert_eq!(b.get(0), Pdf1::histogram(0.0, 1.0, vec![0.1, 0.2, 0.3]).unwrap());
        // Canonical discrete input streams straight into the arena.
        b.push_discrete_checked([(1.0, 0.25), (2.0, 0.5)].into_iter()).unwrap();
        assert_eq!(b.get(1), Pdf1::discrete(vec![(1.0, 0.25), (2.0, 0.5)]).unwrap());
        // Non-canonical input (unsorted, duplicate, zero) falls back to the
        // scalar sort/merge and lands on the identical result.
        b.push_discrete_checked([(2.0, 0.1), (1.0, 0.3), (2.0, 0.2), (3.0, 0.0)].into_iter())
            .unwrap();
        assert_eq!(
            b.get(2),
            Pdf1::discrete(vec![(2.0, 0.1), (1.0, 0.3), (2.0, 0.2), (3.0, 0.0)]).unwrap()
        );
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn checked_pushers_report_scalar_errors_and_roll_back() {
        let mut b = Pdf1Batch::new();
        b.push(&Pdf1::certain(7.0));
        type PushCase = (fn(&mut Pdf1Batch) -> crate::error::Result<()>, PdfError);
        let cases: [PushCase; 5] = [
            (
                |b| b.push_histogram_checked(f64::NAN, 1.0, [0.5].into_iter()),
                Histogram::from_masses(f64::NAN, 1.0, vec![0.5]).unwrap_err(),
            ),
            (
                |b| b.push_histogram_checked(0.0, 1.0, [0.5, -0.1].into_iter()),
                Histogram::from_masses(0.0, 1.0, vec![0.5, -0.1]).unwrap_err(),
            ),
            (
                |b| b.push_histogram_checked(0.0, 1.0, std::iter::empty()),
                Histogram::from_masses(0.0, 1.0, vec![]).unwrap_err(),
            ),
            (
                |b| b.push_histogram_checked(0.0, 1.0, [0.7, 0.7].into_iter()),
                Histogram::from_masses(0.0, 1.0, vec![0.7, 0.7]).unwrap_err(),
            ),
            (
                |b| b.push_discrete_checked([(0.0, 0.6), (1.0, 0.6)].into_iter()),
                DiscretePdf::from_points(vec![(0.0, 0.6), (1.0, 0.6)]).unwrap_err(),
            ),
        ];
        for (push, want) in cases {
            assert_eq!(push(&mut b).unwrap_err(), want);
        }
        assert_eq!(
            b.push_discrete_checked([(f64::NAN, 0.5)].into_iter()).unwrap_err(),
            DiscretePdf::from_points(vec![(f64::NAN, 0.5)]).unwrap_err()
        );
        // Every failure rolled back: the batch still holds only the first
        // record, and a subsequent push lands cleanly on the arena.
        assert_eq!(b.len(), 1);
        b.push_discrete_checked([(4.0, 1.0)].into_iter()).unwrap();
        assert_eq!(b.get(1), Pdf1::discrete(vec![(4.0, 1.0)]).unwrap());
    }

    #[test]
    fn bulk_checked_discrete_matches_streaming() {
        // Canonical, non-canonical (unsorted / duplicate / zero / NaN /
        // over-mass) and empty inputs: the bulk pusher must land on the
        // same records and the same errors as the streaming pusher, with
        // the same rollback behavior.
        let cases: Vec<Vec<(f64, f64)>> = vec![
            vec![(1.0, 0.25), (2.0, 0.5)],
            vec![(2.0, 0.1), (1.0, 0.3), (2.0, 0.2), (3.0, 0.0)],
            vec![(0.0, 0.6), (1.0, 0.6)],
            vec![(f64::NAN, 0.5)],
            vec![(1.0, f64::NAN)],
            vec![(1.0, -0.5)],
            vec![(f64::INFINITY, 0.5)],
            vec![],
            vec![(4.0, 1.0)],
        ];
        let mut streaming = Pdf1Batch::new();
        let mut bulk = Pdf1Batch::new();
        for pts in &cases {
            let a = streaming.push_discrete_checked(pts.iter().copied());
            let b = bulk.push_discrete_checked_bulk(pts.iter().copied());
            assert_eq!(a, b, "points {pts:?}");
        }
        assert_eq!(streaming.len(), bulk.len());
        for i in 0..streaming.len() {
            assert_eq!(streaming.get(i), bulk.get(i), "record {i}");
        }
    }

    #[test]
    fn clear_reuses_arena() {
        let (_, mut b) = mixed_batch();
        b.clear();
        assert!(b.is_empty());
        b.push(&Pdf1::certain(7.0));
        assert_eq!(b.len(), 1);
        assert_eq!(b.mass_at(0), 1.0);
    }
}
