//! # orion-pdf — the probability engine of Orion-RS
//!
//! This crate implements the distribution layer of *"Database Support for
//! Probabilistic Attributes and Tuples"* (ICDE 2008): symbolic, histogram
//! and discrete one-dimensional pdfs; joint multi-attribute distributions;
//! and the three internal operators the relational model is built on —
//! **marginalize**, **floor**, and **product**.
//!
//! Key concepts, mapped to the paper:
//!
//! * [`symbolic::Symbolic`] — the built-in standard distributions
//!   (`Gaus`, `Unif`, `Pois`, `Binom`, `Bern`, …), stored by parameters.
//! * [`histogram::Histogram`] / [`discrete::DiscretePdf`] — the generic
//!   `Hist` and `Discrete` representations for non-standard distributions.
//! * [`pdf1d::Pdf1`] — a (possibly *partial*) attribute pdf; total mass
//!   below 1 encodes the probability the tuple does not exist
//!   (closed-world, Section II-B).
//! * [`interval::RegionSet`] — symbolic `Floor{...}` regions, kept exactly
//!   alongside symbolic distributions (Section III-A).
//! * [`joint::JointPdf`] — the distribution of a dependency set: a product
//!   of independent correlated blocks, supporting `marginalize`, axis and
//!   general-predicate `floor`s, and independent `product`.
//!
//! ```
//! use orion_pdf::prelude::*;
//!
//! // A sensor reading: Gaus(20, 5), as in the paper's Table I.
//! let reading = Pdf1::gaussian(20.0, 5.0).unwrap();
//!
//! // Range query: P(18 <= x <= 22).
//! let p = reading.range_prob(&Interval::new(18.0, 22.0));
//! assert!(p > 0.6 && p < 0.7);
//!
//! // Selection x < 20 floors the upper half symbolically.
//! let after = reading.floor_region(&RegionSet::from_interval(Interval::at_least(20.0)));
//! assert!((after.mass() - 0.5).abs() < 1e-12);
//! ```

pub mod batch;
pub mod discrete;
pub mod error;
pub mod histogram;
pub mod interval;
pub mod joint;
pub mod ops;
pub mod pdf1d;
pub mod sample;
pub mod special;
pub mod symbolic;

/// Commonly used types, re-exported for ergonomic imports.
pub mod prelude {
    pub use crate::batch::{Pdf1Batch, PdfKind};
    pub use crate::discrete::DiscretePdf;
    pub use crate::error::{PdfError, Result as PdfResult};
    pub use crate::histogram::Histogram;
    pub use crate::interval::{Interval, RegionSet};
    pub use crate::joint::{Block, GridDim, JointDiscrete, JointGrid, JointPdf, DEFAULT_GRID_BINS};
    pub use crate::pdf1d::Pdf1;
    pub use crate::sample::{Uniform, XorShift};
    pub use crate::symbolic::Symbolic;
}
