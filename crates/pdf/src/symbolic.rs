//! Symbolic (closed-form) probability distributions.
//!
//! These are the paper's "standard distributions" stored symbolically in the
//! database: continuous Gaussian, Uniform, Exponential; discrete Poisson,
//! Binomial, Bernoulli, Geometric. Storing them symbolically (rather than as
//! sampled approximations) is the headline representational advantage of the
//! model — exact cdf evaluation, constant-size storage, no approximation
//! error.

use crate::error::{PdfError, Result};
use crate::interval::Interval;
use crate::special;
use serde::{Deserialize, Serialize};

/// A closed-form distribution, stored by its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Symbolic {
    /// Normal distribution `N(mean, variance)`. Note the second parameter is
    /// the **variance**, matching the paper's `Gaus(20, 5)` notation.
    Gaussian { mean: f64, variance: f64 },
    /// Continuous uniform on `[lo, hi]`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given rate `lambda` (mean `1/lambda`).
    Exponential { rate: f64 },
    /// Poisson with mean `lambda`, support `{0, 1, 2, ...}`.
    Poisson { lambda: f64 },
    /// Binomial with `n` trials of success probability `p`.
    Binomial { n: u64, p: f64 },
    /// Bernoulli with success probability `p`, support `{0, 1}`.
    Bernoulli { p: f64 },
    /// Geometric: number of trials until first success, support `{1, 2, ...}`.
    Geometric { p: f64 },
}

/// Tolerance used when matching a continuous value against an integer
/// support point of a discrete distribution.
const INT_EPS: f64 = 1e-9;

fn as_support_int(x: f64) -> Option<u64> {
    let r = x.round();
    ((x - r).abs() < INT_EPS && r >= 0.0 && r <= u64::MAX as f64).then_some(r as u64)
}

impl Symbolic {
    /// Gaussian constructor with parameter validation.
    pub fn gaussian(mean: f64, variance: f64) -> Result<Self> {
        if !mean.is_finite() || !variance.is_finite() || variance <= 0.0 {
            return Err(PdfError::InvalidParameter(format!(
                "Gaussian requires finite mean and variance > 0, got ({mean}, {variance})"
            )));
        }
        Ok(Symbolic::Gaussian { mean, variance })
    }

    /// Uniform constructor with parameter validation.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(PdfError::InvalidParameter(format!(
                "Uniform requires finite lo < hi, got ({lo}, {hi})"
            )));
        }
        Ok(Symbolic::Uniform { lo, hi })
    }

    /// Exponential constructor with parameter validation.
    pub fn exponential(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(PdfError::InvalidParameter(format!(
                "Exponential requires rate > 0, got {rate}"
            )));
        }
        Ok(Symbolic::Exponential { rate })
    }

    /// Poisson constructor with parameter validation.
    pub fn poisson(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(PdfError::InvalidParameter(format!(
                "Poisson requires lambda > 0, got {lambda}"
            )));
        }
        Ok(Symbolic::Poisson { lambda })
    }

    /// Binomial constructor with parameter validation.
    pub fn binomial(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || n == 0 {
            return Err(PdfError::InvalidParameter(format!(
                "Binomial requires n >= 1 and p in [0,1], got ({n}, {p})"
            )));
        }
        Ok(Symbolic::Binomial { n, p })
    }

    /// Bernoulli constructor with parameter validation.
    pub fn bernoulli(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(PdfError::InvalidParameter(format!(
                "Bernoulli requires p in [0,1], got {p}"
            )));
        }
        Ok(Symbolic::Bernoulli { p })
    }

    /// Geometric constructor with parameter validation.
    pub fn geometric(p: f64) -> Result<Self> {
        if p.is_nan() || p <= 0.0 || p > 1.0 {
            return Err(PdfError::InvalidParameter(format!(
                "Geometric requires p in (0,1], got {p}"
            )));
        }
        Ok(Symbolic::Geometric { p })
    }

    /// Whether the distribution is discrete (pmf over integers).
    pub fn is_discrete(&self) -> bool {
        matches!(
            self,
            Symbolic::Poisson { .. }
                | Symbolic::Binomial { .. }
                | Symbolic::Bernoulli { .. }
                | Symbolic::Geometric { .. }
        )
    }

    /// Probability density at `x` (continuous) or probability mass at `x`
    /// (discrete; zero off the integer support).
    pub fn density(&self, x: f64) -> f64 {
        match *self {
            Symbolic::Gaussian { mean, variance } => {
                let sd = variance.sqrt();
                special::std_normal_pdf((x - mean) / sd) / sd
            }
            Symbolic::Uniform { lo, hi } => {
                if x >= lo && x <= hi {
                    1.0 / (hi - lo)
                } else {
                    0.0
                }
            }
            Symbolic::Exponential { rate } => {
                if x >= 0.0 {
                    rate * (-rate * x).exp()
                } else {
                    0.0
                }
            }
            Symbolic::Poisson { lambda } => match as_support_int(x) {
                Some(k) => (k as f64 * lambda.ln() - lambda - special::ln_factorial(k)).exp(),
                None => 0.0,
            },
            Symbolic::Binomial { n, p } => match as_support_int(x) {
                Some(k) if k <= n => {
                    if p == 0.0 {
                        return if k == 0 { 1.0 } else { 0.0 };
                    }
                    if p == 1.0 {
                        return if k == n { 1.0 } else { 0.0 };
                    }
                    (special::ln_binomial(n, k)
                        + k as f64 * p.ln()
                        + (n - k) as f64 * (1.0 - p).ln())
                    .exp()
                }
                _ => 0.0,
            },
            Symbolic::Bernoulli { p } => match as_support_int(x) {
                Some(0) => 1.0 - p,
                Some(1) => p,
                _ => 0.0,
            },
            Symbolic::Geometric { p } => match as_support_int(x) {
                Some(k) if k >= 1 => (1.0 - p).powi((k - 1) as i32) * p,
                _ => 0.0,
            },
        }
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            Symbolic::Gaussian { mean, variance } => {
                special::std_normal_cdf((x - mean) / variance.sqrt())
            }
            Symbolic::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            Symbolic::Exponential { rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
            Symbolic::Poisson { lambda } => {
                if x < 0.0 {
                    0.0
                } else {
                    // P(X <= k) = Q(k + 1, lambda).
                    let k = x.floor();
                    special::gamma_q(k + 1.0, lambda)
                }
            }
            Symbolic::Binomial { n, .. } => {
                if x < 0.0 {
                    return 0.0;
                }
                let k = x.floor().min(n as f64) as u64;
                (0..=k).map(|i| self.density(i as f64)).sum::<f64>().min(1.0)
            }
            Symbolic::Bernoulli { p } => {
                if x < 0.0 {
                    0.0
                } else if x < 1.0 {
                    1.0 - p
                } else {
                    1.0
                }
            }
            Symbolic::Geometric { p } => {
                if x < 1.0 {
                    0.0
                } else {
                    1.0 - (1.0 - p).powf(x.floor())
                }
            }
        }
    }

    /// Probability mass on the closed interval `[iv.lo, iv.hi]`.
    ///
    /// For continuous distributions this is `cdf(hi) - cdf(lo)`; for discrete
    /// ones, endpoint inclusion is handled exactly.
    pub fn interval_prob(&self, iv: &Interval) -> f64 {
        if self.is_discrete() {
            // P(lo <= X <= hi) = cdf(hi) - cdf(lo - 1) on integer support;
            // use nextafter-style nudge via floor/ceil arithmetic.
            let hi = self.cdf(iv.hi);
            let lo = if iv.lo.is_finite() { self.cdf(iv.lo.ceil() - 1.0) } else { 0.0 };
            (hi - lo).max(0.0)
        } else {
            (self.cdf(iv.hi) - self.cdf(iv.lo)).max(0.0)
        }
    }

    /// Quantile function: the smallest `x` with `cdf(x) >= q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile domain: q in [0,1]");
        match *self {
            Symbolic::Gaussian { mean, variance } => {
                mean + variance.sqrt() * special::std_normal_quantile(q)
            }
            Symbolic::Uniform { lo, hi } => lo + q * (hi - lo),
            Symbolic::Exponential { rate } => {
                if q >= 1.0 {
                    f64::INFINITY
                } else {
                    -(1.0 - q).ln() / rate
                }
            }
            // Discrete distributions: walk the support.
            Symbolic::Poisson { .. }
            | Symbolic::Binomial { .. }
            | Symbolic::Bernoulli { .. }
            | Symbolic::Geometric { .. } => {
                let mut k = self.support().lo;
                let mut acc = 0.0;
                loop {
                    acc += self.density(k);
                    if acc >= q - 1e-12 || k >= self.support().hi {
                        return k;
                    }
                    k += 1.0;
                }
            }
        }
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        match *self {
            Symbolic::Gaussian { mean, .. } => mean,
            Symbolic::Uniform { lo, hi } => (lo + hi) / 2.0,
            Symbolic::Exponential { rate } => 1.0 / rate,
            Symbolic::Poisson { lambda } => lambda,
            Symbolic::Binomial { n, p } => n as f64 * p,
            Symbolic::Bernoulli { p } => p,
            Symbolic::Geometric { p } => 1.0 / p,
        }
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Symbolic::Gaussian { variance, .. } => variance,
            Symbolic::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Symbolic::Exponential { rate } => 1.0 / (rate * rate),
            Symbolic::Poisson { lambda } => lambda,
            Symbolic::Binomial { n, p } => n as f64 * p * (1.0 - p),
            Symbolic::Bernoulli { p } => p * (1.0 - p),
            Symbolic::Geometric { p } => (1.0 - p) / (p * p),
        }
    }

    /// The (closed) support of the distribution.
    pub fn support(&self) -> Interval {
        match *self {
            Symbolic::Gaussian { .. } => Interval::all(),
            Symbolic::Uniform { lo, hi } => Interval::new(lo, hi),
            Symbolic::Exponential { .. } => Interval::at_least(0.0),
            Symbolic::Poisson { .. } => Interval::at_least(0.0),
            Symbolic::Binomial { n, .. } => Interval::new(0.0, n as f64),
            Symbolic::Bernoulli { .. } => Interval::new(0.0, 1.0),
            Symbolic::Geometric { .. } => Interval::at_least(1.0),
        }
    }

    /// A bounded interval containing at least `1 - eps` of the mass, used
    /// when materializing histogram approximations of unbounded supports.
    pub fn effective_support(&self, eps: f64) -> Interval {
        let s = self.support();
        if s.is_bounded() {
            return s;
        }
        let lo = if s.lo.is_finite() { s.lo } else { self.quantile(eps / 2.0) };
        let hi = if s.hi.is_finite() { s.hi } else { self.quantile(1.0 - eps / 2.0) };
        Interval::new(lo, hi)
    }

    /// For discrete distributions, enumerate `(value, probability)` support
    /// points covering at least `1 - eps` of the mass. Returns `None` for
    /// continuous distributions.
    pub fn enumerate_discrete(&self, eps: f64) -> Option<Vec<(f64, f64)>> {
        if !self.is_discrete() {
            return None;
        }
        let mut out = Vec::new();
        let mut k = self.support().lo;
        let mut acc = 0.0;
        let hi = self.support().hi;
        while acc < 1.0 - eps && k <= hi {
            let p = self.density(k);
            if p > 0.0 {
                out.push((k, p));
                acc += p;
            }
            if k == hi {
                break;
            }
            k += 1.0;
        }
        Some(out)
    }
}

impl std::fmt::Display for Symbolic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Symbolic::Gaussian { mean, variance } => write!(f, "Gaus({mean},{variance})"),
            Symbolic::Uniform { lo, hi } => write!(f, "Unif({lo},{hi})"),
            Symbolic::Exponential { rate } => write!(f, "Expo({rate})"),
            Symbolic::Poisson { lambda } => write!(f, "Pois({lambda})"),
            Symbolic::Binomial { n, p } => write!(f, "Binom({n},{p})"),
            Symbolic::Bernoulli { p } => write!(f, "Bern({p})"),
            Symbolic::Geometric { p } => write!(f, "Geom({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaus(m: f64, v: f64) -> Symbolic {
        Symbolic::gaussian(m, v).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert!(Symbolic::gaussian(0.0, 0.0).is_err());
        assert!(Symbolic::gaussian(f64::NAN, 1.0).is_err());
        assert!(Symbolic::uniform(2.0, 2.0).is_err());
        assert!(Symbolic::exponential(-1.0).is_err());
        assert!(Symbolic::poisson(0.0).is_err());
        assert!(Symbolic::binomial(0, 0.5).is_err());
        assert!(Symbolic::binomial(5, 1.5).is_err());
        assert!(Symbolic::bernoulli(-0.1).is_err());
        assert!(Symbolic::geometric(0.0).is_err());
        assert!(Symbolic::geometric(1.0).is_ok());
    }

    #[test]
    fn gaussian_moments_and_cdf() {
        let g = gaus(20.0, 5.0);
        assert_eq!(g.mean(), 20.0);
        assert_eq!(g.variance(), 5.0);
        assert!((g.cdf(20.0) - 0.5).abs() < 1e-12);
        // One sd above the mean.
        let sd = 5.0_f64.sqrt();
        assert!((g.cdf(20.0 + sd) - 0.841_344_746_068_543).abs() < 1e-9);
    }

    #[test]
    fn uniform_density_integrates() {
        let u = Symbolic::uniform(2.0, 6.0).unwrap();
        assert_eq!(u.density(4.0), 0.25);
        assert_eq!(u.density(1.0), 0.0);
        assert_eq!(u.cdf(2.0), 0.0);
        assert_eq!(u.cdf(6.0), 1.0);
        assert!((u.cdf(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(u.mean(), 4.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_cdf_and_quantile() {
        let e = Symbolic::exponential(0.5).unwrap();
        assert!((e.cdf(2.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
        assert_eq!(e.cdf(-1.0), 0.0);
        let q = e.quantile(0.95);
        assert!((e.cdf(q) - 0.95).abs() < 1e-12);
        assert_eq!(e.mean(), 2.0);
    }

    #[test]
    fn poisson_pmf_sums_and_cdf_matches() {
        let p = Symbolic::poisson(3.0).unwrap();
        let total: f64 = (0..60).map(|k| p.density(k as f64)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // cdf via incomplete gamma must match the pmf sum.
        let direct: f64 = (0..=5).map(|k| p.density(k as f64)).sum();
        assert!((p.cdf(5.0) - direct).abs() < 1e-10);
        assert!((p.cdf(5.7) - direct).abs() < 1e-10, "cdf is a step function");
        assert_eq!(p.density(2.5), 0.0);
    }

    #[test]
    fn binomial_pmf_known_values() {
        let b = Symbolic::binomial(10, 0.5).unwrap();
        assert!((b.density(5.0) - 252.0 / 1024.0).abs() < 1e-12);
        assert!((b.cdf(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(b.mean(), 5.0);
        assert_eq!(b.variance(), 2.5);
        // Degenerate p.
        let b0 = Symbolic::binomial(4, 0.0).unwrap();
        assert_eq!(b0.density(0.0), 1.0);
        assert_eq!(b0.density(1.0), 0.0);
        let b1 = Symbolic::binomial(4, 1.0).unwrap();
        assert_eq!(b1.density(4.0), 1.0);
    }

    #[test]
    fn bernoulli_and_geometric() {
        let be = Symbolic::bernoulli(0.3).unwrap();
        assert!((be.density(0.0) - 0.7).abs() < 1e-15);
        assert!((be.density(1.0) - 0.3).abs() < 1e-15);
        assert!((be.cdf(0.5) - 0.7).abs() < 1e-15);
        let ge = Symbolic::geometric(0.25).unwrap();
        assert!((ge.density(1.0) - 0.25).abs() < 1e-15);
        assert!((ge.density(3.0) - 0.75 * 0.75 * 0.25).abs() < 1e-15);
        assert!((ge.cdf(3.0) - (1.0 - 0.75_f64.powi(3))).abs() < 1e-12);
        assert_eq!(ge.mean(), 4.0);
    }

    #[test]
    fn interval_prob_discrete_endpoints() {
        let b = Symbolic::binomial(4, 0.5).unwrap();
        // P(1 <= X <= 2) = 4/16 + 6/16
        let p = b.interval_prob(&Interval::new(1.0, 2.0));
        assert!((p - 10.0 / 16.0).abs() < 1e-12);
        // Half-open-looking floats: [0.5, 2.5] contains {1, 2}.
        let p = b.interval_prob(&Interval::new(0.5, 2.5));
        assert!((p - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf_continuous() {
        let g = gaus(-3.0, 2.25);
        for &q in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            assert!((g.cdf(g.quantile(q)) - q).abs() < 1e-10);
        }
    }

    #[test]
    fn quantile_discrete_is_smallest_support_point() {
        let b = Symbolic::binomial(4, 0.5).unwrap();
        // cdf: 1/16, 5/16, 11/16, 15/16, 16/16
        assert_eq!(b.quantile(0.05), 0.0);
        assert_eq!(b.quantile(0.2), 1.0);
        assert_eq!(b.quantile(0.5), 2.0);
        assert_eq!(b.quantile(1.0), 4.0);
    }

    #[test]
    fn effective_support_covers_requested_mass() {
        let g = gaus(0.0, 1.0);
        let iv = g.effective_support(1e-6);
        assert!(g.interval_prob(&iv) >= 1.0 - 1e-6);
        assert!(iv.is_bounded());
        let u = Symbolic::uniform(0.0, 1.0).unwrap();
        assert_eq!(u.effective_support(1e-6), Interval::new(0.0, 1.0));
    }

    #[test]
    fn enumerate_discrete_covers_mass() {
        let p = Symbolic::poisson(4.0).unwrap();
        let pts = p.enumerate_discrete(1e-9).unwrap();
        let total: f64 = pts.iter().map(|(_, p)| p).sum();
        assert!(total >= 1.0 - 1e-9);
        assert!(gaus(0.0, 1.0).enumerate_discrete(1e-9).is_none());
        let be = Symbolic::bernoulli(0.4).unwrap();
        assert_eq!(be.enumerate_discrete(0.0).unwrap().len(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(gaus(20.0, 5.0).to_string(), "Gaus(20,5)");
    }
}
