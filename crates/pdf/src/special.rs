//! Special mathematical functions used by the symbolic distributions.
//!
//! Everything here is implemented from scratch (no external math crates):
//! error function, log-gamma, regularized incomplete gamma, and the standard
//! normal cdf/quantile. Accuracy targets are ~1e-12 absolute for `erf`,
//! ~1e-10 for `ln_gamma`, and ~1e-9 for the incomplete gamma — comfortably
//! below the approximation error budgets in the evaluation harness.

// Cody's rational Chebyshev approximations for erf/erfc (W. J. Cody,
// "Rational Chebyshev approximation for the error function", Math. Comp.
// 1969; the netlib CALERF coefficients). Constant-time, ~1e-16 relative
// accuracy -- this sits on the hot path of every Gaussian cdf evaluation.

const ERF_A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_02e2,
    3.209_377_589_138_469_4e3,
    1.857_777_061_846_031_5e-1,
];
const ERF_B: [f64; 4] = [
    2.360_129_095_234_412_2e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_171e3,
];
const ERF_C: [f64; 9] = [
    5.641_884_969_886_701e-1,
    8.883_149_794_388_377,
    6.611_919_063_714_163e1,
    2.986_351_381_974_001e2,
    8.819_522_212_417_69e2,
    1.712_047_612_634_070_7e3,
    2.051_078_377_826_071_6e3,
    1.230_339_354_797_997_2e3,
    2.153_115_354_744_038_3e-8,
];
const ERF_D: [f64; 8] = [
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_099e2,
    1.621_389_574_566_690_3e3,
    3.290_799_235_733_459_7e3,
    4.362_619_090_143_247e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_5e3,
];
const ERF_P: [f64; 6] = [
    3.053_266_349_612_323_6e-1,
    3.603_448_999_498_044_5e-1,
    1.257_817_261_112_292_6e-1,
    1.608_378_514_874_227_5e-2,
    6.587_491_615_298_378e-4,
    1.631_538_713_730_209_7e-2,
];
const ERF_Q: [f64; 5] = [
    2.568_520_192_289_822,
    1.872_952_849_923_460_4,
    5.279_051_029_514_285e-1,
    6.051_834_131_244_132e-2,
    2.335_204_976_268_691_8e-3,
];
const SQRPI: f64 = 5.641_895_835_477_563e-1;

/// Core of Cody's algorithm: erfc(y) for `y > 0.46875`.
fn erfc_cody_tail(y: f64) -> f64 {
    let result = if y <= 4.0 {
        let mut num = ERF_C[8] * y;
        let mut den = y;
        for i in 0..7 {
            num = (num + ERF_C[i]) * y;
            den = (den + ERF_D[i]) * y;
        }
        (num + ERF_C[7]) / (den + ERF_D[7])
    } else {
        let ysq = 1.0 / (y * y);
        let mut num = ERF_P[5] * ysq;
        let mut den = ysq;
        for i in 0..4 {
            num = (num + ERF_P[i]) * ysq;
            den = (den + ERF_Q[i]) * ysq;
        }
        let r = ysq * (num + ERF_P[4]) / (den + ERF_Q[4]);
        (SQRPI - r) / y
    };
    // exp(-y^2) split as exp(-ysq^2) * exp(-del) for accuracy (Cody).
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp() * result
}

/// Core of Cody's algorithm: erf(x) for `|x| <= 0.46875`.
#[inline]
fn erf_core(x: f64) -> f64 {
    let y = x.abs();
    let z = if y > 1e-300 { y * y } else { 0.0 };
    let mut num = ERF_A[4] * z;
    let mut den = z;
    for i in 0..3 {
        num = (num + ERF_A[i]) * z;
        den = (den + ERF_B[i]) * z;
    }
    x * (num + ERF_A[3]) / (den + ERF_B[3])
}

/// The error function `erf(x) = 2/sqrt(pi) * \int_0^x e^{-t^2} dt`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        return erf_core(x);
    }
    if y >= 6.0 {
        return x.signum();
    }
    let e = 1.0 - erfc_cody_tail(y);
    if x < 0.0 {
        -e
    } else {
        e
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`,
/// accurate for large positive `x` where `erf(x)` saturates.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x.is_infinite() {
        return if x > 0.0 { 0.0 } else { 2.0 };
    }
    let y = x.abs();
    if y <= 0.46875 {
        return 1.0 - erf(x);
    }
    if y > 26.6 {
        // Underflows past the smallest subnormal.
        return if x > 0.0 { 0.0 } else { 2.0 };
    }
    let r = erfc_cody_tail(y);
    if x < 0.0 {
        2.0 - r
    } else {
        r
    }
}

/// Natural log of the gamma function, via the Lanczos approximation (g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Gamma(x) Gamma(1-x) = pi / sin(pi x)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = gamma(a, x) / Gamma(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

/// Continued-fraction evaluation of `Q(a, x)`, valid for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / 1e-300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Standard normal cumulative distribution function `Phi(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Vectorized standard normal cdf: fills `out[i] = std_normal_cdf(zs[i])`,
/// **bitwise-identical** to the scalar function for every element.
///
/// Elements are classified once into the scalar path's branches (Cody core
/// polynomial, Cody tail, saturation, NaN), then each class runs as a flat
/// loop over the collected indices — the per-class polynomial loops carry no
/// branches, so they autovectorize. Used by the columnar batch kernels.
///
/// Panics if `zs` and `out` differ in length.
pub fn std_normal_cdf_slice(zs: &[f64], out: &mut [f64]) {
    assert_eq!(zs.len(), out.len(), "std_normal_cdf_slice length mismatch");
    // Scratch index lists per branch; resolved values are written inline.
    let mut core: Vec<u32> = Vec::new();
    let mut tail: Vec<u32> = Vec::new();
    for (i, (&z, o)) in zs.iter().zip(out.iter_mut()).enumerate() {
        let w = -z / std::f64::consts::SQRT_2;
        if w.is_nan() {
            *o = f64::NAN;
        } else if w.abs() <= 0.46875 {
            core.push(i as u32);
        } else if w.abs() > 26.6 {
            // Saturated (includes ±inf): matches the scalar erfc cutoffs.
            *o = if w > 0.0 { 0.0 } else { 1.0 };
        } else {
            tail.push(i as u32);
        }
    }
    for &i in &core {
        let w = -zs[i as usize] / std::f64::consts::SQRT_2;
        out[i as usize] = 0.5 * (1.0 - erf_core(w));
    }
    for &i in &tail {
        let w = -zs[i as usize] / std::f64::consts::SQRT_2;
        let r = erfc_cody_tail(w.abs());
        out[i as usize] = 0.5 * if w < 0.0 { 2.0 - r } else { r };
    }
}

/// Standard normal density `phi(z)`.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal cdf (the probit function), via the
/// Acklam rational approximation refined with one Halley step.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Acklam's approximation.
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_521,
        -275.928_510_446_969,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the true cdf.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial requires k <= n");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
    }

    #[test]
    fn erfc_large_argument() {
        // erfc(3) = 2.209049699858544e-5
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 1e-15);
        // erfc(5) = 1.5374597944280351e-12
        assert!((erfc(5.0) - 1.537_459_794_428_035e-12).abs() < 1e-24);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for &x in &[0.1, 0.5, 1.0, 1.9, 2.1, 3.0, 4.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
        // Gamma(10) = 362880
        assert!((ln_gamma(10.0) - 362_880.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 2.5, 7.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // P(a, 0) = 0, P(a, inf) -> 1
        assert_eq!(gamma_p(3.5, 0.0), 0.0);
        assert!((gamma_p(3.5, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.7, 10.0] {
            for &x in &[0.2, 1.0, 3.0, 15.0] {
                assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_known() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((std_normal_cdf(1.96) - 0.975_002_104_851_779_7).abs() < 1e-10);
        for &z in &[0.3, 1.1, 2.2] {
            assert!((std_normal_cdf(z) + std_normal_cdf(-z) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = std_normal_quantile(p);
            assert!((std_normal_cdf(z) - p).abs() < 1e-12, "p = {p}");
        }
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn normal_cdf_slice_bitwise_matches_scalar() {
        // Dense grid crossing every branch boundary of the scalar path:
        // core polynomial, Cody tail, saturation, both signs.
        let mut zs: Vec<f64> = Vec::new();
        let mut z = -45.0;
        while z <= 45.0 {
            zs.push(z);
            z += 0.0625;
        }
        zs.extend_from_slice(&[
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            0.46875 * std::f64::consts::SQRT_2,
            -0.46875 * std::f64::consts::SQRT_2,
            26.6 * std::f64::consts::SQRT_2,
            -26.6 * std::f64::consts::SQRT_2,
            1e-300,
            -1e-300,
        ]);
        let mut out = vec![0.0; zs.len()];
        std_normal_cdf_slice(&zs, &mut out);
        for (&z, &got) in zs.iter().zip(&out) {
            let want = std_normal_cdf(z);
            assert_eq!(got.to_bits(), want.to_bits(), "z = {z}");
        }
    }

    #[test]
    fn normal_cdf_slice_empty_and_single() {
        std_normal_cdf_slice(&[], &mut []);
        let mut out = [0.0];
        std_normal_cdf_slice(&[1.25], &mut out);
        assert_eq!(out[0].to_bits(), std_normal_cdf(1.25).to_bits());
    }

    #[test]
    fn binomial_coefficients() {
        assert!((ln_binomial(5, 2) - 10.0_f64.ln()).abs() < 1e-11);
        assert!((ln_binomial(10, 5) - 252.0_f64.ln()).abs() < 1e-11);
        assert!((ln_binomial(4, 0)).abs() < 1e-12);
    }
}
