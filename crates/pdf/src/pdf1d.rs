//! The unified one-dimensional (partial) pdf: a symbolic distribution with
//! symbolic floors, a histogram, or a discrete sampling.
//!
//! This is the paper's attribute-level pdf value. Floors applied to a
//! symbolic distribution are kept **symbolically** as an interval-set
//! attached to the distribution (`[Gaus(5,1), Floor{[5,inf]}]`, Section
//! III-A), so subsequent operations stay exact; histograms and discrete
//! samplings absorb floors directly into their buckets/points.

use crate::discrete::DiscretePdf;
use crate::error::{PdfError, Result};
use crate::histogram::Histogram;
use crate::interval::{Interval, RegionSet};
use crate::symbolic::Symbolic;
use serde::{Deserialize, Serialize};

/// Mass below which a pdf is considered vacuous (the tuple cannot exist).
pub const VACUOUS_EPS: f64 = 1e-12;

/// Tail mass discarded when a symbolic distribution with unbounded support
/// must be materialized onto a bounded grid.
pub const TAIL_EPS: f64 = 1e-9;

/// A one-dimensional, possibly partial, probability distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pdf1 {
    /// A symbolic distribution with an attached floored-out region and an
    /// existence scale factor (`scale` multiplies all densities; floors from
    /// *other* attributes in the same dependency set shrink it).
    Symbolic { dist: Symbolic, floor: RegionSet, scale: f64 },
    /// A generic histogram.
    Histogram(Histogram),
    /// A discrete value–probability list.
    Discrete(DiscretePdf),
}

impl Pdf1 {
    /// Wraps a symbolic distribution as an un-floored, full-mass pdf.
    pub fn symbolic(dist: Symbolic) -> Self {
        Pdf1::Symbolic { dist, floor: RegionSet::empty(), scale: 1.0 }
    }

    /// Shorthand: `Gaus(mean, variance)`.
    pub fn gaussian(mean: f64, variance: f64) -> Result<Self> {
        Ok(Pdf1::symbolic(Symbolic::gaussian(mean, variance)?))
    }

    /// Shorthand: `Unif(lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self> {
        Ok(Pdf1::symbolic(Symbolic::uniform(lo, hi)?))
    }

    /// Shorthand: a discrete pdf from points.
    pub fn discrete(points: Vec<(f64, f64)>) -> Result<Self> {
        Ok(Pdf1::Discrete(DiscretePdf::from_points(points)?))
    }

    /// Shorthand: a histogram pdf from bucket masses.
    pub fn histogram(lo: f64, width: f64, masses: Vec<f64>) -> Result<Self> {
        Ok(Pdf1::Histogram(Histogram::from_masses(lo, width, masses)?))
    }

    /// A certain (deterministic) value as a probability-1 point mass.
    pub fn certain(v: f64) -> Self {
        Pdf1::Discrete(DiscretePdf::certain(v))
    }

    /// Total probability mass; < 1 means the tuple only exists with that
    /// probability (partial pdf, closed-world assumption — Section II-B).
    pub fn mass(&self) -> f64 {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                let floored: f64 = floor.intervals().iter().map(|iv| dist.interval_prob(iv)).sum();
                scale * (1.0 - floored).max(0.0)
            }
            Pdf1::Histogram(h) => h.mass(),
            Pdf1::Discrete(d) => d.mass(),
        }
    }

    /// Whether effectively no possible world retains this tuple.
    pub fn is_vacuous(&self) -> bool {
        self.mass() < VACUOUS_EPS
    }

    /// Whether the underlying value domain is discrete.
    pub fn is_discrete(&self) -> bool {
        match self {
            Pdf1::Symbolic { dist, .. } => dist.is_discrete(),
            Pdf1::Histogram(_) => false,
            Pdf1::Discrete(_) => true,
        }
    }

    /// Density (or point mass) at `x`, honoring floors.
    pub fn density(&self, x: f64) -> f64 {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                if floor.contains(x) {
                    0.0
                } else {
                    scale * dist.density(x)
                }
            }
            Pdf1::Histogram(h) => h.density(x),
            Pdf1::Discrete(d) => d.prob_at(x),
        }
    }

    /// Unnormalized cumulative `P(X <= x and tuple exists)`.
    pub fn cumulative(&self, x: f64) -> f64 {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                let mut c = dist.cdf(x);
                for iv in floor.intervals() {
                    if iv.lo > x {
                        break;
                    }
                    let clipped = Interval::new(iv.lo, iv.hi.min(x));
                    c -= dist.interval_prob(&clipped);
                }
                scale * c.max(0.0)
            }
            Pdf1::Histogram(h) => h.cumulative(x),
            Pdf1::Discrete(d) => d.cumulative(x),
        }
    }

    /// Probability that the value lies in the closed interval (and the tuple
    /// exists): the paper's range-query primitive.
    pub fn range_prob(&self, iv: &Interval) -> f64 {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                let mut p = dist.interval_prob(iv);
                for f in floor.intervals() {
                    if let Some(x) = f.intersect(iv) {
                        p -= dist.interval_prob(&x);
                    }
                }
                scale * p.max(0.0)
            }
            Pdf1::Histogram(h) => h.range_prob(iv),
            Pdf1::Discrete(d) => d.range_prob(iv),
        }
    }

    /// Applies a floor over `region` (Section III-A `floor(f, F)`):
    /// densities inside `region` become zero; the result is a partial pdf.
    /// Symbolic pdfs keep the floor symbolically; histograms and discrete
    /// pdfs absorb it.
    pub fn floor_region(&self, region: &RegionSet) -> Pdf1 {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                Pdf1::Symbolic { dist: *dist, floor: floor.union(region), scale: *scale }
            }
            Pdf1::Histogram(h) => Pdf1::Histogram(h.floor_region(region)),
            Pdf1::Discrete(d) => Pdf1::Discrete(d.floor_region(region)),
        }
    }

    /// Multiplies all densities by `factor` in `[0, 1]` — used when floors
    /// on *sibling* attributes reduce the joint existence probability.
    pub fn scale(&self, factor: f64) -> Pdf1 {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                Pdf1::Symbolic { dist: *dist, floor: floor.clone(), scale: scale * factor }
            }
            Pdf1::Histogram(h) => Pdf1::Histogram(h.scale(factor)),
            Pdf1::Discrete(d) => Pdf1::Discrete(d.scale(factor)),
        }
    }

    /// Expected value conditioned on existence. For floored symbolic pdfs
    /// the expectation is computed on a materialized grid.
    pub fn expected_value(&self) -> Option<f64> {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                if *scale <= 0.0 {
                    return None;
                }
                if floor.is_empty() {
                    return Some(dist.mean());
                }
                if dist.is_discrete() {
                    let pts = dist.enumerate_discrete(TAIL_EPS)?;
                    let d = DiscretePdf::from_points(pts).ok()?;
                    return d.floor_region(floor).expected_value();
                }
                // Materialize onto a fine histogram and floor it.
                let h = self.to_histogram(EXPECTATION_GRID)?;
                h.expected_value()
            }
            Pdf1::Histogram(h) => h.expected_value(),
            Pdf1::Discrete(d) => d.expected_value(),
        }
    }

    /// A bounded interval covering the (effective) support, or `None` for a
    /// vacuous discrete pdf.
    pub fn effective_support(&self) -> Option<Interval> {
        match self {
            Pdf1::Symbolic { dist, .. } => Some(dist.effective_support(TAIL_EPS)),
            Pdf1::Histogram(h) => Some(h.support()),
            Pdf1::Discrete(d) => d.support(),
        }
    }

    /// Materializes this pdf as an equi-width histogram with `bins` buckets
    /// over the effective support, preserving floors and partial mass.
    /// Returns `None` for a vacuous pdf with no support.
    pub fn to_histogram(&self, bins: usize) -> Option<Histogram> {
        let support = self.effective_support()?;
        let (lo, hi) = if support.is_point() {
            (support.lo - 0.5, support.hi + 0.5)
        } else {
            (support.lo, support.hi)
        };
        // A discrete atom exactly at `lo` is already included in cdf(lo) and
        // would otherwise be lost; nudge the left edge outward.
        let lo = if self.is_discrete() { lo - ((hi - lo) * 1e-6 + 1e-9) } else { lo };
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                let base = Histogram::from_cdf(lo, hi, bins, |x| dist.cdf(x)).ok()?;
                let mut h = base.floor_region(floor);
                if *scale != 1.0 {
                    h = h.scale(*scale);
                }
                Some(h)
            }
            Pdf1::Histogram(h) => {
                // Re-bin by exact cdf interpolation.
                Histogram::from_cdf(lo, hi, bins, |x| h.cumulative(x)).ok()
            }
            Pdf1::Discrete(d) => {
                if d.is_empty() {
                    return None;
                }
                Histogram::from_cdf(lo, hi, bins, |x| d.cumulative(x)).ok()
            }
        }
    }

    /// Materializes this pdf as an `n`-point discrete sampling: the support
    /// is split into `n` equal-width cells and each cell's mass is placed at
    /// its midpoint. This is the approximation a pure tuple-uncertainty
    /// model is forced into (Figure 4's `Discrete` series).
    pub fn to_discrete(&self, n: usize) -> Option<DiscretePdf> {
        if n == 0 {
            return None;
        }
        if let Pdf1::Discrete(d) = self {
            if d.len() <= n {
                return Some(d.clone());
            }
        }
        let support = self.effective_support()?;
        if support.is_point() {
            return DiscretePdf::from_points(vec![(support.lo, self.mass())]).ok();
        }
        let width = support.length() / n as f64;
        // One shared edge array so adjacent cells agree bit-for-bit on their
        // boundary: cell i = (edges[i], edges[i+1]] (first cell closed at
        // the left, last edge pinned to the exact support bound). Without a
        // shared edge, independently rounded `lo + width` values can
        // overlap by one ulp and double-count an atom sitting exactly on a
        // boundary — or drop one at the support maximum.
        let mut edges = Vec::with_capacity(n + 1);
        for i in 0..=n {
            edges.push(support.lo + i as f64 * width);
        }
        edges[n] = edges[n].max(support.hi);
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let cell_lo = if i == 0 { edges[0] } else { edges[i].next_up() };
            let cell = Interval::new(cell_lo.min(edges[i + 1]), edges[i + 1]);
            let mass = self.range_prob(&cell);
            if mass > 0.0 {
                pts.push((edges[i] + width / 2.0, mass));
            }
        }
        DiscretePdf::from_points(pts).ok()
    }

    /// Converts into an explicit discrete pdf when the domain is genuinely
    /// discrete (symbolic discrete distributions are enumerated exactly up
    /// to `TAIL_EPS` tail mass). Returns an error for continuous pdfs.
    pub fn enumerate(&self) -> Result<DiscretePdf> {
        match self {
            Pdf1::Discrete(d) => Ok(d.clone()),
            Pdf1::Symbolic { dist, floor, scale } if dist.is_discrete() => {
                let pts = dist.enumerate_discrete(TAIL_EPS).expect("discrete symbolic enumerates");
                let d = DiscretePdf::from_points(pts)?;
                Ok(d.floor_region(floor).scale(*scale))
            }
            _ => Err(PdfError::IncompatibleOperands("cannot enumerate a continuous pdf".into())),
        }
    }

    /// Conditional quantile: the smallest `x` with
    /// `P(X <= x | tuple exists) >= q`. Returns `None` for vacuous pdfs,
    /// for `q` outside `[0, 1]` (or NaN), and for unbounded results
    /// (`q = 0` / `q = 1` over an unbounded symbolic support).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mass = self.mass();
        if mass < VACUOUS_EPS {
            return None;
        }
        match self {
            Pdf1::Symbolic { dist, floor, .. } if floor.is_empty() => {
                let x = dist.quantile(q);
                x.is_finite().then_some(x)
            }
            // Floored discrete symbolic: enumerate exactly (mirrors
            // expected_value's path) instead of smearing onto a grid.
            Pdf1::Symbolic { dist, floor, scale } if dist.is_discrete() => {
                let pts = dist.enumerate_discrete(TAIL_EPS)?;
                let d = DiscretePdf::from_points(pts).ok()?;
                Pdf1::Discrete(d.floor_region(floor).scale(*scale)).quantile(q)
            }
            Pdf1::Discrete(d) => {
                let target = q * mass;
                let mut acc = 0.0;
                for &(v, p) in d.points() {
                    acc += p;
                    // Relative slack only: an absolute epsilon would let
                    // sub-epsilon atoms satisfy quantiles above their cdf.
                    if acc >= target * (1.0 - 1e-12) {
                        return Some(v);
                    }
                }
                d.points().last().map(|&(v, _)| v)
            }
            // Plain histograms: invert the piecewise-linear cumulative
            // directly instead of bisecting.
            Pdf1::Histogram(h) => {
                let target = q * mass;
                let mut acc = 0.0;
                for (i, &m) in h.masses().iter().enumerate() {
                    if acc + m >= target && m > 0.0 {
                        let frac = ((target - acc) / m).clamp(0.0, 1.0);
                        return Some(h.lo() + (i as f64 + frac) * h.width());
                    }
                    acc += m;
                }
                Some(h.hi())
            }
            // Histogram and floored symbolic: bisect the cumulative.
            _ => {
                let support = self.effective_support()?;
                let target = q * mass;
                let (mut lo, mut hi) = (support.lo, support.hi);
                for _ in 0..200 {
                    let mid = (lo + hi) / 2.0;
                    if self.cumulative(mid) < target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    if hi - lo < 1e-12 * (1.0 + hi.abs()) {
                        break;
                    }
                }
                Some(hi)
            }
        }
    }

    /// Variance of `X` conditioned on existence; `None` when vacuous.
    pub fn variance(&self) -> Option<f64> {
        let mass = self.mass();
        if mass < VACUOUS_EPS {
            return None;
        }
        match self {
            Pdf1::Symbolic { dist, floor, .. } if floor.is_empty() => Some(dist.variance()),
            Pdf1::Symbolic { dist, floor, scale } if dist.is_discrete() => {
                let pts = dist.enumerate_discrete(TAIL_EPS)?;
                let d = DiscretePdf::from_points(pts).ok()?;
                Pdf1::Discrete(d.floor_region(floor).scale(*scale)).variance()
            }
            Pdf1::Discrete(d) => {
                let mean = d.expected_value()?;
                Some(
                    d.points().iter().map(|(v, p)| p * (v - mean) * (v - mean)).sum::<f64>() / mass,
                )
            }
            Pdf1::Histogram(h) => Some(histogram_variance(h)?),
            _ => Some(histogram_variance(&self.to_histogram(EXPECTATION_GRID)?)?),
        }
    }

    /// The distribution **conditioned on existence**: a mass-1 pdf with the
    /// same shape. Floored symbolic pdfs are materialized onto a histogram
    /// with `bins` buckets first (the model itself never renormalizes —
    /// partial mass *is* the existence probability — so this is a terminal
    /// statistic for presentation, not an operator input).
    pub fn normalized(&self, bins: usize) -> Result<Pdf1> {
        let mass = self.mass();
        if mass < VACUOUS_EPS {
            return Err(PdfError::VacuousResult("cannot normalize a vacuous pdf".into()));
        }
        if (mass - 1.0).abs() < 1e-12 {
            return Ok(self.clone());
        }
        match self {
            Pdf1::Discrete(d) => {
                let pts = d.points().iter().map(|&(v, p)| (v, p / mass)).collect();
                Pdf1::discrete(pts)
            }
            Pdf1::Histogram(h) => {
                let masses = h.masses().iter().map(|m| m / mass).collect();
                Pdf1::histogram(h.lo(), h.width(), masses)
            }
            // A scale-only partial (no floor) normalizes exactly back to
            // the symbolic distribution.
            Pdf1::Symbolic { dist, floor, .. } if floor.is_empty() => Ok(Pdf1::symbolic(*dist)),
            Pdf1::Symbolic { dist, .. } if dist.is_discrete() => {
                let d = self.enumerate()?;
                let pts = d.points().iter().map(|&(v, p)| (v, p / mass)).collect();
                Pdf1::discrete(pts)
            }
            Pdf1::Symbolic { .. } => {
                let h = self
                    .to_histogram(bins)
                    .ok_or_else(|| PdfError::VacuousResult("no support".into()))?;
                let masses = h.masses().iter().map(|m| m / mass).collect();
                Pdf1::histogram(h.lo(), h.width(), masses)
            }
        }
    }

    /// Serialized-size proxy: the number of `f64` parameters this pdf stores.
    /// Symbolic pdfs are constant-size; approximations grow linearly — this
    /// drives the I/O difference in Figure 5.
    pub fn param_count(&self) -> usize {
        match self {
            Pdf1::Symbolic { floor, .. } => 3 + 2 * floor.intervals().len(),
            Pdf1::Histogram(h) => 2 + h.bins(),
            Pdf1::Discrete(d) => 2 * d.len(),
        }
    }
}

/// Grid resolution used when a floored symbolic pdf must be materialized to
/// compute an expectation.
const EXPECTATION_GRID: usize = 4096;

/// Conditional variance of a histogram around its bucket-midpoint mean.
fn histogram_variance(h: &Histogram) -> Option<f64> {
    let mean = h.expected_value()?;
    let mut acc = 0.0;
    for (i, m) in h.masses().iter().enumerate() {
        let x = h.lo() + (i as f64 + 0.5) * h.width();
        acc += m * (x - mean) * (x - mean);
    }
    Some(acc / h.mass())
}

impl std::fmt::Display for Pdf1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                if floor.is_empty() && *scale == 1.0 {
                    write!(f, "{dist}")
                } else {
                    write!(f, "[{dist}, Floor{{")?;
                    for (i, iv) in floor.intervals().iter().enumerate() {
                        if i > 0 {
                            write!(f, " u ")?;
                        }
                        write!(f, "[{},{}]", iv.lo, iv.hi)?;
                    }
                    write!(f, "}}")?;
                    if *scale != 1.0 {
                        write!(f, ", x{scale}")?;
                    }
                    write!(f, "]")
                }
            }
            Pdf1::Histogram(h) => write!(f, "Hist({} bins on [{},{}])", h.bins(), h.lo(), h.hi()),
            Pdf1::Discrete(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_floor_matches_paper_example() {
        // Gaus(5,1) with selection x < 5 => [Gaus(5,1), Floor{[5, inf]}],
        // mass exactly 0.5.
        let g = Pdf1::gaussian(5.0, 1.0).unwrap();
        let f = g.floor_region(&RegionSet::from_interval(Interval::at_least(5.0)));
        assert!((f.mass() - 0.5).abs() < 1e-12);
        assert_eq!(f.density(6.0), 0.0);
        assert!(f.density(4.0) > 0.0);
        assert_eq!(f.to_string(), "[Gaus(5,1), Floor{[5,inf]}]");
    }

    #[test]
    fn floor_order_independence_symbolic() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        let r1 = RegionSet::from_interval(Interval::at_most(-1.0));
        let r2 = RegionSet::from_interval(Interval::at_least(1.0));
        let a = g.floor_region(&r1).floor_region(&r2);
        let b = g.floor_region(&r2).floor_region(&r1);
        let c = g.floor_region(&r1.union(&r2));
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((a.density(x) - b.density(x)).abs() < 1e-15);
            assert!((a.density(x) - c.density(x)).abs() < 1e-15);
        }
        assert!((a.mass() - c.mass()).abs() < 1e-12);
    }

    #[test]
    fn cumulative_with_floor() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        let f = g.floor_region(&RegionSet::from_interval(Interval::new(-1.0, 0.0)));
        // P(X <= 0, exists) = cdf(0) - P(-1 <= X <= 0) = 0.5 - (cdf(0)-cdf(-1))
        let want = 0.5 - (0.5 - Symbolic::gaussian(0.0, 1.0).unwrap().cdf(-1.0));
        assert!((f.cumulative(0.0) - want).abs() < 1e-12);
        // cumulative is monotone even across the floor.
        assert!(f.cumulative(-0.5) <= f.cumulative(0.5) + 1e-15);
    }

    #[test]
    fn range_prob_subtracts_floored_mass() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        let f = g.floor_region(&RegionSet::from_interval(Interval::new(0.0, 1.0)));
        let p = f.range_prob(&Interval::new(-1.0, 1.0));
        let gd = Symbolic::gaussian(0.0, 1.0).unwrap();
        let want = gd.interval_prob(&Interval::new(-1.0, 0.0));
        assert!((p - want).abs() < 1e-12);
    }

    #[test]
    fn certain_value_behaves_deterministically() {
        let c = Pdf1::certain(7.0);
        assert_eq!(c.mass(), 1.0);
        assert_eq!(c.range_prob(&Interval::new(6.0, 8.0)), 1.0);
        assert_eq!(c.range_prob(&Interval::new(8.0, 9.0)), 0.0);
        assert_eq!(c.expected_value(), Some(7.0));
        assert!(c.is_discrete());
    }

    #[test]
    fn to_histogram_preserves_mass_and_shape() {
        let g = Pdf1::gaussian(50.0, 4.0).unwrap();
        let h = g.to_histogram(64).unwrap();
        assert!((h.mass() - 1.0).abs() < 1e-6);
        // cdf agreement at a few probes.
        for &x in &[46.0, 50.0, 53.0] {
            assert!((h.cumulative(x) - g.cumulative(x)).abs() < 0.02);
        }
    }

    #[test]
    fn to_discrete_places_cell_mass_at_midpoints() {
        let u = Pdf1::uniform(0.0, 10.0).unwrap();
        let d = u.to_discrete(5).unwrap();
        assert_eq!(d.len(), 5);
        assert!((d.mass() - 1.0).abs() < 1e-12);
        assert!((d.prob_at(1.0) - 0.2).abs() < 1e-12);
        assert!((d.prob_at(9.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn to_discrete_keeps_small_discrete_exact() {
        let d0 = Pdf1::discrete(vec![(1.0, 0.5), (9.0, 0.5)]).unwrap();
        let d = d0.to_discrete(25).unwrap();
        assert_eq!(d.points(), &[(1.0, 0.5), (9.0, 0.5)]);
    }

    #[test]
    fn histogram_beats_discrete_at_equal_size() {
        // The Figure 4 premise, in miniature: range-query error of a 5-bin
        // histogram is below a 5-point discretization for a smooth Gaussian.
        let g = Pdf1::gaussian(50.0, 4.0).unwrap();
        let h = Pdf1::Histogram(g.to_histogram(5).unwrap());
        let d = Pdf1::Discrete(g.to_discrete(5).unwrap());
        let mut err_h = 0.0;
        let mut err_d = 0.0;
        let mut k = 0;
        let mut x = 44.0;
        while x < 56.0 {
            let iv = Interval::new(x, x + 3.0);
            let truth = g.range_prob(&iv);
            err_h += (h.range_prob(&iv) - truth).abs();
            err_d += (d.range_prob(&iv) - truth).abs();
            k += 1;
            x += 0.37;
        }
        assert!(err_h / k as f64 * 2.0 < err_d / k as f64, "hist {} vs disc {}", err_h, err_d);
    }

    #[test]
    fn enumerate_symbolic_discrete() {
        let p = Pdf1::symbolic(Symbolic::binomial(3, 0.5).unwrap());
        let d = p.enumerate().unwrap();
        assert_eq!(d.len(), 4);
        assert!((d.prob_at(1.0) - 0.375).abs() < 1e-12);
        assert!(Pdf1::gaussian(0.0, 1.0).unwrap().enumerate().is_err());
    }

    #[test]
    fn vacuous_detection() {
        let d = Pdf1::discrete(vec![(1.0, 0.5)]).unwrap();
        assert!(!d.is_vacuous());
        let f = d.floor_region(&RegionSet::all());
        assert!(f.is_vacuous());
        let g = Pdf1::gaussian(0.0, 1.0).unwrap().floor_region(&RegionSet::all());
        assert!(g.is_vacuous());
    }

    #[test]
    fn param_count_tracks_representation_size() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        assert_eq!(g.param_count(), 3);
        let h = Pdf1::Histogram(g.to_histogram(5).unwrap());
        assert_eq!(h.param_count(), 7);
        let d = Pdf1::Discrete(g.to_discrete(25).unwrap());
        assert_eq!(d.param_count(), 50);
    }

    #[test]
    fn quantile_inverts_cumulative() {
        let g = Pdf1::gaussian(10.0, 4.0).unwrap();
        assert!((g.quantile(0.5).unwrap() - 10.0).abs() < 1e-9);
        // Floored pdf: conditional quantile over the surviving half.
        let f = g.floor_region(&RegionSet::from_interval(Interval::at_least(10.0)));
        let med = f.quantile(0.5).unwrap();
        // Median of lower-half Gaussian = 25th percentile of the original.
        let want = Symbolic::gaussian(10.0, 4.0).unwrap().quantile(0.25);
        assert!((med - want).abs() < 1e-6, "med {med} want {want}");
        // Discrete.
        let d = Pdf1::discrete(vec![(1.0, 0.25), (2.0, 0.5), (3.0, 0.25)]).unwrap();
        assert_eq!(d.quantile(0.5).unwrap(), 2.0);
        assert_eq!(d.quantile(0.9).unwrap(), 3.0);
        // Vacuous.
        assert!(Pdf1::Discrete(DiscretePdf::vacuous()).quantile(0.5).is_none());
        // Out-of-domain q and unbounded results return None, not panics.
        assert!(g.quantile(1.5).is_none());
        assert!(g.quantile(f64::NAN).is_none());
        assert!(g.quantile(1.0).is_none(), "Gaussian q=1 is +inf");
        assert_eq!(Pdf1::uniform(0.0, 1.0).unwrap().quantile(1.0), Some(1.0));
        // Floored discrete symbolic takes the exact enumeration path.
        let b = Pdf1::symbolic(Symbolic::binomial(4, 0.5).unwrap())
            .floor_region(&RegionSet::from_interval(Interval::at_most(0.5)));
        assert_eq!(b.quantile(0.1).unwrap(), 1.0);
    }

    #[test]
    fn variance_matches_closed_forms() {
        let g = Pdf1::gaussian(0.0, 9.0).unwrap();
        assert!((g.variance().unwrap() - 9.0).abs() < 1e-12);
        let d = Pdf1::discrete(vec![(0.0, 0.5), (2.0, 0.5)]).unwrap();
        assert!((d.variance().unwrap() - 1.0).abs() < 1e-12);
        // Floored Gaussian (half-normal over the kept side): variance
        // sigma^2 (1 - 2/pi) for the half-normal.
        let f = g.floor_region(&RegionSet::from_interval(Interval::at_least(0.0)));
        let want = 9.0 * (1.0 - 2.0 / std::f64::consts::PI);
        assert!((f.variance().unwrap() - want).abs() < 0.05, "{}", f.variance().unwrap());
    }

    #[test]
    fn normalized_restores_unit_mass() {
        let d = Pdf1::discrete(vec![(1.0, 0.2), (2.0, 0.2)]).unwrap();
        let n = d.normalized(64).unwrap();
        assert!((n.mass() - 1.0).abs() < 1e-12);
        assert!((n.density(1.0) - 0.5).abs() < 1e-12);
        // Floored symbolic materializes.
        let g = Pdf1::gaussian(0.0, 1.0)
            .unwrap()
            .floor_region(&RegionSet::from_interval(Interval::at_least(0.0)));
        let n = g.normalized(128).unwrap();
        // Materialization keeps all but TAIL_EPS of the (conditional) mass.
        assert!((n.mass() - 1.0).abs() < 1e-6);
        assert!(matches!(n, Pdf1::Histogram(_)));
        // Vacuous errors.
        assert!(Pdf1::Discrete(DiscretePdf::vacuous()).normalized(8).is_err());
        // Full-mass pdf returned as-is.
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        assert_eq!(g.normalized(8).unwrap(), g);
    }

    #[test]
    fn scale_compounds() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap().scale(0.5).scale(0.5);
        assert!((g.mass() - 0.25).abs() < 1e-12);
        assert!(
            (g.density(0.0) - 0.25 * Symbolic::gaussian(0.0, 1.0).unwrap().density(0.0)).abs()
                < 1e-15
        );
    }
}
