//! Cross-representation operations: approximation-error metrics (Figure 4's
//! measurement) and sum-aggregation over pdfs (the paper's motivating case
//! for approximating exponential-size discrete results with a continuous
//! pdf).

use crate::discrete::DiscretePdf;
use crate::error::{PdfError, Result};
use crate::interval::Interval;
use crate::pdf1d::Pdf1;
use crate::symbolic::Symbolic;

/// Absolute error of an approximation when answering the range query
/// `P(X in [iv.lo, iv.hi])`, against the exact pdf.
pub fn range_query_error(exact: &Pdf1, approx: &Pdf1, iv: &Interval) -> f64 {
    (exact.range_prob(iv) - approx.range_prob(iv)).abs()
}

/// Mean and standard deviation of a sample (population variant).
/// Returns `(0, 0)` for an empty sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Exact convolution of two discrete pdfs: the distribution of `X + Y` for
/// independent `X`, `Y`. The support grows multiplicatively — the blow-up
/// the paper cites for aggregates over discrete uncertainty.
pub fn convolve_discrete(a: &DiscretePdf, b: &DiscretePdf) -> Result<DiscretePdf> {
    let mut pts = Vec::with_capacity(a.len() * b.len());
    for &(va, pa) in a.points() {
        for &(vb, pb) in b.points() {
            pts.push((va + vb, pa * pb));
        }
    }
    DiscretePdf::from_points(pts)
}

/// Sum of independent pdfs approximated by a moment-matched Gaussian
/// (central limit): mean = sum of conditional means, variance = sum of
/// variances. The existence probability is the product of masses.
/// This is the constant-size alternative the paper proposes for
/// aggregate results.
pub fn sum_gaussian_approx(pdfs: &[Pdf1]) -> Result<Pdf1> {
    if pdfs.is_empty() {
        return Err(PdfError::IncompatibleOperands("sum of zero pdfs".into()));
    }
    let mut mean = 0.0;
    let mut var = 0.0;
    let mut mass = 1.0;
    for p in pdfs {
        mass *= p.mass();
        let m = p
            .expected_value()
            .ok_or_else(|| PdfError::VacuousResult("vacuous pdf in sum".into()))?;
        mean += m;
        var += variance_of(p, m);
    }
    let g = Pdf1::gaussian(mean, var.max(1e-12))?;
    Ok(if mass < 1.0 { g.scale(mass) } else { g })
}

/// Variance of a pdf around its conditional mean (delegates to
/// [`Pdf1::variance`]; the `mean` parameter is retained by the caller only
/// for the moment sum itself).
fn variance_of(p: &Pdf1, _mean: f64) -> f64 {
    p.variance().unwrap_or(0.0)
}

/// Grid convolution: the distribution of `X + Y` for independent
/// continuous (or mixed) `X`, `Y`, materialized onto `bins`-bucket
/// histograms. This is the "exact-ish" middle ground between the
/// exponential discrete convolution and the constant-size Gaussian
/// approximation: O(bins²) work, O(bins) result.
pub fn convolve_grid(a: &Pdf1, b: &Pdf1, bins: usize) -> Result<crate::histogram::Histogram> {
    if bins < 2 {
        return Err(PdfError::InvalidParameter(format!(
            "convolve_grid needs bins >= 2, got {bins}"
        )));
    }
    let ha = a
        .to_histogram(bins)
        .ok_or_else(|| PdfError::VacuousResult("vacuous left operand".into()))?;
    let hb = b
        .to_histogram(bins)
        .ok_or_else(|| PdfError::VacuousResult("vacuous right operand".into()))?;
    let lo = ha.lo() + hb.lo();
    let hi = ha.hi() + hb.hi();
    let out_bins = bins.max(2);
    let width = (hi - lo) / out_bins as f64;
    let mut masses = vec![0.0; out_bins];
    // Cloud-in-cell deposition: split each point mass linearly between the
    // two buckets whose midpoints bracket it, so bucket quantization does
    // not bias the moments of the result.
    let mut deposit = |x: f64, m: f64| {
        // Clamp before splitting so edge deposits stay in their edge bucket
        // instead of leaking a fraction inward.
        let pos = ((x - lo) / width - 0.5).clamp(0.0, (out_bins - 1) as f64);
        let i0f = pos.floor();
        let frac = pos - i0f;
        let i0 = i0f as usize;
        let i1 = (i0 + 1).min(out_bins - 1);
        masses[i0] += m * (1.0 - frac);
        masses[i1] += m * frac;
    };
    for (i, &ma) in ha.masses().iter().enumerate() {
        if ma == 0.0 {
            continue;
        }
        let xa = ha.lo() + (i as f64 + 0.5) * ha.width();
        for (j, &mb) in hb.masses().iter().enumerate() {
            if mb == 0.0 {
                continue;
            }
            let xb = hb.lo() + (j as f64 + 0.5) * hb.width();
            deposit(xa + xb, ma * mb);
        }
    }
    crate::histogram::Histogram::from_masses(lo, width, masses)
}

/// Kolmogorov–Smirnov-style distance between two pdfs: the max |cdf
/// difference| over a probe grid spanning both supports. Used by tests to
/// bound approximation drift.
pub fn cdf_distance(a: &Pdf1, b: &Pdf1, probes: usize) -> f64 {
    let sa = a.effective_support();
    let sb = b.effective_support();
    let (lo, hi) = match (sa, sb) {
        (Some(x), Some(y)) => (x.lo.min(y.lo), x.hi.max(y.hi)),
        (Some(x), None) | (None, Some(x)) => (x.lo, x.hi),
        (None, None) => return 0.0,
    };
    if lo >= hi {
        return (a.cumulative(lo) - b.cumulative(lo)).abs();
    }
    let mut worst = 0.0f64;
    for i in 0..=probes {
        let x = lo + (hi - lo) * i as f64 / probes as f64;
        worst = worst.max((a.cumulative(x) - b.cumulative(x)).abs());
    }
    worst
}

/// Expected value of a symbolic distribution truncated to an interval —
/// closed-form for Gaussian, used to sanity-check grid expectations.
pub fn gaussian_truncated_mean(mean: f64, variance: f64, iv: &Interval) -> f64 {
    let sd = variance.sqrt();
    let a = (iv.lo - mean) / sd;
    let b = (iv.hi - mean) / sd;
    let phi = crate::special::std_normal_pdf;
    let cap = crate::special::std_normal_cdf;
    let (pa, pb) =
        (if a.is_finite() { phi(a) } else { 0.0 }, if b.is_finite() { phi(b) } else { 0.0 });
    let z = cap(b) - cap(a);
    mean + sd * (pa - pb) / z
}

/// Builds the paper's two approximations of a symbolic pdf at a common
/// "sample size" `n`: an `n`-bin histogram and an `n`-point discrete
/// sampling. Returns `(histogram, discrete)`.
pub fn approximate_both(exact: &Pdf1, n: usize) -> Option<(Pdf1, Pdf1)> {
    let h = exact.to_histogram(n)?;
    let d = exact.to_discrete(n)?;
    Some((Pdf1::Histogram(h), Pdf1::Discrete(d)))
}

/// Convenience: the exact range probability of a symbolic Gaussian —
/// used as ground truth in the Figure 4 harness.
pub fn gaussian_range_prob(mean: f64, variance: f64, iv: &Interval) -> f64 {
    let g = Symbolic::Gaussian { mean, variance };
    g.interval_prob(iv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn convolution_of_two_dice() {
        let die =
            DiscretePdf::from_points((1..=6).map(|v| (v as f64, 1.0 / 6.0)).collect()).unwrap();
        let two = convolve_discrete(&die, &die).unwrap();
        assert_eq!(two.len(), 11);
        assert!((two.prob_at(7.0) - 6.0 / 36.0).abs() < 1e-12);
        assert!((two.prob_at(2.0) - 1.0 / 36.0).abs() < 1e-12);
        assert!((two.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_support_blowup() {
        // 10 coin flips -> 2^10 products collapse to 11 integer sums, but a
        // generic-valued pdf keeps multiplying supports; verify the
        // generic (irrational-offset) case really blows up.
        let a = DiscretePdf::from_points(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap();
        let b =
            DiscretePdf::from_points(vec![(0.0, 0.5), (std::f64::consts::SQRT_2, 0.5)]).unwrap();
        let c = convolve_discrete(&a, &b).unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn gaussian_sum_matches_exact_for_gaussians() {
        // Sum of N(1,2) and N(3,4) is exactly N(4,6).
        let s = sum_gaussian_approx(&[
            Pdf1::gaussian(1.0, 2.0).unwrap(),
            Pdf1::gaussian(3.0, 4.0).unwrap(),
        ])
        .unwrap();
        match s {
            Pdf1::Symbolic { dist: Symbolic::Gaussian { mean, variance }, .. } => {
                assert!((mean - 4.0).abs() < 1e-12);
                assert!((variance - 6.0).abs() < 1e-12);
            }
            other => panic!("expected Gaussian, got {other}"),
        }
    }

    #[test]
    fn gaussian_sum_clt_on_discrete() {
        // Sum of 30 fair coins ~ N(15, 7.5); check the cdf at the mean.
        let coin = Pdf1::discrete(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap();
        let pdfs: Vec<Pdf1> = (0..30).map(|_| coin.clone()).collect();
        let s = sum_gaussian_approx(&pdfs).unwrap();
        assert!((s.expected_value().unwrap() - 15.0).abs() < 1e-9);
        assert!((s.cumulative(15.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sum_carries_existence_mass() {
        let part = Pdf1::discrete(vec![(1.0, 0.5)]).unwrap();
        let full = Pdf1::discrete(vec![(2.0, 1.0)]).unwrap();
        let s = sum_gaussian_approx(&[part, full]).unwrap();
        assert!((s.mass() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn grid_convolution_of_gaussians() {
        // N(1, 2) + N(3, 4) = N(4, 6): compare cdfs.
        let a = Pdf1::gaussian(1.0, 2.0).unwrap();
        let b = Pdf1::gaussian(3.0, 4.0).unwrap();
        let conv = convolve_grid(&a, &b, 128).unwrap();
        let exact = Symbolic::gaussian(4.0, 6.0).unwrap();
        assert!((conv.mass() - 1.0).abs() < 1e-6);
        for &x in &[0.0, 2.0, 4.0, 6.0, 8.0] {
            assert!(
                (conv.cumulative(x) - exact.cdf(x)).abs() < 0.02,
                "cdf at {x}: {} vs {}",
                conv.cumulative(x),
                exact.cdf(x)
            );
        }
    }

    #[test]
    fn grid_convolution_carries_partial_mass() {
        let a = Pdf1::discrete(vec![(0.0, 0.25), (1.0, 0.25)]).unwrap();
        let b = Pdf1::uniform(0.0, 1.0).unwrap();
        let conv = convolve_grid(&a, &b, 64).unwrap();
        assert!((conv.mass() - 0.5).abs() < 1e-9, "product of masses");
        assert!(convolve_grid(&Pdf1::Discrete(DiscretePdf::vacuous()), &b, 8).is_err());
    }

    #[test]
    fn cdf_distance_zero_for_identical() {
        let g = Pdf1::gaussian(5.0, 2.0).unwrap();
        assert!(cdf_distance(&g, &g.clone(), 100) < 1e-15);
        let h = Pdf1::Histogram(g.to_histogram(256).unwrap());
        assert!(cdf_distance(&g, &h, 200) < 0.01);
    }

    #[test]
    fn truncated_gaussian_mean_shifts_upward() {
        // Truncating N(0,1) to [0, inf) gives mean phi(0)/ (1 - Phi(0)) ≈ 0.7979.
        let m = gaussian_truncated_mean(0.0, 1.0, &Interval::at_least(0.0));
        assert!((m - (2.0 / std::f64::consts::PI).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn approximate_both_produces_equal_mass() {
        let g = Pdf1::gaussian(50.0, 4.0).unwrap();
        let (h, d) = approximate_both(&g, 10).unwrap();
        assert!((h.mass() - d.mass()).abs() < 1e-9);
        assert!((h.mass() - 1.0).abs() < 1e-6);
    }
}
