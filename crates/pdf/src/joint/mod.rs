//! Joint (multi-attribute) probability distributions.
//!
//! A [`JointPdf`] represents the distribution of one *dependency set*: the
//! jointly-distributed uncertain attributes of a tuple (paper Section II-A).
//! Internally it is a product of **independent blocks**; each block is a
//! correlated unit — a single 1-D pdf, an explicit joint pmf over points, or
//! a k-dimensional grid. Independent attributes each live in their own
//! block; a selection predicate spanning blocks merges them into one
//! correlated block (the materialization the paper's `product` + `floor`
//! pipeline performs).

mod grid;
mod points;

pub use grid::{GridDim, JointGrid};
pub use points::JointDiscrete;

use crate::discrete::DiscretePdf;
use crate::error::{PdfError, Result};
use crate::histogram::Histogram;
use crate::interval::{Interval, RegionSet};
use crate::pdf1d::{Pdf1, VACUOUS_EPS};
use serde::{Deserialize, Serialize};

/// Default grid resolution (bins per dimension) used when a continuous
/// dependency set must be materialized onto a grid.
pub const DEFAULT_GRID_BINS: usize = 64;

/// A correlated unit inside a [`JointPdf`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Block {
    /// A single-attribute pdf.
    Uni(Pdf1),
    /// A correlated joint pmf over explicit points.
    Points(JointDiscrete),
    /// A correlated continuous grid.
    Grid(JointGrid),
}

impl Block {
    fn arity(&self) -> usize {
        match self {
            Block::Uni(_) => 1,
            Block::Points(j) => j.arity(),
            Block::Grid(g) => g.arity(),
        }
    }

    fn mass(&self) -> f64 {
        match self {
            Block::Uni(p) => p.mass(),
            Block::Points(j) => j.mass(),
            Block::Grid(g) => g.mass(),
        }
    }

    fn density(&self, point: &[f64]) -> f64 {
        match self {
            Block::Uni(p) => p.density(point[0]),
            Block::Points(j) => j.prob_at(point),
            Block::Grid(g) => g.density(point),
        }
    }

    fn scale(&self, factor: f64) -> Block {
        match self {
            Block::Uni(p) => Block::Uni(p.scale(factor)),
            Block::Points(j) => Block::Points(j.scale(factor)),
            Block::Grid(g) => Block::Grid(g.scale(factor)),
        }
    }

    fn box_prob(&self, bounds: &[Interval]) -> f64 {
        match self {
            Block::Uni(p) => p.range_prob(&bounds[0]),
            Block::Points(j) => j.box_prob(bounds),
            Block::Grid(g) => g.box_prob(bounds),
        }
    }

    fn expected(&self, dim: usize) -> Option<f64> {
        match self {
            Block::Uni(p) => p.expected_value(),
            Block::Points(j) => j.expected(dim),
            Block::Grid(g) => g.expected(dim),
        }
    }

    /// Whether every dimension of the block has a finite, enumerable
    /// discrete support.
    fn is_enumerable(&self) -> bool {
        match self {
            Block::Uni(p) => p.enumerate().is_ok(),
            Block::Points(_) => true,
            Block::Grid(_) => false,
        }
    }

    /// Enumerates the block as an explicit joint pmf (discrete blocks only).
    fn enumerate(&self) -> Result<JointDiscrete> {
        match self {
            Block::Uni(p) => {
                let d = p.enumerate()?;
                JointDiscrete::from_points(
                    1,
                    d.points().iter().map(|&(v, p)| (vec![v], p)).collect(),
                )
            }
            Block::Points(j) => Ok(j.clone()),
            Block::Grid(_) => Err(PdfError::IncompatibleOperands(
                "cannot enumerate a continuous grid block".into(),
            )),
        }
    }

    /// Materializes the block onto a grid with `bins` cells per dimension.
    fn to_grid(&self, bins: usize) -> Result<JointGrid> {
        match self {
            Block::Uni(p) => {
                let h = p
                    .to_histogram(bins)
                    .ok_or_else(|| PdfError::VacuousResult("cannot grid a vacuous pdf".into()))?;
                let dim = GridDim::over(h.lo(), h.hi(), h.bins())?;
                JointGrid::from_masses(vec![dim], h.masses().to_vec())
            }
            Block::Points(j) => {
                // Quantize points onto a grid covering the support.
                let arity = j.arity();
                let mut lo = vec![f64::INFINITY; arity];
                let mut hi = vec![f64::NEG_INFINITY; arity];
                for (v, _) in j.points() {
                    for d in 0..arity {
                        lo[d] = lo[d].min(v[d]);
                        hi[d] = hi[d].max(v[d]);
                    }
                }
                let dims: Vec<GridDim> = (0..arity)
                    .map(|d| {
                        let (l, h) =
                            if lo[d] < hi[d] { (lo[d], hi[d]) } else { (lo[d] - 0.5, hi[d] + 0.5) };
                        // Widen slightly so max points land inside.
                        let pad = (h - l) * 1e-9;
                        GridDim::over(l - pad, h + pad, bins)
                    })
                    .collect::<Result<_>>()?;
                let cells: usize = dims.iter().map(|d| d.bins).product();
                let mut masses = vec![0.0; cells];
                for (v, p) in j.points() {
                    let mut c = 0usize;
                    for d in 0..arity {
                        c = c * dims[d].bins
                            + dims[d].cell_of(v[d]).expect("support point inside grid");
                    }
                    masses[c] += p;
                }
                JointGrid::from_masses(dims, masses)
            }
            Block::Grid(g) => Ok(g.clone()),
        }
    }
}

/// A joint distribution over an ordered list of dimensions, stored as a
/// product of independent correlated blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointPdf {
    blocks: Vec<Block>,
}

impl JointPdf {
    /// A joint with a single 1-D attribute.
    pub fn from_pdf1(p: Pdf1) -> Self {
        JointPdf { blocks: vec![Block::Uni(p)] }
    }

    /// A joint from an explicit correlated pmf.
    pub fn from_points(j: JointDiscrete) -> Self {
        JointPdf { blocks: vec![Block::Points(j)] }
    }

    /// A joint from a correlated continuous grid.
    pub fn from_grid(g: JointGrid) -> Self {
        JointPdf { blocks: vec![Block::Grid(g)] }
    }

    /// A joint of independent 1-D attributes (one block each).
    pub fn independent(pdfs: Vec<Pdf1>) -> Result<Self> {
        if pdfs.is_empty() {
            return Err(PdfError::InvalidParameter("joint needs >= 1 dimension".into()));
        }
        Ok(JointPdf { blocks: pdfs.into_iter().map(Block::Uni).collect() })
    }

    /// The internal blocks (mainly for inspection and size accounting).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total number of dimensions.
    pub fn arity(&self) -> usize {
        self.blocks.iter().map(Block::arity).sum()
    }

    /// Total probability mass = product of block masses (< 1 when any floor
    /// has removed possible worlds — the tuple-existence probability).
    pub fn mass(&self) -> f64 {
        self.blocks.iter().map(Block::mass).product()
    }

    /// Whether effectively no possible world retains this tuple.
    pub fn is_vacuous(&self) -> bool {
        self.mass() < VACUOUS_EPS
    }

    /// Joint density at `point` (dimension order = block order).
    pub fn density(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.arity(), "point dimensionality mismatch");
        let mut acc = 1.0;
        let mut off = 0;
        for b in &self.blocks {
            let k = b.arity();
            acc *= b.density(&point[off..off + k]);
            if acc == 0.0 {
                return 0.0;
            }
            off += k;
        }
        acc
    }

    /// Maps a global dimension index to `(block index, offset in block)`.
    fn locate(&self, dim: usize) -> (usize, usize) {
        let mut off = 0;
        for (i, b) in self.blocks.iter().enumerate() {
            let k = b.arity();
            if dim < off + k {
                return (i, dim - off);
            }
            off += k;
        }
        panic!("dimension {dim} out of range for arity {}", self.arity());
    }

    /// Independent product of two joints (paper `product`, historically
    /// independent case): concatenates dimensions.
    pub fn product(&self, other: &JointPdf) -> JointPdf {
        let mut blocks = self.blocks.clone();
        blocks.extend_from_slice(&other.blocks);
        JointPdf { blocks }
    }

    /// Axis-aligned floor on one dimension — stays within the block
    /// representation (symbolic floors stay symbolic).
    pub fn floor_axis(&self, dim: usize, region: &RegionSet) -> JointPdf {
        let (bi, off) = self.locate(dim);
        let mut blocks = self.blocks.clone();
        blocks[bi] = match &self.blocks[bi] {
            Block::Uni(p) => Block::Uni(p.floor_region(region)),
            Block::Points(j) => Block::Points(j.filter(|v| !region.contains(v[off]))),
            Block::Grid(g) => Block::Grid(g.floor_axis(off, region)),
        };
        JointPdf { blocks }
    }

    /// General floor over an arbitrary predicate on the listed dimensions
    /// (global indices, in the order the predicate expects them).
    ///
    /// Blocks touched by `dims` are merged into a single correlated block
    /// first: exactly (joint pmf) when all are enumerable, else onto a grid
    /// with `resolution` bins per dimension. This implements the paper's
    /// selection Case 2(b): `product` over the contributing dependency sets
    /// followed by `floor` where the predicate is false.
    pub fn floor_predicate(
        &self,
        dims: &[usize],
        resolution: usize,
        mut pred: impl FnMut(&[f64]) -> bool,
    ) -> Result<JointPdf> {
        if dims.is_empty() {
            return Ok(self.clone());
        }
        let merged = self.merge_dims(dims, resolution)?;
        // After merging, the touched dims live in one block, but merging
        // non-adjacent blocks reorders global dimensions; translate each
        // original index through the post-merge order before locating it.
        let order = self.dim_order_after_merge(dims);
        let positions: Vec<(usize, usize)> = dims
            .iter()
            .map(|&d| {
                let new_idx = order
                    .iter()
                    .position(|&orig| orig == d)
                    .expect("dim present in post-merge order");
                merged.locate(new_idx)
            })
            .collect();
        let bi = positions[0].0;
        debug_assert!(positions.iter().all(|&(b, _)| b == bi));
        let offsets: Vec<usize> = positions.iter().map(|&(_, o)| o).collect();
        let mut blocks = merged.blocks.clone();
        let mut args = vec![0.0; offsets.len()];
        blocks[bi] = match &merged.blocks[bi] {
            Block::Uni(p) => {
                // Single dim: evaluate by filtering (exact for discrete,
                // region-free fallback via enumerate/histogram otherwise).
                match p.enumerate() {
                    Ok(d) => Block::Uni(Pdf1::Discrete(d.filter(|v| pred(&[v])))),
                    Err(_) => {
                        let g = Block::Uni(p.clone()).to_grid(resolution)?;
                        Block::Grid(g.floor_predicate(|pt| pred(pt)))
                    }
                }
            }
            Block::Points(j) => Block::Points(j.filter(|v| {
                for (a, &o) in args.iter_mut().zip(&offsets) {
                    *a = v[o];
                }
                pred(&args)
            })),
            Block::Grid(g) => Block::Grid(g.floor_predicate(|v| {
                for (a, &o) in args.iter_mut().zip(&offsets) {
                    *a = v[o];
                }
                pred(&args)
            })),
        };
        Ok(JointPdf { blocks })
    }

    /// Merges all blocks containing any of `dims` into a single correlated
    /// block, preserving the global dimension order.
    ///
    /// Exact (joint pmf) when every touched block is enumerable; otherwise
    /// materialized onto a grid with `resolution` bins per dimension.
    pub fn merge_dims(&self, dims: &[usize], resolution: usize) -> Result<JointPdf> {
        let touched: Vec<usize> = {
            let mut v: Vec<usize> = dims.iter().map(|&d| self.locate(d).0).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if touched.len() <= 1 {
            return Ok(self.clone());
        }
        // Merge into the position of the first touched block; the merged
        // block's dimensions are ordered by original global order, so we
        // must place it so that global ordering is preserved. We rebuild the
        // block list with the merged block at the first touched position and
        // record the new dimension order via permutation of the merged part.
        let all_enumerable = touched.iter().all(|&i| self.blocks[i].is_enumerable());
        let merged_block = if all_enumerable {
            let mut acc: Option<JointDiscrete> = None;
            for &i in &touched {
                let j = self.blocks[i].enumerate()?;
                acc = Some(match acc {
                    None => j,
                    Some(a) => a.product(&j),
                });
            }
            Block::Points(acc.expect("non-empty merge set"))
        } else {
            let mut acc: Option<JointGrid> = None;
            for &i in &touched {
                let g = self.blocks[i].to_grid(resolution)?;
                acc = Some(match acc {
                    None => g,
                    Some(a) => a.product(&g),
                });
            }
            Block::Grid(acc.expect("non-empty merge set"))
        };
        let mut blocks = Vec::with_capacity(self.blocks.len() - touched.len() + 1);
        for (i, b) in self.blocks.iter().enumerate() {
            if i == touched[0] {
                blocks.push(merged_block.clone());
            } else if !touched.contains(&i) {
                blocks.push(b.clone());
            }
        }
        // NOTE: dimension order changes when merged blocks were not
        // adjacent: the merged block occupies the first touched slot and
        // carries all touched dims in their original relative order. Global
        // order is preserved **within** the merged block, but dims of
        // untouched blocks that sat between touched blocks now come after
        // the merged block. Callers that care about global order must use
        // `dim_order_after_merge` to build the permutation.
        Ok(JointPdf { blocks })
    }

    /// Returns, for a merge over `dims`, the new global order of the
    /// original dimensions: `result[i]` is the original index of the
    /// dimension now at position `i`.
    pub fn dim_order_after_merge(&self, dims: &[usize]) -> Vec<usize> {
        let touched: Vec<usize> = {
            let mut v: Vec<usize> = dims.iter().map(|&d| self.locate(d).0).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if touched.len() <= 1 {
            return (0..self.arity()).collect();
        }
        let mut order = Vec::with_capacity(self.arity());
        let mut block_start = vec![0usize; self.blocks.len()];
        let mut off = 0;
        for (i, b) in self.blocks.iter().enumerate() {
            block_start[i] = off;
            off += b.arity();
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if i == touched[0] {
                for &t in &touched {
                    let s = block_start[t];
                    order.extend(s..s + self.blocks[t].arity());
                }
            } else if !touched.contains(&i) {
                let s = block_start[i];
                order.extend(s..s + b.arity());
            }
        }
        order
    }

    /// Marginalizes onto the given (global) dimensions, in the given order.
    /// The mass of fully-integrated-out blocks (their existence
    /// probability) is folded into the result, so total mass is preserved.
    pub fn marginalize(&self, keep: &[usize]) -> Result<JointPdf> {
        if keep.is_empty() {
            return Err(PdfError::IncompatibleOperands(
                "marginalize requires >= 1 kept dimension".into(),
            ));
        }
        // Identity marginalization is a clone.
        if keep.len() == self.arity() && keep.iter().enumerate().all(|(i, &d)| i == d) {
            return Ok(self.clone());
        }
        // Group kept dims by block, preserving requested order per block.
        let located: Vec<(usize, usize)> = keep.iter().map(|&d| self.locate(d)).collect();
        let mut new_blocks: Vec<Block> = Vec::new();
        let mut dropped_mass = 1.0;
        for (bi, b) in self.blocks.iter().enumerate() {
            let kept_offsets: Vec<usize> =
                located.iter().filter(|&&(blk, _)| blk == bi).map(|&(_, o)| o).collect();
            if kept_offsets.is_empty() {
                dropped_mass *= b.mass();
                continue;
            }
            let nb = match b {
                Block::Uni(p) => Block::Uni(p.clone()),
                Block::Points(j) => Block::Points(j.marginalize(&kept_offsets)?),
                Block::Grid(g) => Block::Grid(g.marginalize(&kept_offsets)?),
            };
            new_blocks.push(nb);
        }
        if new_blocks.is_empty() {
            return Err(PdfError::IncompatibleOperands("all dimensions were dropped".into()));
        }
        if dropped_mass < 1.0 {
            new_blocks[0] = new_blocks[0].scale(dropped_mass.max(0.0));
        }
        Ok(JointPdf { blocks: new_blocks })
    }

    /// Extracts the 1-D marginal of a single dimension as a [`Pdf1`],
    /// carrying the full joint existence mass.
    pub fn marginal1(&self, dim: usize) -> Result<Pdf1> {
        let m = self.marginalize(&[dim])?;
        debug_assert_eq!(m.arity(), 1);
        match &m.blocks[0] {
            Block::Uni(p) => Ok(p.clone()),
            Block::Points(j) => {
                let pts = j.points().iter().map(|(v, p)| (v[0], *p)).collect();
                Ok(Pdf1::Discrete(DiscretePdf::from_points(pts)?))
            }
            Block::Grid(g) => {
                debug_assert_eq!(g.arity(), 1);
                let d = g.dims()[0];
                Ok(Pdf1::Histogram(Histogram::from_masses(d.lo, d.width, g.masses().to_vec())?))
            }
        }
    }

    /// Probability that each listed dimension lies within its interval
    /// (and the tuple exists). Unlisted dimensions are unconstrained.
    pub fn box_prob(&self, constraints: &[(usize, Interval)]) -> f64 {
        let mut per_block: Vec<Vec<Interval>> =
            self.blocks.iter().map(|b| vec![Interval::all(); b.arity()]).collect();
        for &(d, iv) in constraints {
            let (bi, off) = self.locate(d);
            per_block[bi][off] = match per_block[bi][off].intersect(&iv) {
                Some(x) => x,
                None => return 0.0,
            };
        }
        self.blocks.iter().zip(&per_block).map(|(b, bounds)| b.box_prob(bounds)).product()
    }

    /// Expected value of one dimension, conditioned on existence.
    pub fn expected(&self, dim: usize) -> Option<f64> {
        if self.is_vacuous() {
            return None;
        }
        let (bi, off) = self.locate(dim);
        self.blocks[bi].expected(off)
    }

    /// Rescales the joint mass by `factor` in `[0, 1]`.
    pub fn scale(&self, factor: f64) -> JointPdf {
        let mut blocks = self.blocks.clone();
        if let Some(b) = blocks.first_mut() {
            *b = b.scale(factor);
        }
        JointPdf { blocks }
    }

    /// Enumerates the whole joint as an explicit pmf (all-discrete joints
    /// only) — the entry point for the possible-worlds reference engine.
    pub fn enumerate(&self) -> Result<JointDiscrete> {
        let mut acc: Option<JointDiscrete> = None;
        for b in &self.blocks {
            let j = b.enumerate()?;
            acc = Some(match acc {
                None => j,
                Some(a) => a.product(&j),
            });
        }
        Ok(acc.expect("joint has >= 1 block"))
    }

    /// Serialized-size proxy: total `f64` parameters across blocks.
    pub fn param_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match b {
                Block::Uni(p) => p.param_count(),
                Block::Points(j) => j.len() * (j.arity() + 1),
                Block::Grid(g) => g.masses().len() + 3 * g.arity(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_tuple1() -> JointPdf {
        JointPdf::independent(vec![
            Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap(),
            Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn independent_mass_multiplies() {
        let j = table2_tuple1();
        assert_eq!(j.arity(), 2);
        assert!((j.mass() - 1.0).abs() < 1e-12);
        let floored = j.floor_axis(0, &RegionSet::from_interval(Interval::at_most(0.5)));
        // a = 0 removed: block mass .9, total .9
        assert!((floored.mass() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn density_multiplies_blocks() {
        let j = table2_tuple1();
        assert!((j.density(&[1.0, 2.0]) - 0.36).abs() < 1e-12);
        assert!((j.density(&[0.0, 1.0]) - 0.06).abs() < 1e-12);
        assert_eq!(j.density(&[0.5, 1.0]), 0.0);
    }

    #[test]
    fn floor_predicate_reproduces_paper_selection() {
        // sigma_{a<b} on Table II tuple 1 (Section III-C).
        let j = table2_tuple1();
        let sel = j.floor_predicate(&[0, 1], DEFAULT_GRID_BINS, |v| v[0] < v[1]).unwrap();
        assert!((sel.mass() - 0.46).abs() < 1e-12);
        assert!((sel.density(&[0.0, 1.0]) - 0.06).abs() < 1e-12);
        assert!((sel.density(&[0.0, 2.0]) - 0.04).abs() < 1e-12);
        assert!((sel.density(&[1.0, 2.0]) - 0.36).abs() < 1e-12);
        assert_eq!(sel.density(&[1.0, 1.0]), 0.0);
        // Blocks were merged into one correlated unit.
        assert_eq!(sel.blocks().len(), 1);
    }

    #[test]
    fn floor_predicate_continuous_halves_uniform() {
        let j = JointPdf::independent(vec![
            Pdf1::uniform(0.0, 1.0).unwrap(),
            Pdf1::uniform(0.0, 1.0).unwrap(),
        ])
        .unwrap();
        let sel = j.floor_predicate(&[0, 1], 32, |v| v[0] < v[1]).unwrap();
        assert!((sel.mass() - 0.5).abs() < 0.02, "mass = {}", sel.mass());
    }

    #[test]
    fn marginalize_preserves_existence_mass() {
        let j = table2_tuple1();
        let sel = j.floor_predicate(&[0, 1], DEFAULT_GRID_BINS, |v| v[0] < v[1]).unwrap();
        let ma = sel.marginalize(&[0]).unwrap();
        assert!((ma.mass() - 0.46).abs() < 1e-12, "projection keeps existence probability");
        let p = ma.marginal1(0).unwrap_or_else(|_| unreachable!());
        assert!((p.density(0.0) - 0.10).abs() < 1e-12);
        assert!((p.density(1.0) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn marginalize_folds_dropped_block_mass() {
        // Two independent blocks; floor block 1 to mass .5, then marginalize
        // onto block 0 only: existence mass .5 must survive.
        let j = JointPdf::independent(vec![
            Pdf1::discrete(vec![(1.0, 1.0)]).unwrap(),
            Pdf1::discrete(vec![(7.0, 0.5), (8.0, 0.5)]).unwrap(),
        ])
        .unwrap();
        let f = j.floor_axis(1, &RegionSet::from_interval(Interval::point(8.0)));
        let m = f.marginalize(&[0]).unwrap();
        assert!((m.mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn box_prob_across_blocks() {
        let j = table2_tuple1();
        let p = j.box_prob(&[(0, Interval::new(1.0, 1.0)), (1, Interval::new(2.0, 2.0))]);
        assert!((p - 0.36).abs() < 1e-12);
        let p = j.box_prob(&[(0, Interval::new(1.0, 1.0))]);
        assert!((p - 0.9).abs() < 1e-12);
        // Contradictory constraints on the same dim.
        let p = j.box_prob(&[(0, Interval::new(0.0, 0.0)), (0, Interval::new(1.0, 1.0))]);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn product_concatenates() {
        let a = JointPdf::from_pdf1(Pdf1::certain(7.0));
        let b = JointPdf::from_pdf1(Pdf1::certain(3.0));
        let j = a.product(&b);
        assert_eq!(j.arity(), 2);
        assert!((j.density(&[7.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumerate_requires_discrete() {
        assert!(table2_tuple1().enumerate().is_ok());
        let cont = JointPdf::from_pdf1(Pdf1::gaussian(0.0, 1.0).unwrap());
        assert!(cont.enumerate().is_err());
    }

    #[test]
    fn expected_per_dimension() {
        let j = table2_tuple1();
        assert!((j.expected(0).unwrap() - 0.9).abs() < 1e-12);
        assert!((j.expected(1).unwrap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn merge_dims_with_gap_reorders_known_way() {
        // blocks: [a][b][c]; merge a and c => merged block at slot 0 with
        // dims (a, c), then b.
        let j = JointPdf::independent(vec![
            Pdf1::discrete(vec![(1.0, 1.0)]).unwrap(),
            Pdf1::discrete(vec![(2.0, 1.0)]).unwrap(),
            Pdf1::discrete(vec![(3.0, 1.0)]).unwrap(),
        ])
        .unwrap();
        let order = j.dim_order_after_merge(&[0, 2]);
        assert_eq!(order, vec![0, 2, 1]);
        let m = j.merge_dims(&[0, 2], 8).unwrap();
        assert_eq!(m.blocks().len(), 2);
        // New dim order: a, c, b.
        assert!((m.density(&[1.0, 3.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_symbolic_and_discrete_floor() {
        // Continuous x ~ U(0, 10), discrete threshold b in {2, 8} each .5;
        // predicate x < b keeps .5*(0.2) + .5*(0.8) = 0.5 of the mass.
        let j = JointPdf::independent(vec![
            Pdf1::uniform(0.0, 10.0).unwrap(),
            Pdf1::discrete(vec![(2.0, 0.5), (8.0, 0.5)]).unwrap(),
        ])
        .unwrap();
        let sel = j.floor_predicate(&[0, 1], 64, |v| v[0] < v[1]).unwrap();
        assert!((sel.mass() - 0.5).abs() < 0.05, "mass = {}", sel.mass());
    }

    #[test]
    fn scale_applies_once() {
        let j = table2_tuple1().scale(0.5);
        assert!((j.mass() - 0.5).abs() < 1e-12);
    }
}
