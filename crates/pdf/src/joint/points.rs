//! Correlated joint *discrete* distributions: explicit probability mass on a
//! finite set of k-dimensional points.
//!
//! This is the exact representation behind the paper's worked examples
//! (Table II/III, the `a < b` selection of Section III-C, and the history
//! example of Figure 3), and the representation the possible-worlds
//! reference engine checks operators against.

use crate::error::{PdfError, Result};
use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// A joint pmf over `arity`-dimensional real points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointDiscrete {
    arity: usize,
    /// Lexicographically sorted, deduplicated `(point, probability)` pairs.
    points: Vec<(Vec<f64>, f64)>,
}

fn cmp_points(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y).expect("finite coordinates") {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

impl JointDiscrete {
    /// Builds a joint pmf; points must all have dimension `arity`, be
    /// finite, and carry non-negative mass totaling at most `1 + 1e-9`.
    /// Duplicates are merged; zero-mass points dropped.
    pub fn from_points(arity: usize, mut points: Vec<(Vec<f64>, f64)>) -> Result<Self> {
        if arity == 0 {
            return Err(PdfError::InvalidParameter("joint arity must be >= 1".into()));
        }
        for (v, p) in &points {
            if v.len() != arity {
                return Err(PdfError::InvalidParameter(format!(
                    "point has dimension {}, expected {arity}",
                    v.len()
                )));
            }
            if v.iter().any(|x| !x.is_finite()) || !p.is_finite() || *p < 0.0 {
                return Err(PdfError::InvalidParameter(
                    "joint points must be finite with mass >= 0".into(),
                ));
            }
        }
        points.sort_by(|a, b| cmp_points(&a.0, &b.0));
        let mut merged: Vec<(Vec<f64>, f64)> = Vec::with_capacity(points.len());
        for (v, p) in points {
            if p == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if cmp_points(&last.0, &v) == std::cmp::Ordering::Equal => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        let total: f64 = merged.iter().map(|(_, p)| p).sum();
        if total > 1.0 + 1e-9 {
            return Err(PdfError::InvalidParameter(format!("total joint mass {total} exceeds 1")));
        }
        Ok(JointDiscrete { arity, points: merged })
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The sorted `(point, probability)` pairs.
    pub fn points(&self) -> &[(Vec<f64>, f64)] {
        &self.points
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no support point remains.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total mass (< 1 for partial pdfs).
    pub fn mass(&self) -> f64 {
        self.points.iter().map(|(_, p)| p).sum()
    }

    /// Probability mass at exactly `point`.
    pub fn prob_at(&self, point: &[f64]) -> f64 {
        match self.points.binary_search_by(|(v, _)| cmp_points(v, point)) {
            Ok(i) => self.points[i].1,
            Err(_) => 0.0,
        }
    }

    /// Marginalizes onto the dimensions listed in `keep` (in the given
    /// order). Corresponds to the paper's `marginalize(f, A)`.
    pub fn marginalize(&self, keep: &[usize]) -> Result<JointDiscrete> {
        if keep.is_empty() || keep.iter().any(|&d| d >= self.arity) {
            return Err(PdfError::IncompatibleOperands(format!(
                "marginalize dims {keep:?} out of range for arity {}",
                self.arity
            )));
        }
        let projected = self
            .points
            .iter()
            .map(|(v, p)| (keep.iter().map(|&d| v[d]).collect::<Vec<_>>(), *p))
            .collect();
        JointDiscrete::from_points(keep.len(), projected)
    }

    /// Keeps only the points satisfying `pred` — the exact, general floor.
    pub fn filter(&self, mut pred: impl FnMut(&[f64]) -> bool) -> JointDiscrete {
        JointDiscrete {
            arity: self.arity,
            points: self.points.iter().filter(|(v, _)| pred(v)).cloned().collect(),
        }
    }

    /// Independent product: the cartesian joint over `self`'s dims followed
    /// by `other`'s dims.
    pub fn product(&self, other: &JointDiscrete) -> JointDiscrete {
        let mut points = Vec::with_capacity(self.points.len() * other.points.len());
        for (v1, p1) in &self.points {
            for (v2, p2) in &other.points {
                let mut v = Vec::with_capacity(self.arity + other.arity);
                v.extend_from_slice(v1);
                v.extend_from_slice(v2);
                points.push((v, p1 * p2));
            }
        }
        // Cartesian products of sorted inputs stay sorted and deduplicated.
        JointDiscrete { arity: self.arity + other.arity, points }
    }

    /// Probability that every dimension lies inside its box interval.
    pub fn box_prob(&self, bounds: &[Interval]) -> f64 {
        assert_eq!(bounds.len(), self.arity, "box dimensionality mismatch");
        self.points
            .iter()
            .filter(|(v, _)| v.iter().zip(bounds).all(|(x, iv)| iv.contains(*x)))
            .map(|(_, p)| p)
            .sum()
    }

    /// Expected value of dimension `dim`, conditioned on existence.
    pub fn expected(&self, dim: usize) -> Option<f64> {
        let mass = self.mass();
        if mass <= 0.0 || dim >= self.arity {
            return None;
        }
        Some(self.points.iter().map(|(v, p)| v[dim] * p).sum::<f64>() / mass)
    }

    /// Rescales all masses by `factor` in `[0, 1]`.
    pub fn scale(&self, factor: f64) -> JointDiscrete {
        debug_assert!((0.0..=1.0 + 1e-12).contains(&factor));
        JointDiscrete {
            arity: self.arity,
            points: self.points.iter().map(|(v, p)| (v.clone(), p * factor)).collect(),
        }
    }

    /// Reorders dimensions: output dim `i` is input dim `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> Result<JointDiscrete> {
        if perm.len() != self.arity {
            return Err(PdfError::IncompatibleOperands(format!(
                "permutation arity {} != {}",
                perm.len(),
                self.arity
            )));
        }
        let pts =
            self.points.iter().map(|(v, p)| (perm.iter().map(|&d| v[d]).collect(), *p)).collect();
        JointDiscrete::from_points(self.arity, pts)
    }
}

impl std::fmt::Display for JointDiscrete {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Discrete(")?;
        for (i, (v, p)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if v.len() == 1 {
                write!(f, "{}:{p}", v[0])?;
            } else {
                write!(f, "{{")?;
                for (j, x) in v.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}:{p}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_joint() -> JointDiscrete {
        // The Section III-C result: Discrete({0,1}:0.06, {0,2}:0.04, {1,2}:0.36)
        JointDiscrete::from_points(
            2,
            vec![(vec![0.0, 1.0], 0.06), (vec![0.0, 2.0], 0.04), (vec![1.0, 2.0], 0.36)],
        )
        .unwrap()
    }

    #[test]
    fn construction_sorts_merges_validates() {
        let j = JointDiscrete::from_points(
            2,
            vec![(vec![1.0, 0.0], 0.2), (vec![0.0, 1.0], 0.3), (vec![1.0, 0.0], 0.1)],
        )
        .unwrap();
        assert_eq!(j.len(), 2);
        assert!((j.prob_at(&[1.0, 0.0]) - 0.3).abs() < 1e-12);
        assert!(JointDiscrete::from_points(0, vec![]).is_err());
        assert!(JointDiscrete::from_points(2, vec![(vec![1.0], 0.5)]).is_err());
        assert!(JointDiscrete::from_points(1, vec![(vec![1.0], 1.5)]).is_err());
    }

    #[test]
    fn mass_is_partial() {
        let j = paper_joint();
        assert!((j.mass() - 0.46).abs() < 1e-12, "paper: tuple exists with 0.46");
    }

    #[test]
    fn marginalize_matches_hand_computation() {
        let j = paper_joint();
        let a = j.marginalize(&[0]).unwrap();
        assert!((a.prob_at(&[0.0]) - 0.10).abs() < 1e-12);
        assert!((a.prob_at(&[1.0]) - 0.36).abs() < 1e-12);
        let b = j.marginalize(&[1]).unwrap();
        assert!((b.prob_at(&[1.0]) - 0.06).abs() < 1e-12);
        assert!((b.prob_at(&[2.0]) - 0.40).abs() < 1e-12);
        assert!(j.marginalize(&[2]).is_err());
        assert!(j.marginalize(&[]).is_err());
    }

    #[test]
    fn product_is_cartesian_and_sorted() {
        let a = JointDiscrete::from_points(1, vec![(vec![0.0], 0.1), (vec![1.0], 0.9)]).unwrap();
        let b = JointDiscrete::from_points(1, vec![(vec![1.0], 0.6), (vec![2.0], 0.4)]).unwrap();
        let j = a.product(&b);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.len(), 4);
        assert!((j.prob_at(&[0.0, 1.0]) - 0.06).abs() < 1e-12);
        assert!((j.prob_at(&[1.0, 2.0]) - 0.36).abs() < 1e-12);
        assert!((j.mass() - 1.0).abs() < 1e-12);
        // Sorted invariant holds (prob_at relies on binary search).
        let again = JointDiscrete::from_points(2, j.points().to_vec()).unwrap();
        assert_eq!(again, j);
    }

    #[test]
    fn filter_reproduces_paper_selection() {
        // product of Table II tuple-1 pdfs filtered by a < b
        let a = JointDiscrete::from_points(1, vec![(vec![0.0], 0.1), (vec![1.0], 0.9)]).unwrap();
        let b = JointDiscrete::from_points(1, vec![(vec![1.0], 0.6), (vec![2.0], 0.4)]).unwrap();
        let sel = a.product(&b).filter(|v| v[0] < v[1]);
        let want = paper_joint();
        assert_eq!(sel.len(), want.len());
        for (v, p) in want.points() {
            assert!((sel.prob_at(v) - p).abs() < 1e-12, "point {v:?}");
        }
    }

    #[test]
    fn box_prob_counts_contained_points() {
        let j = paper_joint();
        let p = j.box_prob(&[Interval::new(0.0, 0.0), Interval::all()]);
        assert!((p - 0.10).abs() < 1e-12);
        let p = j.box_prob(&[Interval::all(), Interval::new(2.0, 2.0)]);
        assert!((p - 0.40).abs() < 1e-12);
    }

    #[test]
    fn expected_conditions_on_existence() {
        let j = paper_joint();
        // E[a | exists] = (0*0.1 + 1*0.36) / 0.46
        assert!((j.expected(0).unwrap() - 0.36 / 0.46).abs() < 1e-12);
        assert!(j.expected(5).is_none());
    }

    #[test]
    fn permute_swaps_dimensions() {
        let j = paper_joint();
        let p = j.permute(&[1, 0]).unwrap();
        assert!((p.prob_at(&[1.0, 0.0]) - 0.06).abs() < 1e-12);
        assert!((p.prob_at(&[2.0, 1.0]) - 0.36).abs() < 1e-12);
        assert!(j.permute(&[0]).is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(paper_joint().to_string(), "Discrete({0,1}:0.06, {0,2}:0.04, {1,2}:0.36)");
    }
}
