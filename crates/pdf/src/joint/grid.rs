//! Correlated joint *continuous* distributions on a k-dimensional
//! equi-width grid (a multi-dimensional histogram).
//!
//! Grids are the materialized form a continuous dependency set takes once a
//! non-axis-aligned selection predicate (e.g. `x < y`) correlates its
//! dimensions. Mass is stored per cell; density is uniform within a cell.

use crate::error::{PdfError, Result};
use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// One axis of a grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridDim {
    /// Lower edge of the first cell.
    pub lo: f64,
    /// Cell width (> 0).
    pub width: f64,
    /// Number of cells (>= 1).
    pub bins: usize,
}

impl GridDim {
    /// Builds an axis covering `[lo, hi]` with `bins` cells.
    pub fn over(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if lo >= hi || lo.is_nan() || hi.is_nan() || bins == 0 {
            return Err(PdfError::InvalidParameter(format!(
                "grid axis requires lo < hi and bins >= 1, got ([{lo},{hi}], {bins})"
            )));
        }
        Ok(GridDim { lo, width: (hi - lo) / bins as f64, bins })
    }

    /// Upper edge of the last cell.
    pub fn hi(&self) -> f64 {
        self.lo + self.width * self.bins as f64
    }

    /// Cell index containing `x`, or `None` if outside the axis range
    /// (the closed upper edge belongs to the last cell).
    pub fn cell_of(&self, x: f64) -> Option<usize> {
        if x < self.lo || x > self.hi() {
            return None;
        }
        Some((((x - self.lo) / self.width) as usize).min(self.bins - 1))
    }

    /// Midpoint of cell `i`.
    pub fn midpoint(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// The interval spanned by cell `i`.
    pub fn cell_interval(&self, i: usize) -> Interval {
        let lo = self.lo + i as f64 * self.width;
        Interval::new(lo, lo + self.width)
    }

    /// Fraction of cell `i`'s width that overlaps `iv` (in `[0, 1]`).
    pub fn overlap_fraction(&self, i: usize, iv: &Interval) -> f64 {
        match self.cell_interval(i).intersect(iv) {
            Some(x) => (x.length() / self.width).clamp(0.0, 1.0),
            None => 0.0,
        }
    }
}

/// Sub-samples per axis used to estimate the surviving fraction of a cell
/// under a general (non-axis-aligned) predicate floor.
const FLOOR_SUBSAMPLES: usize = 4;

/// A k-dimensional histogram: cell masses in row-major order
/// (last dimension fastest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointGrid {
    dims: Vec<GridDim>,
    masses: Vec<f64>,
}

impl JointGrid {
    /// Builds a grid from axes and row-major cell masses.
    pub fn from_masses(dims: Vec<GridDim>, masses: Vec<f64>) -> Result<Self> {
        if dims.is_empty() {
            return Err(PdfError::InvalidParameter("grid needs >= 1 dimension".into()));
        }
        let cells: usize = dims.iter().map(|d| d.bins).product();
        if masses.len() != cells {
            return Err(PdfError::InvalidParameter(format!(
                "expected {cells} cell masses, got {}",
                masses.len()
            )));
        }
        let mut total = 0.0;
        for &m in &masses {
            if !m.is_finite() || m < 0.0 {
                return Err(PdfError::InvalidParameter(format!(
                    "cell masses must be finite and >= 0, got {m}"
                )));
            }
            total += m;
        }
        if total > 1.0 + 1e-6 {
            return Err(PdfError::InvalidParameter(format!("total grid mass {total} exceeds 1")));
        }
        Ok(JointGrid { dims, masses })
    }

    /// Builds a grid by evaluating a joint density at cell midpoints and
    /// normalizing to `target_mass`. Used to materialize product-form
    /// continuous pdfs.
    pub fn from_density(
        dims: Vec<GridDim>,
        target_mass: f64,
        density: impl Fn(&[f64]) -> f64,
    ) -> Result<Self> {
        let cells: usize = dims.iter().map(|d| d.bins).product();
        let mut masses = vec![0.0; cells];
        let mut point = vec![0.0; dims.len()];
        let mut idx = vec![0usize; dims.len()];
        let mut total = 0.0;
        for (c, m) in masses.iter_mut().enumerate() {
            decode_index(c, &dims, &mut idx);
            for (d, &i) in idx.iter().enumerate() {
                point[d] = dims[d].midpoint(i);
            }
            let vol: f64 = dims.iter().map(|d| d.width).product();
            *m = density(&point).max(0.0) * vol;
            total += *m;
        }
        if total > 0.0 && target_mass > 0.0 {
            let k = target_mass / total;
            for m in &mut masses {
                *m *= k;
            }
        }
        JointGrid::from_masses(dims, masses)
    }

    /// The grid axes.
    pub fn dims(&self) -> &[GridDim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Row-major cell masses.
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Total mass.
    pub fn mass(&self) -> f64 {
        self.masses.iter().sum()
    }

    /// Density at `point` (uniform within a cell; zero outside the grid).
    pub fn density(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.arity(), "point dimensionality mismatch");
        let mut cell = 0usize;
        for (d, &x) in point.iter().enumerate() {
            match self.dims[d].cell_of(x) {
                Some(i) => cell = cell * self.dims[d].bins + i,
                None => return 0.0,
            }
        }
        let vol: f64 = self.dims.iter().map(|d| d.width).product();
        self.masses[cell] / vol
    }

    /// Marginalizes onto the dimensions listed in `keep` (in order).
    pub fn marginalize(&self, keep: &[usize]) -> Result<JointGrid> {
        if keep.is_empty() || keep.iter().any(|&d| d >= self.arity()) {
            return Err(PdfError::IncompatibleOperands(format!(
                "marginalize dims {keep:?} out of range for arity {}",
                self.arity()
            )));
        }
        let new_dims: Vec<GridDim> = keep.iter().map(|&d| self.dims[d]).collect();
        let cells: usize = new_dims.iter().map(|d| d.bins).product();
        let mut out = vec![0.0; cells];
        let mut idx = vec![0usize; self.arity()];
        for (c, &m) in self.masses.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            decode_index(c, &self.dims, &mut idx);
            let mut nc = 0usize;
            for (k, &d) in keep.iter().enumerate() {
                nc = nc * new_dims[k].bins + idx[d];
            }
            out[nc] += m;
        }
        JointGrid::from_masses(new_dims, out)
    }

    /// Axis-aligned floor: zeroes the part of each cell overlapping
    /// `region` on dimension `dim` (exact under uniform-within-cell).
    pub fn floor_axis(&self, dim: usize, region: &crate::interval::RegionSet) -> JointGrid {
        assert!(dim < self.arity());
        // Precompute kept fraction per cell index along `dim`.
        let axis = self.dims[dim];
        let kept: Vec<f64> = (0..axis.bins)
            .map(|i| {
                let mut removed = 0.0;
                for iv in region.intervals() {
                    removed += axis.overlap_fraction(i, iv);
                }
                (1.0 - removed).clamp(0.0, 1.0)
            })
            .collect();
        let mut masses = self.masses.clone();
        let mut idx = vec![0usize; self.arity()];
        for (c, m) in masses.iter_mut().enumerate() {
            if *m == 0.0 {
                continue;
            }
            decode_index(c, &self.dims, &mut idx);
            *m *= kept[idx[dim]];
        }
        JointGrid { dims: self.dims.clone(), masses }
    }

    /// General predicate floor: each cell keeps the fraction of
    /// `FLOOR_SUBSAMPLES^k` stratified sample points satisfying `pred`.
    /// Exact for predicates constant within cells; an approximation
    /// otherwise (resolution-controlled by the grid).
    pub fn floor_predicate(&self, mut pred: impl FnMut(&[f64]) -> bool) -> JointGrid {
        let k = self.arity();
        let s = if k <= 2 { FLOOR_SUBSAMPLES } else { 2 };
        let samples_per_cell = s.pow(k as u32);
        let mut masses = self.masses.clone();
        let mut idx = vec![0usize; k];
        let mut point = vec![0.0; k];
        let mut sub = vec![0usize; k];
        for (c, m) in masses.iter_mut().enumerate() {
            if *m == 0.0 {
                continue;
            }
            decode_index(c, &self.dims, &mut idx);
            let mut hit = 0usize;
            for sc in 0..samples_per_cell {
                let mut rem = sc;
                for d in (0..k).rev() {
                    sub[d] = rem % s;
                    rem /= s;
                }
                for d in 0..k {
                    let cell_lo = self.dims[d].lo + idx[d] as f64 * self.dims[d].width;
                    point[d] = cell_lo + (sub[d] as f64 + 0.5) / s as f64 * self.dims[d].width;
                }
                if pred(&point) {
                    hit += 1;
                }
            }
            *m *= hit as f64 / samples_per_cell as f64;
        }
        JointGrid { dims: self.dims.clone(), masses }
    }

    /// Independent product: grid over `self`'s dims then `other`'s dims.
    pub fn product(&self, other: &JointGrid) -> JointGrid {
        let mut dims = self.dims.clone();
        dims.extend_from_slice(&other.dims);
        let mut masses = Vec::with_capacity(self.masses.len() * other.masses.len());
        for &m1 in &self.masses {
            for &m2 in &other.masses {
                masses.push(m1 * m2);
            }
        }
        JointGrid { dims, masses }
    }

    /// Probability of the axis-aligned box, interpolating partial cells.
    pub fn box_prob(&self, bounds: &[Interval]) -> f64 {
        assert_eq!(bounds.len(), self.arity(), "box dimensionality mismatch");
        let mut total = 0.0;
        let mut idx = vec![0usize; self.arity()];
        for (c, &m) in self.masses.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            decode_index(c, &self.dims, &mut idx);
            let mut frac = 1.0;
            for (d, iv) in bounds.iter().enumerate() {
                frac *= self.dims[d].overlap_fraction(idx[d], iv);
                if frac == 0.0 {
                    break;
                }
            }
            total += m * frac;
        }
        total
    }

    /// Expected value of dimension `dim`, conditioned on existence,
    /// using cell midpoints.
    pub fn expected(&self, dim: usize) -> Option<f64> {
        if dim >= self.arity() {
            return None;
        }
        let mass = self.mass();
        if mass <= 0.0 {
            return None;
        }
        let mut num = 0.0;
        let mut idx = vec![0usize; self.arity()];
        for (c, &m) in self.masses.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            decode_index(c, &self.dims, &mut idx);
            num += m * self.dims[dim].midpoint(idx[dim]);
        }
        Some(num / mass)
    }

    /// Rescales all masses by `factor` in `[0, 1]`.
    pub fn scale(&self, factor: f64) -> JointGrid {
        debug_assert!((0.0..=1.0 + 1e-12).contains(&factor));
        JointGrid {
            dims: self.dims.clone(),
            masses: self.masses.iter().map(|m| m * factor).collect(),
        }
    }
}

/// Decodes a row-major cell index into per-dimension indices.
fn decode_index(mut c: usize, dims: &[GridDim], out: &mut [usize]) {
    for d in (0..dims.len()).rev() {
        out[d] = c % dims[d].bins;
        c /= dims[d].bins;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::RegionSet;

    fn grid_2x2() -> JointGrid {
        // x axis [0,2] 2 cells, y axis [0,2] 2 cells; masses row-major
        JointGrid::from_masses(
            vec![GridDim::over(0.0, 2.0, 2).unwrap(), GridDim::over(0.0, 2.0, 2).unwrap()],
            vec![0.1, 0.2, 0.3, 0.4],
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(GridDim::over(1.0, 1.0, 2).is_err());
        assert!(GridDim::over(0.0, 1.0, 0).is_err());
        assert!(JointGrid::from_masses(vec![], vec![]).is_err());
        assert!(
            JointGrid::from_masses(vec![GridDim::over(0.0, 1.0, 2).unwrap()], vec![0.5]).is_err()
        );
        assert!(JointGrid::from_masses(vec![GridDim::over(0.0, 1.0, 2).unwrap()], vec![0.9, 0.9])
            .is_err());
    }

    #[test]
    fn density_and_mass() {
        let g = grid_2x2();
        assert!((g.mass() - 1.0).abs() < 1e-12);
        // cell (0,0): mass .1 over unit volume => density .1
        assert!((g.density(&[0.5, 0.5]) - 0.1).abs() < 1e-12);
        assert!((g.density(&[1.5, 1.5]) - 0.4).abs() < 1e-12);
        assert_eq!(g.density(&[2.5, 0.5]), 0.0);
    }

    #[test]
    fn marginalize_sums_axes() {
        let g = grid_2x2();
        let mx = g.marginalize(&[0]).unwrap();
        assert!((mx.masses()[0] - 0.3).abs() < 1e-12);
        assert!((mx.masses()[1] - 0.7).abs() < 1e-12);
        let my = g.marginalize(&[1]).unwrap();
        assert!((my.masses()[0] - 0.4).abs() < 1e-12);
        assert!((my.masses()[1] - 0.6).abs() < 1e-12);
        assert!(g.marginalize(&[3]).is_err());
    }

    #[test]
    fn floor_axis_partial_cells() {
        let g = grid_2x2();
        // Remove y > 1.5: cell rows with y-index 1 keep half.
        let f = g.floor_axis(1, &RegionSet::from_interval(Interval::at_least(1.5)));
        assert!((f.mass() - (0.1 + 0.2 * 0.5 + 0.3 + 0.4 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn floor_predicate_diagonal() {
        // Uniform mass on [0,1]^2, predicate x < y keeps half the mass.
        let dims = vec![GridDim::over(0.0, 1.0, 16).unwrap(), GridDim::over(0.0, 1.0, 16).unwrap()];
        let uniform = JointGrid::from_masses(dims.clone(), vec![1.0 / 256.0; 256]).unwrap();
        let f = uniform.floor_predicate(|p| p[0] < p[1]);
        assert!((f.mass() - 0.5).abs() < 0.02, "mass = {}", f.mass());
    }

    #[test]
    fn product_concatenates_dims() {
        let a = JointGrid::from_masses(vec![GridDim::over(0.0, 1.0, 2).unwrap()], vec![0.5, 0.5])
            .unwrap();
        let b = JointGrid::from_masses(vec![GridDim::over(0.0, 1.0, 2).unwrap()], vec![0.25, 0.75])
            .unwrap();
        let p = a.product(&b);
        assert_eq!(p.arity(), 2);
        assert!((p.mass() - 1.0).abs() < 1e-12);
        assert!((p.masses()[1] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn box_prob_interpolates() {
        let g = grid_2x2();
        // Full box.
        assert!((g.box_prob(&[Interval::all(), Interval::all()]) - 1.0).abs() < 1e-12);
        // Left half of x: cells (0,*) fully => 0.3.
        assert!((g.box_prob(&[Interval::new(0.0, 1.0), Interval::all()]) - 0.3).abs() < 1e-12);
        // Partial: x in [0, 0.5] takes half of left cells.
        assert!((g.box_prob(&[Interval::new(0.0, 0.5), Interval::all()]) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn expected_uses_midpoints() {
        let g = grid_2x2();
        // E[x] = 0.3 * 0.5 + 0.7 * 1.5
        assert!((g.expected(0).unwrap() - (0.3 * 0.5 + 0.7 * 1.5)).abs() < 1e-12);
        assert!(g.expected(2).is_none());
    }

    #[test]
    fn from_density_normalizes() {
        let dims = vec![GridDim::over(0.0, 1.0, 8).unwrap()];
        let g = JointGrid::from_density(dims, 0.7, |_| 1.0).unwrap();
        assert!((g.mass() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn cell_of_edges() {
        let d = GridDim::over(0.0, 4.0, 4).unwrap();
        assert_eq!(d.cell_of(0.0), Some(0));
        assert_eq!(d.cell_of(4.0), Some(3), "closed upper edge");
        assert_eq!(d.cell_of(-0.01), None);
        assert_eq!(d.cell_of(4.01), None);
        assert_eq!(d.cell_of(1.0), Some(1));
    }
}
