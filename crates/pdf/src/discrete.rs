//! Discrete sampling pdfs — the paper's `Discrete` representation: an
//! explicit list of value–probability pairs.
//!
//! This is both (a) the native representation for genuinely discrete
//! uncertain attributes (data cleaning alternatives, categorical data) and
//! (b) the sampled approximation of a continuous pdf that tuple-uncertainty
//! models are forced into, whose accuracy/size trade-off Figure 4 measures.

use crate::error::{PdfError, Result};
use crate::interval::{Interval, RegionSet};
use serde::{Deserialize, Serialize};

/// A finite value–probability list, sorted by value, with total mass <= 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscretePdf {
    points: Vec<(f64, f64)>,
}

impl DiscretePdf {
    /// Builds a discrete pdf from `(value, probability)` pairs. Duplicate
    /// values are merged by summing their probabilities; zero-probability
    /// points are dropped. Total mass must not exceed `1 + 1e-9`.
    pub fn from_points(mut points: Vec<(f64, f64)>) -> Result<Self> {
        for &(v, p) in &points {
            if !v.is_finite() || !p.is_finite() || p < 0.0 {
                return Err(PdfError::InvalidParameter(format!(
                    "discrete point ({v}, {p}) must be finite with p >= 0"
                )));
            }
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        for (v, p) in points {
            if p == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.0 == v => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        let total: f64 = merged.iter().map(|(_, p)| p).sum();
        if total > 1.0 + 1e-9 {
            return Err(PdfError::InvalidParameter(format!(
                "total discrete mass {total} exceeds 1"
            )));
        }
        Ok(DiscretePdf { points: merged })
    }

    /// Reassembles a discrete pdf from already sorted/merged points (used by
    /// the columnar batch arena to reconstruct records bit-for-bit — unlike
    /// [`DiscretePdf::from_points`], zero-probability points produced by
    /// `scale(0.0)` are preserved, matching the scalar operators).
    pub(crate) fn from_sorted_points_unchecked(points: Vec<(f64, f64)>) -> Self {
        DiscretePdf { points }
    }

    /// A certain (probability-1) single value.
    pub fn certain(v: f64) -> Self {
        DiscretePdf { points: vec![(v, 1.0)] }
    }

    /// The empty (vacuous, zero-mass) discrete pdf.
    pub fn vacuous() -> Self {
        DiscretePdf { points: Vec::new() }
    }

    /// The sorted `(value, probability)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the pdf has no support points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total probability mass (< 1 for partial pdfs).
    pub fn mass(&self) -> f64 {
        self.points.iter().map(|(_, p)| p).sum()
    }

    /// Probability mass exactly at `v`.
    pub fn prob_at(&self, v: f64) -> f64 {
        match self.points.binary_search_by(|(x, _)| x.partial_cmp(&v).unwrap()) {
            Ok(i) => self.points[i].1,
            Err(_) => 0.0,
        }
    }

    /// Unnormalized cumulative `P(X <= x and tuple exists)`.
    pub fn cumulative(&self, x: f64) -> f64 {
        self.points.iter().take_while(|(v, _)| *v <= x).map(|(_, p)| p).sum()
    }

    /// Probability mass on the closed interval.
    pub fn range_prob(&self, iv: &Interval) -> f64 {
        let start = self.points.partition_point(|(v, _)| *v < iv.lo);
        self.points[start..].iter().take_while(|(v, _)| *v <= iv.hi).map(|(_, p)| p).sum()
    }

    /// Smallest and largest support values, or `None` when vacuous.
    pub fn support(&self) -> Option<Interval> {
        match (self.points.first(), self.points.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => Some(Interval::new(lo, hi)),
            _ => None,
        }
    }

    /// Applies a floor: drops every point inside `region` (their possible
    /// worlds fail the selection, so the tuple does not exist there).
    pub fn floor_region(&self, region: &RegionSet) -> DiscretePdf {
        DiscretePdf {
            points: self.points.iter().filter(|(v, _)| !region.contains(*v)).copied().collect(),
        }
    }

    /// Retains only the points satisfying `keep` (generalized floor for
    /// predicates that are not interval-shaped).
    pub fn filter(&self, mut keep: impl FnMut(f64) -> bool) -> DiscretePdf {
        DiscretePdf { points: self.points.iter().filter(|(v, _)| keep(*v)).copied().collect() }
    }

    /// Expected value conditioned on existence; `None` when vacuous.
    pub fn expected_value(&self) -> Option<f64> {
        let mass = self.mass();
        if mass <= 0.0 {
            return None;
        }
        Some(self.points.iter().map(|(v, p)| v * p).sum::<f64>() / mass)
    }

    /// Rescales all probabilities by `factor` in `[0, 1]`.
    pub fn scale(&self, factor: f64) -> DiscretePdf {
        debug_assert!((0.0..=1.0 + 1e-12).contains(&factor));
        DiscretePdf { points: self.points.iter().map(|(v, p)| (*v, p * factor)).collect() }
    }
}

impl std::fmt::Display for DiscretePdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Discrete(")?;
        for (i, (v, p)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}:{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_a() -> DiscretePdf {
        // Table II, attribute a of tuple 1: Discrete(0:0.1, 1:0.9)
        DiscretePdf::from_points(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()
    }

    #[test]
    fn constructor_merges_and_validates() {
        let d = DiscretePdf::from_points(vec![(2.0, 0.2), (1.0, 0.3), (2.0, 0.1)]).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d.prob_at(1.0) - 0.3).abs() < 1e-12);
        assert!((d.prob_at(2.0) - 0.3).abs() < 1e-12);
        assert!(DiscretePdf::from_points(vec![(0.0, 0.6), (1.0, 0.6)]).is_err());
        assert!(DiscretePdf::from_points(vec![(f64::NAN, 0.5)]).is_err());
        assert!(DiscretePdf::from_points(vec![(0.0, -0.1)]).is_err());
        // Zero-probability points are dropped.
        let d = DiscretePdf::from_points(vec![(0.0, 0.0), (1.0, 1.0)]).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn mass_and_prob_at() {
        let d = paper_a();
        assert!((d.mass() - 1.0).abs() < 1e-12);
        assert_eq!(d.prob_at(0.0), 0.1);
        assert_eq!(d.prob_at(1.0), 0.9);
        assert_eq!(d.prob_at(0.5), 0.0);
    }

    #[test]
    fn cumulative_and_range() {
        let d = DiscretePdf::from_points(vec![(1.0, 0.2), (2.0, 0.3), (5.0, 0.5)]).unwrap();
        assert_eq!(d.cumulative(0.0), 0.0);
        assert!((d.cumulative(2.0) - 0.5).abs() < 1e-12);
        assert!((d.cumulative(10.0) - 1.0).abs() < 1e-12);
        assert!((d.range_prob(&Interval::new(2.0, 5.0)) - 0.8).abs() < 1e-12);
        assert!((d.range_prob(&Interval::new(1.5, 1.9))).abs() < 1e-12);
    }

    #[test]
    fn floor_drops_points() {
        let d = paper_a();
        let f = d.floor_region(&RegionSet::from_interval(Interval::at_most(0.5)));
        assert_eq!(f.points(), &[(1.0, 0.9)]);
        assert!((f.mass() - 0.9).abs() < 1e-12, "partial pdf after floor");
        // Flooring everything yields the vacuous pdf.
        let all = d.floor_region(&RegionSet::all());
        assert!(all.is_empty());
        assert!(all.support().is_none());
        assert!(all.expected_value().is_none());
    }

    #[test]
    fn filter_generalizes_floor() {
        let d = DiscretePdf::from_points(vec![(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]).unwrap();
        let odd = d.filter(|v| (v as i64) % 2 == 1);
        assert_eq!(odd.points(), &[(1.0, 0.25), (3.0, 0.5)]);
    }

    #[test]
    fn expected_value_conditions_on_existence() {
        let d = DiscretePdf::from_points(vec![(0.0, 0.25), (4.0, 0.25)]).unwrap();
        // Partial pdf, mass 0.5; conditional expectation is 2.
        assert!((d.expected_value().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn certain_and_vacuous() {
        let c = DiscretePdf::certain(7.0);
        assert_eq!(c.mass(), 1.0);
        assert_eq!(c.prob_at(7.0), 1.0);
        assert!(DiscretePdf::vacuous().is_empty());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(paper_a().to_string(), "Discrete(0:0.1, 1:0.9)");
    }
}
