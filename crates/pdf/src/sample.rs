//! Sampling possible worlds from pdfs.
//!
//! Every representation can draw a value using only a caller-supplied
//! uniform source (`FnMut() -> f64` over `[0, 1)`), so the crate stays free
//! of RNG dependencies. Sampling honors **partial pdfs**: with probability
//! `1 - mass` the draw returns `None` — the possible world in which the
//! tuple does not exist. This drives the Monte-Carlo conformance checker
//! for continuous data, where exhaustive world enumeration is impossible.

use crate::discrete::DiscretePdf;
use crate::histogram::Histogram;
use crate::joint::{Block, JointDiscrete, JointGrid, JointPdf};
use crate::pdf1d::Pdf1;
use crate::symbolic::Symbolic;

/// A uniform-random source over `[0, 1)`.
pub trait Uniform {
    /// Draws the next uniform variate.
    fn next_f64(&mut self) -> f64;
}

impl<F: FnMut() -> f64> Uniform for F {
    fn next_f64(&mut self) -> f64 {
        self()
    }
}

impl Symbolic {
    /// Draws one value by inverse-transform sampling.
    pub fn sample(&self, u: &mut impl Uniform) -> f64 {
        self.quantile(u.next_f64().clamp(0.0, 1.0 - 1e-16))
    }
}

impl DiscretePdf {
    /// Draws one value, or `None` for the missing-tuple residual mass.
    pub fn sample(&self, u: &mut impl Uniform) -> Option<f64> {
        let target = u.next_f64();
        let mut acc = 0.0;
        for &(v, p) in self.points() {
            acc += p;
            if target < acc {
                return Some(v);
            }
        }
        None
    }
}

impl Histogram {
    /// Draws one value (uniform within the chosen bucket), or `None` for
    /// the missing-tuple residual mass.
    pub fn sample(&self, u: &mut impl Uniform) -> Option<f64> {
        let target = u.next_f64();
        let mut acc = 0.0;
        for (i, &m) in self.masses().iter().enumerate() {
            acc += m;
            if target < acc {
                let lo = self.lo() + i as f64 * self.width();
                return Some(lo + u.next_f64() * self.width());
            }
        }
        None
    }
}

impl Pdf1 {
    /// Draws one value, or `None` when this possible world has no tuple
    /// (floored region hit, or residual mass of a partial pdf).
    pub fn sample(&self, u: &mut impl Uniform) -> Option<f64> {
        match self {
            Pdf1::Symbolic { dist, floor, scale } => {
                if *scale < 1.0 && u.next_f64() >= *scale {
                    return None;
                }
                let x = dist.sample(u);
                // A draw inside the floored region is a world where the
                // tuple failed its selection: it does not exist.
                if floor.contains(x) {
                    None
                } else {
                    Some(x)
                }
            }
            Pdf1::Histogram(h) => h.sample(u),
            Pdf1::Discrete(d) => d.sample(u),
        }
    }
}

impl JointDiscrete {
    /// Draws one point, or `None` for the residual mass.
    pub fn sample(&self, u: &mut impl Uniform) -> Option<Vec<f64>> {
        let target = u.next_f64();
        let mut acc = 0.0;
        for (v, p) in self.points() {
            acc += p;
            if target < acc {
                return Some(v.clone());
            }
        }
        None
    }
}

impl JointGrid {
    /// Draws one point (uniform within the chosen cell), or `None` for the
    /// residual mass.
    pub fn sample(&self, u: &mut impl Uniform) -> Option<Vec<f64>> {
        let target = u.next_f64();
        let mut acc = 0.0;
        for (c, &m) in self.masses().iter().enumerate() {
            acc += m;
            if target < acc {
                // Decode the cell index and place the point uniformly.
                let mut rem = c;
                let k = self.arity();
                let mut idx = vec![0usize; k];
                for d in (0..k).rev() {
                    idx[d] = rem % self.dims()[d].bins;
                    rem /= self.dims()[d].bins;
                }
                let mut point = Vec::with_capacity(k);
                for (d, &i) in idx.iter().enumerate() {
                    let dim = self.dims()[d];
                    let lo = dim.lo + i as f64 * dim.width;
                    point.push(lo + u.next_f64() * dim.width);
                }
                return Some(point);
            }
        }
        None
    }
}

impl JointPdf {
    /// Draws one joint point, or `None` when any block's world removes the
    /// tuple.
    pub fn sample(&self, u: &mut impl Uniform) -> Option<Vec<f64>> {
        let mut out = Vec::with_capacity(self.arity());
        for b in self.blocks() {
            match b {
                Block::Uni(p) => out.push(p.sample(u)?),
                Block::Points(j) => out.extend(j.sample(u)?),
                Block::Grid(g) => out.extend(g.sample(u)?),
            }
        }
        Some(out)
    }
}

/// A small deterministic xorshift64* generator for dependency-free testing
/// and reproducible Monte-Carlo runs.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeds the generator (zero is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift { state: seed.max(1) }
    }
}

impl Uniform for XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{Interval, RegionSet};

    fn freq(samples: &[Option<f64>], pred: impl Fn(f64) -> bool) -> f64 {
        samples.iter().filter(|s| s.map(&pred).unwrap_or(false)).count() as f64
            / samples.len() as f64
    }

    #[test]
    fn xorshift_is_roughly_uniform() {
        let mut rng = XorShift::new(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut rng = XorShift::new(42);
        assert!((0..1000).all(|_| {
            let v = rng.next_f64();
            (0.0..1.0).contains(&v)
        }));
    }

    #[test]
    fn gaussian_sampling_matches_cdf() {
        let g = Pdf1::gaussian(10.0, 4.0).unwrap();
        let mut rng = XorShift::new(7);
        let samples: Vec<_> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        assert!(samples.iter().all(Option::is_some), "full-mass pdf always exists");
        let p = freq(&samples, |x| x < 10.0);
        assert!((p - 0.5).abs() < 0.02, "p {p}");
        let p = freq(&samples, |x| x < 12.0);
        assert!((p - g.cumulative(12.0)).abs() < 0.02);
    }

    #[test]
    fn floored_pdf_samples_none_in_floor() {
        let g = Pdf1::gaussian(0.0, 1.0)
            .unwrap()
            .floor_region(&RegionSet::from_interval(Interval::at_least(0.0)));
        let mut rng = XorShift::new(9);
        let samples: Vec<_> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let exist = samples.iter().filter(|s| s.is_some()).count() as f64 / 20_000.0;
        assert!((exist - 0.5).abs() < 0.02, "existence {exist}");
        assert!(samples.iter().flatten().all(|&x| x < 0.0));
    }

    #[test]
    fn discrete_sampling_matches_masses() {
        let d = Pdf1::discrete(vec![(1.0, 0.2), (2.0, 0.3)]).unwrap();
        let mut rng = XorShift::new(11);
        let samples: Vec<_> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let none = samples.iter().filter(|s| s.is_none()).count() as f64 / 30_000.0;
        assert!((none - 0.5).abs() < 0.02, "missing-tuple share {none}");
        assert!((freq(&samples, |x| x == 1.0) - 0.2).abs() < 0.02);
        assert!((freq(&samples, |x| x == 2.0) - 0.3).abs() < 0.02);
    }

    #[test]
    fn histogram_sampling_matches_buckets() {
        let h = Pdf1::histogram(0.0, 1.0, vec![0.25, 0.75]).unwrap();
        let mut rng = XorShift::new(13);
        let samples: Vec<_> = (0..20_000).map(|_| h.sample(&mut rng)).collect();
        assert!((freq(&samples, |x| x < 1.0) - 0.25).abs() < 0.02);
        assert!(samples.iter().flatten().all(|&x| (0.0..2.0).contains(&x)));
    }

    #[test]
    fn joint_sampling_respects_correlation() {
        let j = JointPdf::from_points(
            JointDiscrete::from_points(2, vec![(vec![0.0, 0.0], 0.5), (vec![1.0, 1.0], 0.5)])
                .unwrap(),
        );
        let mut rng = XorShift::new(17);
        for _ in 0..200 {
            let p = j.sample(&mut rng).unwrap();
            assert_eq!(p[0], p[1], "perfectly correlated draw");
        }
    }

    #[test]
    fn joint_grid_sampling_lands_in_support() {
        let g = JointGrid::from_masses(
            vec![
                crate::joint::GridDim::over(0.0, 2.0, 2).unwrap(),
                crate::joint::GridDim::over(10.0, 12.0, 2).unwrap(),
            ],
            vec![0.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        let mut rng = XorShift::new(23);
        for _ in 0..100 {
            let p = g.sample(&mut rng).unwrap();
            assert!((1.0..2.0).contains(&p[0]), "only the last cell has mass");
            assert!((11.0..12.0).contains(&p[1]));
        }
    }

    #[test]
    fn scaled_pdf_reduces_existence() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap().scale(0.25);
        let mut rng = XorShift::new(31);
        let exist = (0..20_000).filter(|_| g.sample(&mut rng).is_some()).count() as f64 / 20_000.0;
        assert!((exist - 0.25).abs() < 0.02, "existence {exist}");
    }
}
