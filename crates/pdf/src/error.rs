//! Error type shared across the pdf crate.

use std::fmt;

/// Errors raised by distribution constructors and pdf operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PdfError {
    /// A distribution parameter was outside its legal domain
    /// (e.g. a non-positive variance, a probability outside `[0, 1]`).
    InvalidParameter(String),
    /// An operation was applied to pdfs whose shapes are incompatible
    /// (e.g. a product over overlapping dimension sets).
    IncompatibleOperands(String),
    /// The operation would produce a pdf with zero total mass where a
    /// non-vacuous result is required (e.g. conditioning on a null event).
    VacuousResult(String),
    /// A numeric routine failed to converge or produced a non-finite value.
    Numeric(String),
}

impl fmt::Display for PdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdfError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            PdfError::IncompatibleOperands(m) => write!(f, "incompatible operands: {m}"),
            PdfError::VacuousResult(m) => write!(f, "vacuous result: {m}"),
            PdfError::Numeric(m) => write!(f, "numeric error: {m}"),
        }
    }
}

impl std::error::Error for PdfError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PdfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = PdfError::InvalidParameter("variance must be positive".into());
        assert_eq!(e.to_string(), "invalid parameter: variance must be positive");
        let e = PdfError::VacuousResult("all mass floored".into());
        assert_eq!(e.to_string(), "vacuous result: all mass floored");
    }
}
