//! Intervals and disjoint interval unions over the real line.
//!
//! These are the geometric substrate for the paper's *floor* operation
//! (Section III-A): a floored region is stored symbolically as a union of
//! intervals attached to the original distribution, e.g.
//! `[Gaus(5,1), Floor{[5, +inf]}]`.
//!
//! Intervals are treated as closed; since every distribution we floor is
//! either continuous (where single points carry no mass) or discrete (where
//! the predicate evaluator resolves endpoint membership explicitly before
//! building regions), the open/closed distinction never changes a
//! probability in this model.

use serde::{Deserialize, Serialize};

/// A (possibly unbounded) interval `[lo, hi]` on the real line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint; `-inf` for a left-unbounded interval.
    pub lo: f64,
    /// Upper endpoint; `+inf` for a right-unbounded interval.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`. Panics if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval endpoints must not be NaN");
        assert!(lo <= hi, "interval requires lo <= hi, got [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The whole real line `(-inf, +inf)`.
    pub fn all() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// `[x, +inf)`.
    pub fn at_least(x: f64) -> Self {
        Interval::new(x, f64::INFINITY)
    }

    /// `(-inf, x]`.
    pub fn at_most(x: f64) -> Self {
        Interval::new(f64::NEG_INFINITY, x)
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// Whether `x` lies inside the (closed) interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether this interval overlaps `other` (shared closed endpoints count).
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Length of the interval (`+inf` when unbounded, 0 for points).
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether both endpoints are finite.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Clamps `x` into the interval (meaningful only when bounded on the
    /// relevant side).
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

/// A finite union of pairwise-disjoint, sorted intervals.
///
/// This is the representation of a symbolic `Floor{...}` region, and also of
/// an attribute's admissible support after selections. The empty region set
/// is the identity floor (nothing zeroed).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegionSet {
    intervals: Vec<Interval>,
}

impl RegionSet {
    /// The empty region.
    pub fn empty() -> Self {
        RegionSet { intervals: Vec::new() }
    }

    /// The whole real line.
    pub fn all() -> Self {
        RegionSet { intervals: vec![Interval::all()] }
    }

    /// A region made of a single interval.
    pub fn from_interval(iv: Interval) -> Self {
        RegionSet { intervals: vec![iv] }
    }

    /// Builds a region from arbitrary (possibly overlapping, unsorted)
    /// intervals, normalizing into a sorted disjoint union.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> Self {
        if ivs.is_empty() {
            return RegionSet::empty();
        }
        ivs.sort_by(|a, b| a.lo.partial_cmp(&b.lo).expect("no NaN endpoints"));
        let mut merged: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match merged.last_mut() {
                Some(last) if iv.lo <= last.hi => {
                    if iv.hi > last.hi {
                        last.hi = iv.hi;
                    }
                }
                _ => merged.push(iv),
            }
        }
        RegionSet { intervals: merged }
    }

    /// The disjoint intervals, sorted ascending.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether `x` lies in the region (binary search).
    pub fn contains(&self, x: f64) -> bool {
        let idx = self.intervals.partition_point(|iv| iv.hi < x);
        self.intervals.get(idx).is_some_and(|iv| iv.contains(x))
    }

    /// Union with another region.
    pub fn union(&self, other: &RegionSet) -> RegionSet {
        let mut all = Vec::with_capacity(self.intervals.len() + other.intervals.len());
        all.extend_from_slice(&self.intervals);
        all.extend_from_slice(&other.intervals);
        RegionSet::from_intervals(all)
    }

    /// Intersection with another region.
    pub fn intersect(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (a, b) = (self.intervals[i], other.intervals[j]);
            if let Some(iv) = a.intersect(&b) {
                out.push(iv);
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        RegionSet { intervals: out }
    }

    /// Complement within the whole real line.
    pub fn complement(&self) -> RegionSet {
        if self.intervals.is_empty() {
            return RegionSet::all();
        }
        let mut out = Vec::with_capacity(self.intervals.len() + 1);
        let mut cursor = f64::NEG_INFINITY;
        for iv in &self.intervals {
            if iv.lo > cursor {
                out.push(Interval::new(cursor, iv.lo));
            }
            cursor = cursor.max(iv.hi);
        }
        if cursor < f64::INFINITY {
            out.push(Interval::new(cursor, f64::INFINITY));
        }
        RegionSet { intervals: out }
    }

    /// Whether this region covers the given interval entirely.
    pub fn covers(&self, iv: &Interval) -> bool {
        // After normalization an interval is covered iff a single member
        // contains it (members are disjoint with gaps of positive length,
        // except for touching endpoints which from_intervals merges).
        let idx = self.intervals.partition_point(|m| m.hi < iv.lo);
        self.intervals.get(idx).is_some_and(|m| m.lo <= iv.lo && iv.hi <= m.hi)
    }

    /// Total length of the region (may be `+inf`).
    pub fn measure(&self) -> f64 {
        self.intervals.iter().map(Interval::length).sum()
    }
}

impl From<Interval> for RegionSet {
    fn from(iv: Interval) -> Self {
        RegionSet::from_interval(iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(1.0, 3.0);
        assert!(iv.contains(1.0) && iv.contains(3.0) && iv.contains(2.0));
        assert!(!iv.contains(0.999) && !iv.contains(3.001));
        assert_eq!(iv.length(), 2.0);
        assert!(!iv.is_point());
        assert!(Interval::point(2.0).is_point());
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn interval_rejects_inverted() {
        Interval::new(3.0, 1.0);
    }

    #[test]
    fn interval_intersection() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, 8.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(3.0, 5.0)));
        let c = Interval::new(6.0, 7.0);
        assert_eq!(a.intersect(&c), None);
        // Touching endpoints intersect in a point.
        let d = Interval::new(5.0, 9.0);
        assert_eq!(a.intersect(&d), Some(Interval::point(5.0)));
    }

    #[test]
    fn region_normalization_merges_overlaps() {
        let r = RegionSet::from_intervals(vec![
            Interval::new(5.0, 7.0),
            Interval::new(0.0, 2.0),
            Interval::new(1.0, 3.0),
            Interval::new(3.0, 4.0),
        ]);
        assert_eq!(r.intervals(), &[Interval::new(0.0, 4.0), Interval::new(5.0, 7.0)]);
    }

    #[test]
    fn region_contains_uses_binary_search() {
        let r = RegionSet::from_intervals(vec![
            Interval::new(0.0, 1.0),
            Interval::new(2.0, 3.0),
            Interval::new(10.0, 20.0),
        ]);
        assert!(r.contains(0.5) && r.contains(2.0) && r.contains(20.0));
        assert!(!r.contains(1.5) && !r.contains(9.999) && !r.contains(-1.0));
    }

    #[test]
    fn region_union_and_intersection() {
        let a = RegionSet::from_intervals(vec![Interval::new(0.0, 2.0), Interval::new(4.0, 6.0)]);
        let b = RegionSet::from_intervals(vec![Interval::new(1.0, 5.0)]);
        let u = a.union(&b);
        assert_eq!(u.intervals(), &[Interval::new(0.0, 6.0)]);
        let i = a.intersect(&b);
        assert_eq!(i.intervals(), &[Interval::new(1.0, 2.0), Interval::new(4.0, 5.0)]);
    }

    #[test]
    fn region_complement_round_trip() {
        let a = RegionSet::from_intervals(vec![Interval::new(0.0, 1.0), Interval::new(3.0, 4.0)]);
        let c = a.complement();
        assert_eq!(
            c.intervals(),
            &[
                Interval::new(f64::NEG_INFINITY, 0.0),
                Interval::new(1.0, 3.0),
                Interval::new(4.0, f64::INFINITY),
            ]
        );
        // Complement of complement merges at touching endpoints: measure-equal.
        let cc = c.complement();
        assert_eq!(cc.intervals().len(), 2);
        assert_eq!(cc.measure(), a.measure());
    }

    #[test]
    fn empty_and_all() {
        assert!(RegionSet::empty().is_empty());
        assert!(RegionSet::all().contains(1e300));
        assert!(RegionSet::empty().complement() == RegionSet::all());
        assert!(RegionSet::all()
            .intersect(&RegionSet::from_interval(Interval::new(0.0, 1.0)))
            .covers(&Interval::new(0.0, 1.0)));
    }

    #[test]
    fn covers_checks_single_member() {
        let r = RegionSet::from_intervals(vec![Interval::new(0.0, 2.0), Interval::new(3.0, 5.0)]);
        assert!(r.covers(&Interval::new(0.5, 1.5)));
        assert!(r.covers(&Interval::new(3.0, 5.0)));
        assert!(!r.covers(&Interval::new(1.0, 4.0)));
        assert!(!r.covers(&Interval::new(2.5, 2.6)));
    }

    #[test]
    fn measure_sums_lengths() {
        let r = RegionSet::from_intervals(vec![Interval::new(0.0, 2.0), Interval::new(3.0, 4.5)]);
        assert!((r.measure() - 3.5).abs() < 1e-12);
        assert_eq!(RegionSet::all().measure(), f64::INFINITY);
        assert_eq!(RegionSet::empty().measure(), 0.0);
    }
}
