//! Operations on probability values (paper Section III-E).
//!
//! These operators act on the probabilistic *model* rather than on possible
//! worlds: `σ_{Pr(A) ⊙ p}` filters tuples by the probability mass of an
//! attribute set, and `σ_{Pr(θ) ⊙ p}` by the probability that a predicate
//! holds. Result tuples are unchanged (no flooring); histories are copied
//! over, as in selection Case 1.

use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::predicate::{CmpOp, Predicate};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::select::{apply_predicate_tuple, ExecOptions};
use crate::tuple::{PdfNode, ProbTuple};

/// `σ_{Pr(A) ⊙ p}`: keeps tuples whose probability over the attribute set
/// `A` (the mass of its — history-merged — dependency sets) satisfies the
/// comparison.
pub fn threshold_attrs(
    rel: &Relation,
    attrs: &[&str],
    op: CmpOp,
    p: f64,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    if attrs.is_empty() {
        return Err(EngineError::Operator("Pr() of an empty attribute set".into()));
    }
    let ids: Vec<AttrId> = attrs
        .iter()
        .map(|a| {
            let col = rel
                .schema
                .column(a)
                .ok_or_else(|| EngineError::Schema(format!("unknown column '{a}'")))?;
            if !col.uncertain {
                return Err(EngineError::Operator(format!("Pr() over certain column '{a}'")));
            }
            Ok(col.id)
        })
        .collect::<Result<_>>()?;

    let mut out = Relation::new(format!("sigma_pr({})", rel.name), rel.schema.clone());
    // Phase 1 (parallel): probability evaluation reads the registry only.
    let reg_ref: &HistoryRegistry = reg;
    let kept = crate::exec_par::run_tuples_mode(&rel.tuples, opts, |_, t| {
        let prob = attr_set_probability(t, &ids, reg_ref, opts)?;
        let cmp = prob
            .partial_cmp(&p)
            .ok_or_else(|| EngineError::Operator("non-finite probability".into()))?;
        Ok(op.test(cmp).then(|| t.clone()))
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    for t in kept.into_iter().flatten() {
        for n in &t.nodes {
            reg.add_refs(&n.ancestors);
        }
        out.tuples.push(t);
    }
    Ok(out)
}

/// The probability mass of the (merged) dependency sets covering `ids`.
pub fn attr_set_probability(
    t: &ProbTuple,
    ids: &[AttrId],
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<f64> {
    let mut touched: Vec<usize> = Vec::new();
    for &a in ids {
        let i = t
            .node_index_for(a)
            .ok_or_else(|| EngineError::Operator(format!("no pdf node for attr {a}")))?;
        if !touched.contains(&i) {
            touched.push(i);
        }
    }
    let nodes: Vec<&PdfNode> = touched.iter().map(|&i| &t.nodes[i]).collect();
    if nodes.len() == 1 {
        return Ok(nodes[0].mass());
    }
    if opts.use_histories {
        Ok(collapse::merge_nodes_with_stats(&nodes, reg, opts.resolution, opts.stats_ref())?.mass())
    } else {
        if let Some(s) = opts.stats_ref() {
            s.pdf_products.add(nodes.len() as u64 - 1);
        }
        Ok(nodes.iter().map(|n| n.mass()).product())
    }
}

/// `σ_{Pr(θ) ⊙ p}`: keeps tuples for which the probability that θ holds
/// (and the tuple exists) satisfies the comparison. This is the paper's
/// probabilistic threshold range query when θ is a range predicate.
pub fn threshold_pred(
    rel: &Relation,
    pred: &Predicate,
    op: CmpOp,
    p: f64,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    pred.validate(&rel.schema)?;
    let mut out = Relation::new(format!("sigma_prob({})", rel.name), rel.schema.clone());
    // Phase 1 (parallel): Pr(θ) evaluation reads the registry only.
    let reg_ref: &HistoryRegistry = reg;
    let kept = crate::exec_par::run_tuples_mode(&rel.tuples, opts, |_, t| {
        let prob = predicate_probability(rel, t, pred, reg_ref, opts)?;
        let cmp = prob
            .partial_cmp(&p)
            .ok_or_else(|| EngineError::Operator("non-finite probability".into()))?;
        Ok(op.test(cmp).then(|| t.clone()))
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    for t in kept.into_iter().flatten() {
        for n in &t.nodes {
            reg.add_refs(&n.ancestors);
        }
        out.tuples.push(t);
    }
    Ok(out)
}

/// `Pr(θ ∧ tuple exists)` for one tuple: floors a scratch copy and takes
/// the collapsed existence probability of the result.
pub fn predicate_probability(
    rel: &Relation,
    t: &ProbTuple,
    pred: &Predicate,
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<f64> {
    let p = match apply_predicate_tuple(rel, t, pred, reg, opts)? {
        None => 0.0,
        Some(ft) => {
            if opts.use_histories {
                collapse::existence_prob_with_stats(&ft, reg, opts.resolution, opts.stats_ref())?
            } else {
                ft.naive_existence()
            }
        }
    };
    if !p.is_finite() {
        return Err(EngineError::Operator("non-finite probability".into()));
    }
    // Clamp rounding residue (including negative zero) into [0, 1].
    Ok(if p <= 0.0 { 0.0 } else { p.min(1.0) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, ProbSchema};
    use crate::value::Value;
    use orion_pdf::prelude::*;

    fn readings() -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("readings", schema);
        let mut reg = HistoryRegistry::new();
        for (id, m, var) in [(1, 20.0, 5.0), (2, 25.0, 4.0), (3, 13.0, 1.0)] {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("v", Pdf1::gaussian(m, var).unwrap())],
            )
            .unwrap();
        }
        (rel, reg)
    }

    #[test]
    fn probabilistic_threshold_range_query() {
        // Which sensors are in [18, 22] with probability > 0.5? Only the
        // Gaus(20, 5) reading.
        let (rel, mut reg) = readings();
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 18.0),
            Predicate::cmp("v", CmpOp::Le, 22.0),
        ]);
        let out =
            threshold_pred(&rel, &pred, CmpOp::Gt, 0.5, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "id").unwrap(), &Value::Int(1));
        // Result pdfs are NOT floored (operation on probability values).
        assert_eq!(out.marginal(0, "v").unwrap().to_string(), "Gaus(20,5)");
    }

    #[test]
    fn predicate_probability_matches_range_prob() {
        let (rel, reg) = readings();
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 18.0),
            Predicate::cmp("v", CmpOp::Le, 22.0),
        ]);
        let p = predicate_probability(&rel, &rel.tuples[0], &pred, &reg, &ExecOptions::default())
            .unwrap();
        let want = Pdf1::gaussian(20.0, 5.0).unwrap().range_prob(&Interval::new(18.0, 22.0));
        assert!((p - want).abs() < 1e-9);
    }

    #[test]
    fn threshold_attrs_filters_on_existence_mass() {
        // One certain tuple (mass 1) and one partial tuple (mass 0.4).
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::certain(1.0))]).unwrap();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::discrete(vec![(2.0, 0.4)]).unwrap())])
            .unwrap();
        let out = threshold_attrs(&rel, &["x"], CmpOp::Gt, 0.5, &mut reg, &ExecOptions::default())
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!((out.marginal(0, "x").unwrap().density(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_attrs_validation() {
        let (rel, mut reg) = readings();
        let opts = ExecOptions::default();
        assert!(threshold_attrs(&rel, &[], CmpOp::Gt, 0.5, &mut reg, &opts).is_err());
        assert!(threshold_attrs(&rel, &["id"], CmpOp::Gt, 0.5, &mut reg, &opts).is_err());
        assert!(threshold_attrs(&rel, &["nope"], CmpOp::Gt, 0.5, &mut reg, &opts).is_err());
    }

    #[test]
    fn certain_predicate_probability_is_zero_or_one() {
        let (rel, reg) = readings();
        let opts = ExecOptions::default();
        let p = predicate_probability(
            &rel,
            &rel.tuples[0],
            &Predicate::cmp("id", CmpOp::Eq, 1i64),
            &reg,
            &opts,
        )
        .unwrap();
        assert_eq!(p, 1.0);
        let p = predicate_probability(
            &rel,
            &rel.tuples[0],
            &Predicate::cmp("id", CmpOp::Eq, 2i64),
            &reg,
            &opts,
        )
        .unwrap();
        assert_eq!(p, 0.0);
    }
}
