//! Operations on probability values (paper Section III-E).
//!
//! These operators act on the probabilistic *model* rather than on possible
//! worlds: `σ_{Pr(A) ⊙ p}` filters tuples by the probability mass of an
//! attribute set, and `σ_{Pr(θ) ⊙ p}` by the probability that a predicate
//! holds. Result tuples are unchanged (no flooring); histories are copied
//! over, as in selection Case 1.

use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::predicate::{CmpOp, Predicate};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::select::{apply_predicate_tuple, ExecOptions};
use crate::tuple::{PdfNode, ProbTuple};

/// `σ_{Pr(A) ⊙ p}`: keeps tuples whose probability over the attribute set
/// `A` (the mass of its — history-merged — dependency sets) satisfies the
/// comparison.
pub fn threshold_attrs(
    rel: &Relation,
    attrs: &[&str],
    op: CmpOp,
    p: f64,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    if attrs.is_empty() {
        return Err(EngineError::Operator("Pr() of an empty attribute set".into()));
    }
    let ids: Vec<AttrId> = attrs
        .iter()
        .map(|a| {
            let col = rel
                .schema
                .column(a)
                .ok_or_else(|| EngineError::Schema(format!("unknown column '{a}'")))?;
            if !col.uncertain {
                return Err(EngineError::Operator(format!("Pr() over certain column '{a}'")));
            }
            Ok(col.id)
        })
        .collect::<Result<_>>()?;

    let mut out = Relation::new(format!("sigma_pr({})", rel.name), rel.schema.clone());
    // Phase 1 (parallel): probability evaluation reads the registry only.
    let reg_ref: &HistoryRegistry = reg;
    let kept = crate::exec_par::run_tuples_mode(&rel.tuples, opts, |_, t| {
        let prob = attr_set_probability(t, &ids, reg_ref, opts)?;
        let cmp = prob
            .partial_cmp(&p)
            .ok_or_else(|| EngineError::Operator("non-finite probability".into()))?;
        Ok(op.test(cmp).then(|| t.clone()))
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    for t in kept.into_iter().flatten() {
        for n in &t.nodes {
            reg.add_refs(&n.ancestors);
        }
        out.tuples.push(t);
    }
    Ok(out)
}

/// The probability mass of the (merged) dependency sets covering `ids`.
pub fn attr_set_probability(
    t: &ProbTuple,
    ids: &[AttrId],
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<f64> {
    let mut touched: Vec<usize> = Vec::new();
    for &a in ids {
        let i = t
            .node_index_for(a)
            .ok_or_else(|| EngineError::Operator(format!("no pdf node for attr {a}")))?;
        if !touched.contains(&i) {
            touched.push(i);
        }
    }
    let nodes: Vec<&PdfNode> = touched.iter().map(|&i| &t.nodes[i]).collect();
    if nodes.len() == 1 {
        return Ok(nodes[0].mass());
    }
    if opts.use_histories {
        Ok(collapse::merge_nodes_with_stats(&nodes, reg, opts.resolution, opts.stats_ref())?.mass())
    } else {
        if let Some(s) = opts.stats_ref() {
            s.pdf_products.add(nodes.len() as u64 - 1);
        }
        Ok(nodes.iter().map(|n| n.mass()).product())
    }
}

/// `σ_{Pr(θ) ⊙ p}`: keeps tuples for which the probability that θ holds
/// (and the tuple exists) satisfies the comparison. This is the paper's
/// probabilistic threshold range query when θ is a range predicate.
///
/// When the session carries an index catalog ([`ExecOptions::indexes`]) but
/// no persistent index covers the predicate's column, a transient
/// [`crate::index::SupportIndex`] prunes tuples whose support interval or
/// total mass already rules them out; surviving candidates pay exactly the
/// scan's probability machinery, so results are bitwise identical.
pub fn threshold_pred(
    rel: &Relation,
    pred: &Predicate,
    op: CmpOp,
    p: f64,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    let mask = support_fallback_mask(rel, pred, op, p, opts);
    threshold_pred_masked(rel, pred, op, p, mask.as_deref(), reg, opts)
}

/// [`threshold_pred`] with an optional candidate mask from an access-path
/// decision. `mask[i] == false` asserts tuple `i` cannot satisfy the
/// threshold (a *sound* claim the index layer must guarantee); such tuples
/// never enter probability evaluation. The iteration set is compacted to
/// the candidate indices up front — phase 1 is pure and candidates keep
/// their ascending input order, so the surviving tuples arrive at the
/// serial commit in exactly the order a full scan would deliver them, and
/// the output is bitwise identical to the unmasked run.
pub fn threshold_pred_masked(
    rel: &Relation,
    pred: &Predicate,
    op: CmpOp,
    p: f64,
    mask: Option<&[bool]>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    pred.validate(&rel.schema)?;
    if let (Some(m), Some(s)) = (mask, opts.stats_ref()) {
        s.index_probes.add(m.len() as u64);
        s.index_pruned.add(m.iter().filter(|&&keep| !keep).count() as u64);
    }
    let mut out = Relation::new(format!("sigma_prob({})", rel.name), rel.schema.clone());
    // Phase 1 (parallel): Pr(θ) evaluation reads the registry only.
    let reg_ref: &HistoryRegistry = reg;
    let eval = |t: &ProbTuple| -> Result<Option<ProbTuple>> {
        let prob = predicate_probability(rel, t, pred, reg_ref, opts)?;
        let cmp = prob
            .partial_cmp(&p)
            .ok_or_else(|| EngineError::Operator("non-finite probability".into()))?;
        Ok(op.test(cmp).then(|| t.clone()))
    };
    let kept = match mask {
        // Compacting to the candidate set (rather than early-returning
        // `None` per masked-out tuple) keeps the index path's cost
        // proportional to the candidates, not the relation: a dense
        // `Option<ProbTuple>` buffer over all N tuples costs more than the
        // pruned evaluations save at low selectivities.
        Some(m) => {
            let cands: Vec<usize> =
                m.iter().enumerate().filter_map(|(i, &keep)| keep.then_some(i)).collect();
            crate::exec_par::run_tuples_mode(&cands, opts, |_, &ti| eval(&rel.tuples[ti]))?
        }
        None => crate::exec_par::run_tuples_mode(&rel.tuples, opts, |_, t| eval(t))?,
    };
    // Phase 2 (serial, in input order): reference-count commits.
    for t in kept.into_iter().flatten() {
        for n in &t.nodes {
            reg.add_refs(&n.ancestors);
        }
        out.tuples.push(t);
    }
    Ok(out)
}

/// Builds a candidate mask from a transient support-interval index when no
/// persistent index covers the predicate's column.
///
/// Engages only when the session has index infrastructure at all
/// (`opts.indexes` is `Some`): plain library callers keep the exact scan
/// cost profile they always had. Pruning is restricted to `>`/`>=`
/// thresholds at `p ≥` [`crate::pindex::MIN_PRUNABLE_P`], where the
/// effective-support tail (≤ 1e-9 mass) cannot flip a verdict. Tuples with
/// NULL/missing pdf nodes make [`crate::index::SupportIndex::build`] fail,
/// which disables the fallback wholesale — three-valued logic stays in the
/// per-tuple evaluator, never in the index.
pub(crate) fn support_fallback_mask(
    rel: &Relation,
    pred: &Predicate,
    op: CmpOp,
    p: f64,
    opts: &ExecOptions,
) -> Option<Vec<bool>> {
    if !matches!(op, CmpOp::Gt | CmpOp::Ge) || p.is_nan() || p < crate::pindex::MIN_PRUNABLE_P {
        return None;
    }
    let handle = opts.indexes.as_ref()?;
    let (col, lo, hi) = crate::stats_catalog::pred_interval(pred)?;
    if lo > hi {
        return None; // contradictory conjunction; let the scan report it
    }
    if !handle.lock().find(&rel.name, Some(&col)).is_empty() {
        return None; // a persistent index exists — the planner owns this path
    }
    if !rel.schema.column(&col)?.uncertain {
        return None;
    }
    let idx = crate::index::SupportIndex::build(rel, &col).ok()?;
    let min_mass = if op == CmpOp::Gt { p } else { p - 1e-12 };
    let mut mask = vec![false; rel.len()];
    for ti in idx.candidates(&orion_pdf::prelude::Interval::new(lo, hi), min_mass) {
        mask[ti] = true;
    }
    Some(mask)
}

/// `Pr(θ ∧ tuple exists)` for one tuple: floors a scratch copy and takes
/// the collapsed existence probability of the result.
pub fn predicate_probability(
    rel: &Relation,
    t: &ProbTuple,
    pred: &Predicate,
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<f64> {
    let p = match apply_predicate_tuple(rel, t, pred, reg, opts)? {
        None => 0.0,
        Some(ft) => {
            if opts.use_histories {
                collapse::existence_prob_with_stats(&ft, reg, opts.resolution, opts.stats_ref())?
            } else {
                ft.naive_existence()
            }
        }
    };
    if !p.is_finite() {
        return Err(EngineError::Operator("non-finite probability".into()));
    }
    // Clamp rounding residue (including negative zero) into [0, 1].
    Ok(if p <= 0.0 { 0.0 } else { p.min(1.0) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, ProbSchema};
    use crate::value::Value;
    use orion_pdf::prelude::*;

    fn readings() -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("readings", schema);
        let mut reg = HistoryRegistry::new();
        for (id, m, var) in [(1, 20.0, 5.0), (2, 25.0, 4.0), (3, 13.0, 1.0)] {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("v", Pdf1::gaussian(m, var).unwrap())],
            )
            .unwrap();
        }
        (rel, reg)
    }

    #[test]
    fn probabilistic_threshold_range_query() {
        // Which sensors are in [18, 22] with probability > 0.5? Only the
        // Gaus(20, 5) reading.
        let (rel, mut reg) = readings();
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 18.0),
            Predicate::cmp("v", CmpOp::Le, 22.0),
        ]);
        let out =
            threshold_pred(&rel, &pred, CmpOp::Gt, 0.5, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "id").unwrap(), &Value::Int(1));
        // Result pdfs are NOT floored (operation on probability values).
        assert_eq!(out.marginal(0, "v").unwrap().to_string(), "Gaus(20,5)");
    }

    #[test]
    fn predicate_probability_matches_range_prob() {
        let (rel, reg) = readings();
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 18.0),
            Predicate::cmp("v", CmpOp::Le, 22.0),
        ]);
        let p = predicate_probability(&rel, &rel.tuples[0], &pred, &reg, &ExecOptions::default())
            .unwrap();
        let want = Pdf1::gaussian(20.0, 5.0).unwrap().range_prob(&Interval::new(18.0, 22.0));
        assert!((p - want).abs() < 1e-9);
    }

    #[test]
    fn threshold_attrs_filters_on_existence_mass() {
        // One certain tuple (mass 1) and one partial tuple (mass 0.4).
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::certain(1.0))]).unwrap();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::discrete(vec![(2.0, 0.4)]).unwrap())])
            .unwrap();
        let out = threshold_attrs(&rel, &["x"], CmpOp::Gt, 0.5, &mut reg, &ExecOptions::default())
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!((out.marginal(0, "x").unwrap().density(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_attrs_validation() {
        let (rel, mut reg) = readings();
        let opts = ExecOptions::default();
        assert!(threshold_attrs(&rel, &[], CmpOp::Gt, 0.5, &mut reg, &opts).is_err());
        assert!(threshold_attrs(&rel, &["id"], CmpOp::Gt, 0.5, &mut reg, &opts).is_err());
        assert!(threshold_attrs(&rel, &["nope"], CmpOp::Gt, 0.5, &mut reg, &opts).is_err());
    }

    #[test]
    fn support_fallback_prunes_without_changing_results() {
        use std::sync::Arc;
        // Mixed relation: an in-range gaussian (kept), a far-away gaussian
        // (support-pruned), and a partial mass-0.4 maybe-tuple carrying a
        // NULL certain key (mass-pruned for p = 0.5).
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(
            &mut reg,
            &[("id", Value::Int(1))],
            &[("v", Pdf1::gaussian(20.0, 4.0).unwrap())],
        )
        .unwrap();
        rel.insert_simple(
            &mut reg,
            &[("id", Value::Int(2))],
            &[("v", Pdf1::gaussian(500.0, 1.0).unwrap())],
        )
        .unwrap();
        rel.insert_simple(
            &mut reg,
            &[("id", Value::Null)],
            &[("v", Pdf1::discrete(vec![(21.0, 0.4)]).unwrap())],
        )
        .unwrap();
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 18.0),
            Predicate::cmp("v", CmpOp::Le, 22.0),
        ]);
        let ids = |r: &Relation| -> Vec<String> {
            r.tuples.iter().map(|t| format!("{:?}", t.certain[0])).collect()
        };
        // Plain scan: no index infrastructure attached.
        let scan =
            threshold_pred(&rel, &pred, CmpOp::Gt, 0.5, &mut reg, &ExecOptions::default()).unwrap();
        // Fallback path: a session-level catalog exists but holds no
        // persistent index for this column.
        let stats = Arc::new(orion_obs::ExecStats::new());
        let opts = ExecOptions {
            indexes: Some(crate::pindex::IndexHandle::new()),
            ..ExecOptions::default().with_stats(stats.clone())
        };
        let pruned = threshold_pred(&rel, &pred, CmpOp::Gt, 0.5, &mut reg, &opts).unwrap();
        assert_eq!(ids(&scan), vec!["Int(1)"]);
        assert_eq!(ids(&scan), ids(&pruned));
        let snap = stats.snapshot();
        assert_eq!(snap.index_probes, 3, "whole relation examined against the mask");
        assert_eq!(snap.index_pruned, 2, "far support and low mass skip evaluation");
        // A conjunct on the NULL-bearing certain column spans two columns,
        // so no interval extracts and the fallback stands down — NULL
        // three-valued logic stays entirely in the per-tuple evaluator,
        // and both paths agree the NULL row fails.
        let pred3 = Predicate::And(vec![
            Predicate::cmp("id", CmpOp::Eq, 1i64),
            Predicate::cmp("v", CmpOp::Le, 22.0),
        ]);
        let a = threshold_pred(&rel, &pred3, CmpOp::Gt, 0.1, &mut reg, &ExecOptions::default())
            .unwrap();
        let b = threshold_pred(&rel, &pred3, CmpOp::Gt, 0.1, &mut reg, &opts).unwrap();
        assert_eq!(ids(&a), vec!["Int(1)"]);
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(stats.snapshot().index_probes, 3, "fallback did not engage for pred3");
    }

    #[test]
    fn certain_predicate_probability_is_zero_or_one() {
        let (rel, reg) = readings();
        let opts = ExecOptions::default();
        let p = predicate_probability(
            &rel,
            &rel.tuples[0],
            &Predicate::cmp("id", CmpOp::Eq, 1i64),
            &reg,
            &opts,
        )
        .unwrap();
        assert_eq!(p, 1.0);
        let p = predicate_probability(
            &rel,
            &rel.tuples[0],
            &Predicate::cmp("id", CmpOp::Eq, 2i64),
            &reg,
            &opts,
        )
        .unwrap();
        assert_eq!(p, 0.0);
    }
}
