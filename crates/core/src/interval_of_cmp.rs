//! Converts comparison atoms into floor regions.
//!
//! For a predicate `x op c`, the *failing region* is the part of the domain
//! where the predicate is false — the region the `floor` operation zeroes
//! (Section III-A). Regions are closed interval unions; the measure-zero
//! boundary overlap is irrelevant for continuous pdfs, and discrete pdfs
//! resolve endpoint membership through exact point containment, so strict
//! and non-strict comparisons floor the correct points:
//! e.g. `x < 5` fails on `[5, +inf)` and `x <= 5` fails on `(5, +inf)`,
//! which we represent as `[nextafter(5), +inf)`.

use crate::predicate::CmpOp;
use orion_pdf::prelude::{Interval, RegionSet};

/// The region where `x op c` is FALSE.
pub fn failing_region(op: CmpOp, c: f64) -> RegionSet {
    match op {
        // x < c fails when x >= c.
        CmpOp::Lt => RegionSet::from_interval(Interval::at_least(c)),
        // x <= c fails when x > c.
        CmpOp::Le => RegionSet::from_interval(Interval::at_least(c.next_up())),
        // x > c fails when x <= c.
        CmpOp::Gt => RegionSet::from_interval(Interval::at_most(c)),
        // x >= c fails when x < c.
        CmpOp::Ge => RegionSet::from_interval(Interval::at_most(c.next_down())),
        // x = c fails everywhere except the point c.
        CmpOp::Eq => RegionSet::from_intervals(vec![
            Interval::new(f64::NEG_INFINITY, c.next_down()),
            Interval::new(c.next_up(), f64::INFINITY),
        ]),
        // x <> c fails only at the point c.
        CmpOp::Ne => RegionSet::from_interval(Interval::point(c)),
    }
}

/// The region where `x op c` is TRUE (complement of the failing region).
pub fn passing_region(op: CmpOp, c: f64) -> RegionSet {
    failing_region(op, c).complement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_vs_nonstrict_boundaries() {
        let lt = failing_region(CmpOp::Lt, 5.0);
        assert!(lt.contains(5.0), "x<5 fails at 5");
        let le = failing_region(CmpOp::Le, 5.0);
        assert!(!le.contains(5.0), "x<=5 passes at 5");
        assert!(le.contains(5.000001));
        let gt = failing_region(CmpOp::Gt, 5.0);
        assert!(gt.contains(5.0) && gt.contains(-1e9) && !gt.contains(5.1));
        let ge = failing_region(CmpOp::Ge, 5.0);
        assert!(!ge.contains(5.0) && ge.contains(4.999999));
    }

    #[test]
    fn eq_and_ne() {
        let eq = failing_region(CmpOp::Eq, 3.0);
        assert!(!eq.contains(3.0) && eq.contains(3.0000001) && eq.contains(-7.0));
        let ne = failing_region(CmpOp::Ne, 3.0);
        assert!(ne.contains(3.0) && !ne.contains(3.0000001));
    }

    #[test]
    fn passing_complements_failing() {
        // Away from the boundary the regions are exact complements; the
        // boundary point itself may belong to both closed representations
        // (measure zero for continuous pdfs; discrete floors use exact
        // point containment on the *failing* region only).
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            let pass = passing_region(op, 2.0);
            let fail = failing_region(op, 2.0);
            for &x in &[-10.0, 1.999, 2.001, 50.0] {
                assert_ne!(pass.contains(x), fail.contains(x), "{op:?} at {x}");
            }
            assert!(pass.contains(2.0) || fail.contains(2.0), "{op:?} boundary covered");
        }
    }
}
