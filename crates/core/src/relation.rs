//! Probabilistic relations: a probabilistic schema plus tuples, with
//! history-registering insertion and phantom-preserving deletion.

use crate::error::{EngineError, Result};
use crate::history::{Ancestors, HistoryRegistry};
use crate::schema::{AttrId, ProbSchema};
use crate::tuple::{PdfNode, ProbTuple};
use crate::value::Value;
use orion_pdf::prelude::{JointPdf, Pdf1};

/// One alternative of a mutual-exclusion group: its certain values and the
/// independent pdfs of its uncertain columns.
pub type MutexAlternative<'a> = (Vec<(&'a str, Value)>, Vec<(&'a str, Pdf1)>);

/// A probabilistic relation.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Relation name (informational).
    pub name: String,
    /// The probabilistic schema `(Σ, Δ)`.
    pub schema: ProbSchema,
    /// The tuples.
    pub tuples: Vec<ProbTuple>,
}

impl Relation {
    /// An empty relation.
    pub fn new(name: impl Into<String>, schema: ProbSchema) -> Self {
        Relation { name: name.into(), schema, tuples: Vec::new() }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a base tuple.
    ///
    /// `certain` gives values for the certain columns by name; `uncertain`
    /// gives one pdf per dependency set, keyed by the set's column names in
    /// the pdf's dimension order. Every dependency set of the schema must
    /// be supplied (partial pdfs — total mass < 1 — are allowed and encode
    /// a tuple that only probably exists, Section II-B).
    ///
    /// Each dependency set's joint pdf is registered in `reg` as a base pdf
    /// and becomes its own single ancestor (Definition 2).
    pub fn insert(
        &mut self,
        reg: &mut HistoryRegistry,
        certain: &[(&str, Value)],
        uncertain: Vec<(Vec<&str>, JointPdf)>,
    ) -> Result<()> {
        let mut row = vec![Value::Null; self.schema.columns().len()];
        for (name, v) in certain {
            let idx = self
                .schema
                .index_of(name)
                .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
            if self.schema.columns()[idx].uncertain {
                return Err(EngineError::Schema(format!(
                    "column '{name}' is uncertain; supply a pdf instead"
                )));
            }
            row[idx] = v.clone();
        }
        let mut nodes = Vec::with_capacity(uncertain.len());
        let mut covered: Vec<AttrId> = Vec::new();
        for (names, joint) in uncertain {
            let mut attrs = Vec::with_capacity(names.len());
            for name in &names {
                let col = self
                    .schema
                    .column(name)
                    .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
                if !col.uncertain {
                    return Err(EngineError::Schema(format!(
                        "column '{name}' is certain; supply a value instead"
                    )));
                }
                attrs.push(col.id);
            }
            if joint.arity() != attrs.len() {
                return Err(EngineError::Schema(format!(
                    "pdf arity {} does not match {} attributes",
                    joint.arity(),
                    attrs.len()
                )));
            }
            covered.extend(&attrs);
            let id = reg.register(attrs.clone(), joint.clone());
            let ancestors: Ancestors = [id].into_iter().collect();
            reg.add_refs(&ancestors);
            nodes.push(PdfNode::base(id, &attrs, joint, ancestors));
        }
        for c in self.schema.columns() {
            if c.uncertain && !covered.contains(&c.id) {
                return Err(EngineError::Schema(format!(
                    "uncertain column '{}' has no pdf",
                    c.name
                )));
            }
        }
        self.tuples.push(ProbTuple { certain: row, nodes });
        Ok(())
    }

    /// Inserts a tuple from pre-built pdf nodes (advanced: inter-tuple
    /// correlation via shared phantom ancestors). Every uncertain column
    /// must be covered by exactly one node's visible dimensions; phantom
    /// dimensions and extra constraint nodes are allowed. Reference counts
    /// for all ancestors are taken.
    pub fn insert_raw(
        &mut self,
        reg: &mut HistoryRegistry,
        certain: &[(&str, Value)],
        nodes: Vec<PdfNode>,
    ) -> Result<()> {
        let mut row = vec![Value::Null; self.schema.columns().len()];
        for (name, v) in certain {
            let idx = self
                .schema
                .index_of(name)
                .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
            if self.schema.columns()[idx].uncertain {
                return Err(EngineError::Schema(format!(
                    "column '{name}' is uncertain; supply a pdf instead"
                )));
            }
            row[idx] = v.clone();
        }
        for c in self.schema.columns().iter().filter(|c| c.uncertain) {
            let covering = nodes.iter().filter(|n| n.covers(c.id)).count();
            if covering != 1 {
                return Err(EngineError::Schema(format!(
                    "uncertain column '{}' covered by {covering} nodes (need exactly 1)",
                    c.name
                )));
            }
        }
        for n in &nodes {
            reg.add_refs(&n.ancestors);
        }
        self.tuples.push(ProbTuple { certain: row, nodes });
        Ok(())
    }

    /// Inserts a group of **mutually exclusive** alternative tuples — the
    /// paper's tuple-uncertainty constraint, modeled exactly as Definition
    /// 2 suggests: a shared *phantom ancestor* (a selector variable) that
    /// every alternative's existence derives from. Alternative `i` exists
    /// with probability `probs[i]`; at most one exists in any possible
    /// world; with probability `1 - Σ probs` none does.
    ///
    /// Joining or recombining two alternatives of the same group later
    /// yields a vacuous (impossible) result through the ordinary
    /// history-aware merge — no special casing anywhere downstream.
    pub fn insert_mutex_group(
        &mut self,
        reg: &mut HistoryRegistry,
        alternatives: Vec<MutexAlternative<'_>>,
        probs: &[f64],
    ) -> Result<()> {
        if alternatives.len() != probs.len() || alternatives.is_empty() {
            return Err(EngineError::Operator("need one probability per alternative".into()));
        }
        let total: f64 = probs.iter().sum();
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) || total > 1.0 + 1e-9 {
            return Err(EngineError::Operator(format!(
                "alternative probabilities must be in [0,1] and sum to <= 1 (got {total})"
            )));
        }
        // Validate every alternative's columns up front so a failure leaves
        // the relation and registry untouched (atomic insert).
        for (certain, pdfs) in &alternatives {
            for (name, _) in certain {
                let col = self
                    .schema
                    .column(name)
                    .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
                if col.uncertain {
                    return Err(EngineError::Schema(format!(
                        "column '{name}' is uncertain; supply a pdf instead"
                    )));
                }
            }
            for (name, _) in pdfs {
                let col = self
                    .schema
                    .column(name)
                    .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
                if !col.uncertain {
                    return Err(EngineError::Schema(format!(
                        "column '{name}' is certain; supply a value instead"
                    )));
                }
            }
            for c in self.schema.columns().iter().filter(|c| c.uncertain) {
                if pdfs.iter().filter(|(n, _)| *n == c.name).count() != 1 {
                    return Err(EngineError::Schema(format!(
                        "uncertain column '{}' needs exactly one pdf per alternative",
                        c.name
                    )));
                }
            }
        }
        // The shared phantom ancestor: a selector over {0, .., k-1}.
        let selector = JointPdf::from_pdf1(Pdf1::discrete(
            probs.iter().enumerate().map(|(i, &p)| (i as f64, p)).collect(),
        )?);
        let phantom_attr = crate::schema::fresh_attr_id();
        let selector_id = reg.register(vec![phantom_attr], selector.clone());
        let anc: Ancestors = [selector_id].into_iter().collect();
        for (i, (certain, pdfs)) in alternatives.into_iter().enumerate() {
            // The alternative's own attribute nodes.
            let mut nodes = Vec::with_capacity(pdfs.len() + 1);
            for (name, p) in &pdfs {
                let col = self
                    .schema
                    .column(name)
                    .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
                let joint = JointPdf::from_pdf1(p.clone());
                let id = reg.register(vec![col.id], joint.clone());
                nodes.push(PdfNode::base(id, &[col.id], joint, [id].into_iter().collect()));
            }
            // The existence-constraint node: the selector floored to i
            // (zero everywhere the selector differs from i).
            let not_i =
                crate::interval_of_cmp::failing_region(crate::predicate::CmpOp::Eq, i as f64);
            let floored = selector.floor_axis(0, &not_i);
            nodes.push(PdfNode::new(
                vec![crate::tuple::NodeDim {
                    var: crate::tuple::VarId { base: selector_id, dim: 0 },
                    column: None,
                }],
                floored,
                anc.clone(),
            ));
            self.insert_raw(reg, &certain, nodes)?;
        }
        Ok(())
    }

    /// Convenience: inserts a tuple whose uncertain columns are all
    /// independent 1-D pdfs.
    pub fn insert_simple(
        &mut self,
        reg: &mut HistoryRegistry,
        certain: &[(&str, Value)],
        pdfs: &[(&str, Pdf1)],
    ) -> Result<()> {
        let uncertain =
            pdfs.iter().map(|(name, p)| (vec![*name], JointPdf::from_pdf1(p.clone()))).collect();
        self.insert(reg, certain, uncertain)
    }

    /// Deletes the tuples selected by `keep(tuple) == false`, handling
    /// history bookkeeping: each deleted tuple's *base* pdfs become
    /// phantoms while still referenced elsewhere (Section II-C).
    ///
    /// A base pdf *shared* across tuples (a mutex group's selector) is
    /// marked phantom as soon as any of its alternatives is deleted; this
    /// only defers reclamation to the moment the last referencing node is
    /// released — lookups through still-live siblings keep working.
    pub fn delete_where(
        &mut self,
        reg: &mut HistoryRegistry,
        mut remove: impl FnMut(&ProbTuple) -> bool,
    ) -> usize {
        let mut removed = 0;
        let mut kept = Vec::with_capacity(self.tuples.len());
        for t in self.tuples.drain(..) {
            if remove(&t) {
                removed += 1;
                for n in &t.nodes {
                    reg.release_refs(&n.ancestors);
                    // A base node is its own single ancestor.
                    if n.ancestors.len() == 1 {
                        let id = *n.ancestors.iter().next().expect("len checked");
                        reg.delete_base(id);
                    }
                }
            } else {
                kept.push(t);
            }
        }
        self.tuples = kept;
        removed
    }

    /// Releases all history references held by this relation's tuples —
    /// call when discarding a derived relation.
    pub fn release(&self, reg: &mut HistoryRegistry) {
        for t in &self.tuples {
            for n in &t.nodes {
                reg.release_refs(&n.ancestors);
            }
        }
    }

    /// The visible marginal pdf of an uncertain column in one tuple.
    pub fn marginal(&self, tuple: usize, column: &str) -> Result<Pdf1> {
        let col = self
            .schema
            .column(column)
            .ok_or_else(|| EngineError::Schema(format!("unknown column '{column}'")))?;
        let t = self
            .tuples
            .get(tuple)
            .ok_or_else(|| EngineError::Operator(format!("tuple {tuple} out of range")))?;
        let node = t
            .node_for(col.id)
            .ok_or_else(|| EngineError::Operator(format!("column '{column}' is certain")))?;
        node.marginal(col.id)
            .ok_or_else(|| EngineError::Operator("marginal extraction failed".into()))
    }

    /// The certain value of a column in one tuple.
    pub fn value(&self, tuple: usize, column: &str) -> Result<&Value> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| EngineError::Schema(format!("unknown column '{column}'")))?;
        self.tuples
            .get(tuple)
            .map(|t| &t.certain[idx])
            .ok_or_else(|| EngineError::Operator(format!("tuple {tuple} out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use orion_pdf::prelude::*;

    fn sensor_relation() -> (Relation, HistoryRegistry) {
        // The paper's Table I.
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("loc", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("readings", schema);
        let mut reg = HistoryRegistry::new();
        for (id, mean, var) in [(1, 20.0, 5.0), (2, 25.0, 4.0), (3, 13.0, 1.0)] {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("loc", Pdf1::gaussian(mean, var).unwrap())],
            )
            .unwrap();
        }
        (rel, reg)
    }

    #[test]
    fn table1_sensor_relation() {
        let (rel, reg) = sensor_relation();
        assert_eq!(rel.len(), 3);
        assert_eq!(reg.len(), 3, "one base pdf per tuple");
        assert_eq!(rel.value(0, "id").unwrap(), &Value::Int(1));
        let m = rel.marginal(1, "loc").unwrap();
        assert!((m.expected_value().unwrap() - 25.0).abs() < 1e-9);
        assert_eq!(m.to_string(), "Gaus(25,4)");
    }

    #[test]
    fn insert_validation() {
        let (mut rel, mut reg) = sensor_relation();
        // Pdf for a certain column.
        assert!(rel.insert_simple(&mut reg, &[], &[("id", Pdf1::certain(1.0))]).is_err());
        // Value for an uncertain column.
        assert!(rel
            .insert(
                &mut reg,
                &[("loc", Value::Real(1.0))],
                vec![(vec!["loc"], JointPdf::from_pdf1(Pdf1::certain(1.0)))]
            )
            .is_err());
        // Missing pdf.
        assert!(rel.insert(&mut reg, &[("id", Value::Int(9))], vec![]).is_err());
        // Unknown column.
        assert!(rel.insert_simple(&mut reg, &[("nope", Value::Int(1))], &[]).is_err());
        // Arity mismatch.
        assert!(rel
            .insert(
                &mut reg,
                &[("id", Value::Int(9))],
                vec![(
                    vec!["loc"],
                    JointPdf::independent(vec![Pdf1::certain(1.0), Pdf1::certain(2.0)]).unwrap()
                )]
            )
            .is_err());
    }

    #[test]
    fn partial_pdf_insert_encodes_maybe_tuple() {
        // Table IV row 2: tuple exists with probability 0.8.
        let schema = ProbSchema::new(
            vec![
                ("a", ColumnType::Int, false),
                ("b", ColumnType::Real, true),
                ("c", ColumnType::Real, true),
            ],
            vec![vec!["b", "c"]],
        )
        .unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        let joint = JointPdf::from_points(
            JointDiscrete::from_points(2, vec![(vec![4.0, 7.0], 0.2), (vec![4.1, 3.7], 0.6)])
                .unwrap(),
        );
        rel.insert(&mut reg, &[("a", Value::Int(2))], vec![(vec!["b", "c"], joint)]).unwrap();
        assert!((rel.tuples[0].naive_existence() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn delete_without_references_drops_base() {
        let (mut rel, mut reg) = sensor_relation();
        let n = rel.delete_where(&mut reg, |t| t.certain[0] == Value::Int(2));
        assert_eq!(n, 1);
        assert_eq!(rel.len(), 2);
        assert_eq!(reg.len(), 2, "unreferenced base removed");
    }

    #[test]
    fn delete_with_reference_keeps_phantom() {
        let (mut rel, mut reg) = sensor_relation();
        // Simulate a derived relation referencing tuple 0's base pdf.
        let anc = rel.tuples[0].nodes[0].ancestors.clone();
        reg.add_refs(&anc);
        rel.delete_where(&mut reg, |t| t.certain[0] == Value::Int(1));
        assert_eq!(reg.len(), 3, "phantom survives");
        let id = *anc.iter().next().unwrap();
        assert!(reg.base(id).unwrap().phantom);
        reg.release_refs(&anc);
        assert!(reg.base(id).is_err(), "reclaimed after last reference");
    }

    #[test]
    fn release_decrements_refs() {
        let (rel, mut reg) = sensor_relation();
        let id = *rel.tuples[0].nodes[0].ancestors.iter().next().unwrap();
        assert_eq!(reg.ref_count(id), 1);
        rel.release(&mut reg);
        assert_eq!(reg.ref_count(id), 0);
    }
}
