//! Planner-feedback store: per-(table, operator) cardinality-misestimate
//! summaries folded from profiled executions.
//!
//! `EXPLAIN ANALYZE` already annotates every operator profile with the
//! planner's `est_rows` next to the measured `tuples_out`
//! ([`crate::plan::annotate_estimates`]). This module keeps that signal:
//! after each profiled execution the executor folds the (estimate, actual)
//! pairs into a [`PlanFeedbackStore`], summarized as q-error — the standard
//! symmetric misestimate ratio `max(est, actual) / min(est, actual)` — per
//! base table and operator kind. The store surfaces as the
//! `orion.plan_feedback` virtual table and round-trips through JSON so the
//! durable engine can persist it alongside the workload repository, giving a
//! future join-ordering cost model measured errors instead of magic
//! constants.

use crate::plan::Plan;
use orion_obs::{json, OpProfile};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// The q-error of a cardinality estimate: `max(est, actual) / min(est,
/// actual)`, with both sides floored at one row so empty results stay
/// finite. 1.0 is a perfect estimate; q-error is symmetric in over- and
/// under-estimation.
pub fn q_error(est: u64, actual: u64) -> f64 {
    let e = est.max(1) as f64;
    let a = actual.max(1) as f64;
    (e / a).max(a / e)
}

/// Misestimate summary for one (table, operator-kind) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackSummary {
    /// Base table the operator subtree reads (`*` when a join mixes
    /// tables).
    pub table: String,
    /// Operator name as profiled (`Scan`, `ThresholdPred`, `Join`, ...).
    pub op: String,
    /// Observations folded in.
    pub n: u64,
    /// Worst q-error seen.
    pub max_q: f64,
    /// Sum of q-errors (mean is `sum_q / n`).
    pub sum_q: f64,
    /// Estimate from the most recent observation.
    pub last_est: u64,
    /// Actual rows from the most recent observation.
    pub last_actual: u64,
}

impl FeedbackSummary {
    /// Mean q-error across observations.
    pub fn mean_q(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.sum_q / self.n as f64
        }
    }
}

/// Thread-safe store of [`FeedbackSummary`] keyed by (table, operator).
/// Shared via `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct PlanFeedbackStore {
    inner: Mutex<BTreeMap<(String, String), FeedbackSummary>>,
}

impl PlanFeedbackStore {
    /// An empty store.
    pub fn new() -> PlanFeedbackStore {
        PlanFeedbackStore::default()
    }

    /// Folds one (estimate, actual) observation into the summary for
    /// `(table, op)`.
    pub fn observe(&self, table: &str, op: &str, est: u64, actual: u64) {
        let q = q_error(est, actual);
        let mut inner = self.inner.lock();
        let entry =
            inner.entry((table.to_string(), op.to_string())).or_insert_with(|| FeedbackSummary {
                table: table.to_string(),
                op: op.to_string(),
                n: 0,
                max_q: 1.0,
                sum_q: 0.0,
                last_est: 0,
                last_actual: 0,
            });
        entry.n += 1;
        entry.sum_q += q;
        entry.max_q = entry.max_q.max(q);
        entry.last_est = est;
        entry.last_actual = actual;
    }

    /// Walks a profiled plan, folding every operator's annotated `est_rows`
    /// against its measured `tuples_out`. The traversal mirrors
    /// [`crate::plan::annotate_estimates`]: profile children line up
    /// positionally with the plan's children, so the same walk attributes
    /// each profile node to its plan operator.
    pub fn fold(&self, profile: &OpProfile, plan: &Plan) {
        if let Some(est) = profile.est_rows {
            let table = plan_table(plan).unwrap_or("*");
            self.observe(table, &profile.name, est, profile.stats.tuples_out);
        }
        match plan {
            Plan::Scan(_) => {}
            Plan::Select(p, _)
            | Plan::Project(p, _)
            | Plan::ThresholdAttrs(p, ..)
            | Plan::ThresholdPred(p, ..) => {
                if let Some(child) = profile.children.first() {
                    self.fold(child, p);
                }
            }
            Plan::Join(l, r, _) => {
                let mut kids = profile.children.iter();
                if let Some(lp) = kids.next() {
                    self.fold(lp, l);
                }
                if let Some(rp) = kids.next() {
                    self.fold(rp, r);
                }
            }
        }
    }

    /// Every summary, sorted by (table, operator) — the row source for
    /// `orion.plan_feedback`.
    pub fn summaries(&self) -> Vec<FeedbackSummary> {
        self.inner.lock().values().cloned().collect()
    }

    /// Number of (table, operator) pairs tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no observations have been folded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every summary.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }

    /// JSON form, round-tripping through [`PlanFeedbackStore::load_json`].
    pub fn to_json(&self) -> json::Value {
        let mut arr = json::Value::array();
        for s in self.summaries() {
            arr.push(
                json::Value::object()
                    .with("table", s.table.as_str())
                    .with("op", s.op.as_str())
                    .with("n", s.n)
                    .with("max_q", s.max_q)
                    .with("sum_q", s.sum_q)
                    .with("last_est", s.last_est)
                    .with("last_actual", s.last_actual),
            );
        }
        json::Value::object().with("feedback", arr)
    }

    /// Merges a [`PlanFeedbackStore::to_json`] document back in (counts and
    /// q-error sums add, max takes the max, last-seen pairs overwrite).
    pub fn load_json(&self, doc: &json::Value) -> Result<(), String> {
        let arr = doc
            .get("feedback")
            .and_then(json::Value::as_array)
            .ok_or("plan-feedback doc missing feedback array")?;
        let mut inner = self.inner.lock();
        for s in arr {
            let table =
                s.get("table").and_then(json::Value::as_str).ok_or("summary missing table")?;
            let op = s.get("op").and_then(json::Value::as_str).ok_or("summary missing op")?;
            let get_u = |k: &str| s.get(k).and_then(json::Value::as_u64).unwrap_or(0);
            let get_f = |k: &str| s.get(k).and_then(json::Value::as_f64).unwrap_or(0.0);
            let entry = inner.entry((table.to_string(), op.to_string())).or_insert_with(|| {
                FeedbackSummary {
                    table: table.to_string(),
                    op: op.to_string(),
                    n: 0,
                    max_q: 1.0,
                    sum_q: 0.0,
                    last_est: 0,
                    last_actual: 0,
                }
            });
            entry.n += get_u("n");
            entry.sum_q += get_f("sum_q");
            entry.max_q = entry.max_q.max(get_f("max_q"));
            entry.last_est = get_u("last_est");
            entry.last_actual = get_u("last_actual");
        }
        Ok(())
    }
}

/// The base table a plan subtree reads: a scan's name threaded up through
/// the unary operators. Joins mix tables, so attribution stops there.
fn plan_table(plan: &Plan) -> Option<&str> {
    match plan {
        Plan::Scan(name) => Some(name),
        Plan::Select(p, _)
        | Plan::Project(p, _)
        | Plan::ThresholdAttrs(p, ..)
        | Plan::ThresholdPred(p, ..) => plan_table(p),
        Plan::Join(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use orion_obs::ExecStatsSnapshot;

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10, 10), 1.0);
        assert_eq!(q_error(100, 10), 10.0);
        assert_eq!(q_error(10, 100), 10.0);
        // Zero rows floor to one instead of dividing by zero.
        assert_eq!(q_error(0, 0), 1.0);
        assert_eq!(q_error(8, 0), 8.0);
    }

    #[test]
    fn observe_accumulates_max_and_mean() {
        let store = PlanFeedbackStore::new();
        store.observe("readings", "Scan", 100, 100);
        store.observe("readings", "Scan", 100, 25);
        let s = &store.summaries()[0];
        assert_eq!((s.table.as_str(), s.op.as_str()), ("readings", "Scan"));
        assert_eq!(s.n, 2);
        assert_eq!(s.max_q, 4.0);
        assert!((s.mean_q() - 2.5).abs() < 1e-12);
        assert_eq!((s.last_est, s.last_actual), (100, 25));
    }

    fn profiled(name: &str, est: u64, actual: u64, children: Vec<OpProfile>) -> OpProfile {
        let mut p = OpProfile::new(name, "")
            .with_stats(ExecStatsSnapshot { tuples_out: actual, ..Default::default() });
        p.est_rows = Some(est);
        p.children = children;
        p
    }

    #[test]
    fn fold_mirrors_plan_walk_and_attributes_tables() {
        // σ over scan(readings) joined with scan(sites): the join node gets
        // "*", each side keeps its base table.
        let plan = Plan::Join(
            Box::new(Plan::scan("readings").select(Predicate::cmp("v", CmpOp::Lt, 50.0))),
            Box::new(Plan::scan("sites")),
            None,
        );
        let profile = profiled(
            "Join",
            40,
            60,
            vec![
                profiled("Select", 10, 20, vec![profiled("Scan", 100, 100, vec![])]),
                profiled("Scan", 5, 5, vec![]),
            ],
        );
        let store = PlanFeedbackStore::new();
        store.fold(&profile, &plan);
        let keys: Vec<(String, String)> =
            store.summaries().iter().map(|s| (s.table.clone(), s.op.clone())).collect();
        assert_eq!(
            keys,
            vec![
                ("*".to_string(), "Join".to_string()),
                ("readings".to_string(), "Scan".to_string()),
                ("readings".to_string(), "Select".to_string()),
                ("sites".to_string(), "Scan".to_string()),
            ]
        );
        let join = &store.summaries()[0];
        assert!((join.max_q - 1.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_merges() {
        let store = PlanFeedbackStore::new();
        store.observe("t", "Scan", 10, 40);
        let doc = store.to_json();
        let restored = PlanFeedbackStore::new();
        restored.load_json(&doc).unwrap();
        restored.load_json(&doc).unwrap();
        let s = &restored.summaries()[0];
        assert_eq!(s.n, 2);
        assert_eq!(s.max_q, 4.0);
        assert!((s.sum_q - 8.0).abs() < 1e-12);
    }
}
