//! Probabilistic schemas: `(Σ_T, Δ_T)` — regular column typing plus
//! dependency information (paper Section II).
//!
//! Every attribute carries a globally unique [`AttrId`] assigned at table
//! creation, so renames and joins never confuse attribute identity — the
//! history mechanism (Section II-C) relies on identity, not names.

use crate::error::{EngineError, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique attribute identity.
pub type AttrId = u64;

static NEXT_ATTR: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh attribute id.
pub fn fresh_attr_id() -> AttrId {
    NEXT_ATTR.fetch_add(1, Ordering::Relaxed)
}

/// Raises the allocator above `max_seen`, so ids loaded from a saved
/// database never collide with freshly created columns.
pub fn ensure_attr_floor(max_seen: AttrId) {
    NEXT_ATTR.fetch_max(max_seen + 1, Ordering::Relaxed);
}

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Real,
    Text,
    Bool,
}

impl ColumnType {
    /// Whether pdfs may be declared over this type (pdfs live on ℝ).
    pub fn supports_uncertainty(&self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Real)
    }
}

/// One column of a probabilistic schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Stable identity (survives renames and joins).
    pub id: AttrId,
    /// Display name, unique within its relation.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// Whether the column is uncertain (pdf-valued).
    pub uncertain: bool,
}

/// The probabilistic schema `(Σ, Δ)` of a relation.
///
/// `deps` partitions the uncertain columns into dependency sets: columns in
/// the same set are jointly distributed within each tuple. Uncertain
/// columns not mentioned get their own singleton set.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbSchema {
    columns: Vec<Column>,
    deps: Vec<Vec<AttrId>>,
}

impl ProbSchema {
    /// Builds a schema from `(name, type, uncertain)` column specs and
    /// dependency groups given by column name. Unlisted uncertain columns
    /// become singleton dependency sets.
    pub fn new(cols: Vec<(&str, ColumnType, bool)>, dep_groups: Vec<Vec<&str>>) -> Result<Self> {
        let mut columns = Vec::with_capacity(cols.len());
        for (name, ty, uncertain) in cols {
            if uncertain && !ty.supports_uncertainty() {
                return Err(EngineError::Schema(format!(
                    "column '{name}' of type {ty:?} cannot be uncertain"
                )));
            }
            if columns.iter().any(|c: &Column| c.name == name) {
                return Err(EngineError::Schema(format!("duplicate column '{name}'")));
            }
            columns.push(Column { id: fresh_attr_id(), name: name.to_string(), ty, uncertain });
        }
        let mut deps: Vec<Vec<AttrId>> = Vec::new();
        let mut grouped: Vec<AttrId> = Vec::new();
        for group in dep_groups {
            let mut ids = Vec::with_capacity(group.len());
            for name in group {
                let col = columns
                    .iter()
                    .find(|c| c.name == name)
                    .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
                if !col.uncertain {
                    return Err(EngineError::Schema(format!(
                        "certain column '{name}' cannot join a dependency set"
                    )));
                }
                if grouped.contains(&col.id) {
                    return Err(EngineError::Schema(format!(
                        "column '{name}' appears in two dependency sets"
                    )));
                }
                grouped.push(col.id);
                ids.push(col.id);
            }
            if !ids.is_empty() {
                deps.push(ids);
            }
        }
        for c in &columns {
            if c.uncertain && !grouped.contains(&c.id) {
                deps.push(vec![c.id]);
            }
        }
        Ok(ProbSchema { columns, deps })
    }

    /// Builds a schema from pre-existing columns (joins, projections).
    pub fn from_columns(columns: Vec<Column>, deps: Vec<Vec<AttrId>>) -> Self {
        ProbSchema { columns, deps }
    }

    /// The visible columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The dependency partition Δ (over visible uncertain columns).
    pub fn deps(&self) -> &[Vec<AttrId>] {
        &self.deps
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Looks up a column by id.
    pub fn column_by_id(&self, id: AttrId) -> Option<&Column> {
        self.columns.iter().find(|c| c.id == id)
    }

    /// Position of a column in the row layout.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Replaces the dependency partition (used after selections merge sets).
    pub fn set_deps(&mut self, deps: Vec<Vec<AttrId>>) {
        self.deps = deps;
    }
}

/// The closure Ω of Definition 4: merges the connected components of a set
/// system (hyper-graph). Input sets that share any element end up merged;
/// the output is a partition of the union.
pub fn closure(sets: &[Vec<AttrId>]) -> Vec<Vec<AttrId>> {
    // Union-find over the distinct elements.
    let mut elems: Vec<AttrId> = sets.iter().flatten().copied().collect();
    elems.sort_unstable();
    elems.dedup();
    let index = |id: AttrId| elems.binary_search(&id).expect("element present");
    let mut parent: Vec<usize> = (0..elems.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for set in sets {
        if let Some(&first) = set.first() {
            let r = find(&mut parent, index(first));
            for &e in &set[1..] {
                let s = find(&mut parent, index(e));
                parent[s] = r;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<AttrId>> = Default::default();
    for (i, &e) in elems.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(e);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_schema() -> ProbSchema {
        ProbSchema::new(
            vec![
                ("id", ColumnType::Int, false),
                ("x", ColumnType::Real, true),
                ("y", ColumnType::Real, true),
            ],
            vec![vec!["x", "y"]],
        )
        .unwrap()
    }

    #[test]
    fn schema_construction_and_lookup() {
        let s = sensor_schema();
        assert_eq!(s.columns().len(), 3);
        assert_eq!(s.deps().len(), 1);
        assert_eq!(s.deps()[0].len(), 2);
        assert!(s.column("id").is_some());
        assert!(!s.column("id").unwrap().uncertain);
        assert!(s.column("x").unwrap().uncertain);
        assert_eq!(s.index_of("y"), Some(2));
        assert!(s.column("z").is_none());
    }

    #[test]
    fn unlisted_uncertain_gets_singleton() {
        let s = ProbSchema::new(
            vec![("a", ColumnType::Real, true), ("b", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        assert_eq!(s.deps().len(), 2);
    }

    #[test]
    fn schema_validation() {
        assert!(ProbSchema::new(vec![("t", ColumnType::Text, true)], vec![]).is_err());
        assert!(ProbSchema::new(
            vec![("a", ColumnType::Int, false), ("a", ColumnType::Int, false)],
            vec![]
        )
        .is_err());
        assert!(ProbSchema::new(vec![("a", ColumnType::Int, false)], vec![vec!["a"]]).is_err());
        assert!(ProbSchema::new(vec![("a", ColumnType::Real, true)], vec![vec!["a"], vec!["a"]])
            .is_err());
        assert!(ProbSchema::new(vec![("a", ColumnType::Real, true)], vec![vec!["b"]]).is_err());
    }

    #[test]
    fn attr_ids_are_unique() {
        let s1 = sensor_schema();
        let s2 = sensor_schema();
        for c1 in s1.columns() {
            for c2 in s2.columns() {
                assert_ne!(c1.id, c2.id);
            }
        }
    }

    #[test]
    fn closure_merges_connected_components() {
        // Paper Section III-C: Δ = {{a,b},{c,d},{e,f}}, A = {b,c,g}
        // => {{a,b,c,d,g},{e,f}}.
        let (a, b, c, d, e, f, g) = (1, 2, 3, 4, 5, 6, 7);
        let merged = closure(&[vec![a, b], vec![c, d], vec![e, f], vec![b, c, g]]);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(&vec![a, b, c, d, g]));
        assert!(merged.contains(&vec![e, f]));
    }

    #[test]
    fn closure_of_disjoint_sets_is_identity() {
        let merged = closure(&[vec![1, 2], vec![3], vec![4, 5]]);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn closure_of_empty_is_empty() {
        assert!(closure(&[]).is_empty());
    }
}
