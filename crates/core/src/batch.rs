//! Columnar batch execution support (DESIGN.md §13).
//!
//! Two pieces live here:
//!
//! * [`ExecMode`] — the row/batch switch threaded through
//!   [`ExecOptions`](crate::select::ExecOptions). Batch mode processes a
//!   morsel at a time ([`crate::exec_par::run_batches`]) and vectorizes the
//!   certain-column predicate work; every probabilistic computation runs
//!   the exact same scalar arithmetic in the same order as row mode, so
//!   results are **bit-identical** across modes (proven by
//!   `tests/batch_equiv.rs`).
//! * [`CertainLanes`] — a columnar view of one chunk's certain values.
//!   Int/Real/Null columns become flat `f64` lanes with a null mask, over
//!   which comparisons run as autovectorizable loops; Text/Bool/mixed
//!   columns fall back to per-row [`Value::compare`]. The lane evaluator
//!   reproduces [`Predicate::eval`]'s three-valued logic exactly, one
//!   tri-state per row.

use crate::predicate::{CmpOp, Predicate, Scalar};
use crate::relation::Relation;
use crate::tuple::ProbTuple;
use crate::value::Value;

/// How the executor walks a relation: tuple-at-a-time or a morsel-sized
/// batch at a time. Both modes produce bit-identical tuples, pdf values and
/// history ids; batch mode additionally reports batch counters through
/// `ExecStats` (`mode=batch batches=… rows/batch=… sel=…%`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Classic tuple-at-a-time execution.
    Row,
    /// Columnar batch execution: one morsel becomes one batch.
    Batch,
}

impl ExecMode {
    /// The mode requested by the `ORION_MODE` environment variable:
    /// `batch` (case-insensitive) selects [`ExecMode::Batch`], anything
    /// else — including unset — selects [`ExecMode::Row`].
    pub fn from_env() -> Self {
        Self::parse(std::env::var("ORION_MODE").ok().as_deref())
    }

    fn parse(v: Option<&str>) -> Self {
        match v {
            Some(s) if s.trim().eq_ignore_ascii_case("batch") => ExecMode::Batch,
            _ => ExecMode::Row,
        }
    }

    /// Whether this is [`ExecMode::Batch`].
    pub fn is_batch(self) -> bool {
        matches!(self, ExecMode::Batch)
    }

    /// Lower-case name, as printed by `EXPLAIN ANALYZE`.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Row => "row",
            ExecMode::Batch => "batch",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One tri-state per chunk row: `1` = true, `0` = false, `-1` = unknown
/// (three-valued logic; selections keep only `1`).
pub(crate) type TriVec = Vec<i8>;

fn tri_of(v: Option<bool>) -> i8 {
    match v {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

/// One column's values across a chunk.
enum Lane {
    /// Numeric lane: every chunk value was `Int`, `Real` or `Null`.
    /// `Int`s are widened to `f64`, which is compare-equivalent —
    /// [`Value::compare`] itself compares mixed numerics through `as_f64`.
    Num { vals: Vec<f64>, null: Vec<bool> },
    /// Fallback lane for Text/Bool/mixed columns: comparisons go through
    /// [`Value::compare`] row by row, indexing the chunk directly.
    Rows { idx: usize },
}

/// Columnar view of one chunk's certain predicate columns.
pub(crate) struct CertainLanes<'a> {
    chunk: &'a [ProbTuple],
    lanes: Vec<(String, Lane)>,
}

impl<'a> CertainLanes<'a> {
    /// Builds lanes for `cols` over `chunk`. Columns absent from the schema
    /// become all-null lanes, matching `certain_lookup`'s `Value::Null`
    /// fallback for unknown names.
    pub(crate) fn build(rel: &Relation, chunk: &'a [ProbTuple], cols: &[String]) -> Self {
        let lanes =
            cols.iter().map(|c| (c.clone(), build_lane(chunk, rel.schema.index_of(c)))).collect();
        CertainLanes { chunk, lanes }
    }

    fn lane(&self, col: &str) -> Option<&Lane> {
        self.lanes.iter().find(|(n, _)| n == col).map(|(_, l)| l)
    }

    /// The actual `Value` of row `i` in `lane`. Num lanes reconstruct as
    /// `Value::Real`, which is compare-equivalent to the original because
    /// Num lanes never held Text or Bool.
    fn value_at(&self, i: usize, lane: &Lane) -> Value {
        match lane {
            Lane::Num { vals, null } => {
                if null[i] {
                    Value::Null
                } else {
                    Value::Real(vals[i])
                }
            }
            Lane::Rows { idx } => self.chunk[i].certain[*idx].clone(),
        }
    }

    /// Evaluates `pred` over every chunk row at once, reproducing
    /// [`Predicate::eval`]'s three-valued logic per row. (Row mode's AND/OR
    /// short-circuit only skips side-effect-free work, so evaluating every
    /// child vector-wide yields identical tri-states.)
    pub(crate) fn eval(&self, pred: &Predicate) -> TriVec {
        let n = self.chunk.len();
        match pred {
            Predicate::Cmp(a, op, b) => self.eval_cmp(a, *op, b),
            Predicate::And(ps) => {
                // Empty conjunction is TRUE; FALSE dominates UNKNOWN.
                let mut acc = vec![1i8; n];
                for p in ps {
                    let child = self.eval(p);
                    for i in 0..n {
                        if child[i] == 0 {
                            acc[i] = 0;
                        } else if child[i] == -1 && acc[i] == 1 {
                            acc[i] = -1;
                        }
                    }
                }
                acc
            }
            Predicate::Or(ps) => {
                // Empty disjunction is FALSE; TRUE dominates UNKNOWN.
                let mut acc = vec![0i8; n];
                for p in ps {
                    let child = self.eval(p);
                    for i in 0..n {
                        if child[i] == 1 {
                            acc[i] = 1;
                        } else if child[i] == -1 && acc[i] == 0 {
                            acc[i] = -1;
                        }
                    }
                }
                acc
            }
            Predicate::Not(p) => {
                let mut v = self.eval(p);
                for x in v.iter_mut() {
                    if *x != -1 {
                        *x = 1 - *x;
                    }
                }
                v
            }
        }
    }

    fn eval_cmp(&self, a: &Scalar, op: CmpOp, b: &Scalar) -> TriVec {
        let n = self.chunk.len();
        match (a, b) {
            (Scalar::Lit(va), Scalar::Lit(vb)) => {
                let tri = tri_of(va.compare(vb).map(|o| op.test(o)));
                vec![tri; n]
            }
            (Scalar::Col(c), Scalar::Lit(v)) => self.eval_col_lit(c, op, v),
            // `lit op col` mirrors to `col flip(op) lit`:
            // op.test(cmp(a,b)) == op.flip().test(cmp(b,a)).
            (Scalar::Lit(v), Scalar::Col(c)) => self.eval_col_lit(c, op.flip(), v),
            (Scalar::Col(ca), Scalar::Col(cb)) => self.eval_col_col(ca, op, cb),
        }
    }

    fn eval_col_lit(&self, col: &str, op: CmpOp, lit: &Value) -> TriVec {
        let n = self.chunk.len();
        match self.lane(col) {
            Some(Lane::Num { vals, null }) => match lit.as_f64() {
                Some(x) => {
                    let mut out = vec![-1i8; n];
                    for i in 0..n {
                        if !null[i] {
                            // partial_cmp None (NaN) is UNKNOWN, exactly
                            // like Value::compare on non-finite numerics.
                            out[i] = match vals[i].partial_cmp(&x) {
                                Some(o) => op.test(o) as i8,
                                None => -1,
                            };
                        }
                    }
                    out
                }
                // Numeric column against Text/Bool/Null never compares.
                None => vec![-1i8; n],
            },
            Some(lane @ Lane::Rows { .. }) => (0..n)
                .map(|i| tri_of(self.value_at(i, lane).compare(lit).map(|o| op.test(o))))
                .collect(),
            None => vec![-1i8; n],
        }
    }

    fn eval_col_col(&self, ca: &str, op: CmpOp, cb: &str) -> TriVec {
        let n = self.chunk.len();
        match (self.lane(ca), self.lane(cb)) {
            (Some(Lane::Num { vals: va, null: na }), Some(Lane::Num { vals: vb, null: nb })) => {
                let mut out = vec![-1i8; n];
                for i in 0..n {
                    if !na[i] && !nb[i] {
                        out[i] = match va[i].partial_cmp(&vb[i]) {
                            Some(o) => op.test(o) as i8,
                            None => -1,
                        };
                    }
                }
                out
            }
            (la, lb) => (0..n)
                .map(|i| {
                    let va = la.map(|l| self.value_at(i, l)).unwrap_or(Value::Null);
                    let vb = lb.map(|l| self.value_at(i, l)).unwrap_or(Value::Null);
                    tri_of(va.compare(&vb).map(|o| op.test(o)))
                })
                .collect(),
        }
    }
}

fn build_lane(chunk: &[ProbTuple], idx: Option<usize>) -> Lane {
    let Some(idx) = idx else {
        // Unknown column: certain_lookup yields Value::Null everywhere.
        return Lane::Num { vals: vec![0.0; chunk.len()], null: vec![true; chunk.len()] };
    };
    let mut vals = Vec::with_capacity(chunk.len());
    let mut null = Vec::with_capacity(chunk.len());
    for t in chunk {
        match &t.certain[idx] {
            Value::Null => {
                vals.push(0.0);
                null.push(true);
            }
            Value::Int(i) => {
                vals.push(*i as f64);
                null.push(false);
            }
            Value::Real(r) => {
                vals.push(*r);
                null.push(false);
            }
            _ => return Lane::Rows { idx },
        }
    }
    Lane::Num { vals, null }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryRegistry;
    use crate::schema::{ColumnType, ProbSchema};
    use crate::select::certain_lookup;

    #[test]
    fn mode_parsing() {
        assert_eq!(ExecMode::parse(None), ExecMode::Row);
        assert_eq!(ExecMode::parse(Some("row")), ExecMode::Row);
        assert_eq!(ExecMode::parse(Some("batch")), ExecMode::Batch);
        assert_eq!(ExecMode::parse(Some("  BaTcH ")), ExecMode::Batch);
        assert_eq!(ExecMode::parse(Some("columnar")), ExecMode::Row);
        assert!(ExecMode::Batch.is_batch());
        assert_eq!(ExecMode::Row.to_string(), "row");
        assert_eq!(ExecMode::Batch.to_string(), "batch");
    }

    /// A relation exercising every lane shape: pure numeric, numeric with
    /// NULLs and NaN, text, bool, and a mixed numeric/text column.
    fn lane_relation() -> Relation {
        let schema = ProbSchema::new(
            vec![
                ("i", ColumnType::Int, false),
                ("r", ColumnType::Real, false),
                ("t", ColumnType::Text, false),
                ("b", ColumnType::Bool, false),
                ("m", ColumnType::Text, false),
            ],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("lanes", schema);
        let rows: Vec<Vec<Value>> = vec![
            vec![
                Value::Int(3),
                Value::Real(2.5),
                Value::Text("abc".into()),
                Value::Bool(true),
                Value::Int(1),
            ],
            vec![
                Value::Int(-7),
                Value::Null,
                Value::Text("abd".into()),
                Value::Bool(false),
                Value::Text("x".into()),
            ],
            vec![Value::Null, Value::Real(f64::NAN), Value::Null, Value::Null, Value::Real(3.0)],
            vec![
                Value::Int(3),
                Value::Real(3.0),
                Value::Text("abc".into()),
                Value::Bool(true),
                Value::Bool(false),
            ],
        ];
        for certain in rows {
            rel.tuples.push(ProbTuple { certain, nodes: vec![] });
        }
        rel
    }

    fn check(rel: &Relation, pred: &Predicate) {
        let lanes = CertainLanes::build(rel, &rel.tuples, &pred.columns());
        let tri = lanes.eval(pred);
        assert_eq!(tri.len(), rel.tuples.len());
        for (i, t) in rel.tuples.iter().enumerate() {
            let want = tri_of(pred.eval(&certain_lookup(rel, t)));
            assert_eq!(tri[i], want, "row {i} of {pred}");
        }
    }

    #[test]
    fn lane_eval_matches_row_eval_case_by_case() {
        let rel = lane_relation();
        let preds = vec![
            // Numeric lane vs numeric literal (NULL and NaN rows -> unknown).
            Predicate::cmp("i", CmpOp::Lt, 0i64),
            Predicate::cmp("r", CmpOp::Ge, 2.5),
            // Mirrored literal-first form exercises op.flip().
            Predicate::Cmp(Scalar::lit(3i64), CmpOp::Gt, Scalar::col("i")),
            // Numeric lane vs non-numeric literal: always unknown.
            Predicate::cmp("i", CmpOp::Eq, "abc"),
            Predicate::cmp("r", CmpOp::Ne, true),
            // Rows lane (text, bool) vs literal.
            Predicate::cmp("t", CmpOp::Le, "abc"),
            Predicate::cmp("b", CmpOp::Eq, true),
            // Num-Num column-column, incl. the NaN row.
            Predicate::cmp_cols("i", CmpOp::Lt, "r"),
            Predicate::cmp_cols("i", CmpOp::Eq, "r"),
            // Mixed lane fallback: Num column vs Rows column.
            Predicate::cmp_cols("i", CmpOp::Eq, "m"),
            Predicate::cmp_cols("t", CmpOp::Eq, "m"),
            // Unknown column behaves like certain_lookup's Null fallback.
            Predicate::cmp("zzz", CmpOp::Eq, 1i64),
            Predicate::cmp_cols("zzz", CmpOp::Lt, "i"),
            // Literal-literal broadcast.
            Predicate::Cmp(Scalar::lit(1i64), CmpOp::Lt, Scalar::lit(2i64)),
            Predicate::Cmp(Scalar::lit(Value::Null), CmpOp::Eq, Scalar::lit(1i64)),
        ];
        for p in &preds {
            check(&rel, p);
        }
    }

    #[test]
    fn lane_eval_matches_three_valued_connectives() {
        let rel = lane_relation();
        let a = Predicate::cmp("i", CmpOp::Gt, 0i64);
        let b = Predicate::cmp("r", CmpOp::Gt, 2.0);
        let t = Predicate::cmp("t", CmpOp::Eq, "abc");
        let combos = vec![
            Predicate::And(vec![a.clone(), b.clone()]),
            Predicate::And(vec![b.clone(), a.clone(), t.clone()]),
            Predicate::Or(vec![a.clone(), b.clone()]),
            Predicate::Or(vec![t.clone(), b.clone()]),
            Predicate::Not(Box::new(a.clone())),
            Predicate::Not(Box::new(Predicate::And(vec![a.clone(), b.clone()]))),
            Predicate::And(vec![]),
            Predicate::Or(vec![]),
            Predicate::Or(vec![
                Predicate::And(vec![a.clone(), Predicate::Not(Box::new(b.clone()))]),
                Predicate::And(vec![t, Predicate::cmp("b", CmpOp::Eq, false)]),
            ]),
        ];
        for p in &combos {
            check(&rel, p);
        }
    }

    #[test]
    fn lanes_over_real_relation_with_defaulted_nulls() {
        // Relation::insert defaults unsupplied certain columns to NULL;
        // lanes must see them exactly as certain_lookup does.
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("w", ColumnType::Int, false)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[("id", Value::Int(1))], &[]).unwrap();
        rel.insert_simple(&mut reg, &[("id", Value::Int(2)), ("w", Value::Int(9))], &[]).unwrap();
        let p = Predicate::cmp("w", CmpOp::Gt, 5i64);
        check(&rel, &p);
        let lanes = CertainLanes::build(&rel, &rel.tuples, &p.columns());
        assert_eq!(lanes.eval(&p), vec![-1, 1]);
    }
}
