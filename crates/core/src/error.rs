//! Engine error type.

use orion_pdf::error::PdfError;
use std::fmt;

/// Errors raised by the probabilistic relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Schema construction or lookup failure.
    Schema(String),
    /// Predicate typing/structure failure.
    Predicate(String),
    /// Operator misuse (unknown relation, arity mismatch, ...).
    Operator(String),
    /// Underlying pdf computation failed.
    Pdf(PdfError),
    /// Storage I/O failure (fatal: the operation should not be retried
    /// verbatim — the file is missing, permissions are wrong, ...).
    Io(String),
    /// Transient I/O failure (interrupted syscall, would-block, timeout):
    /// the same operation may succeed if retried.
    IoRetryable(String),
    /// On-disk corruption: a checksum mismatch, torn page, or undecodable
    /// record. Retrying cannot help; recovery must re-read from a good
    /// snapshot/WAL prefix.
    Corrupt(String),
    /// Snapshot-isolation commit conflict: another transaction committed a
    /// change to a row (or table name) this transaction wrote, between this
    /// transaction's snapshot and its commit. First committer wins; the
    /// loser may retry on a fresh snapshot.
    TxnConflict(String),
}

impl EngineError {
    /// Whether the failed operation may succeed if simply retried.
    /// Transaction conflicts are retryable by definition: a fresh attempt
    /// runs on a fresh snapshot and may no longer collide.
    pub fn is_retryable(&self) -> bool {
        matches!(self, EngineError::IoRetryable(_) | EngineError::TxnConflict(_))
    }

    /// Whether this error signals on-disk corruption (torn page, bad
    /// checksum, undecodable record) rather than an environmental failure.
    pub fn is_corruption(&self) -> bool {
        matches!(self, EngineError::Corrupt(_))
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Schema(m) => write!(f, "schema error: {m}"),
            EngineError::Predicate(m) => write!(f, "predicate error: {m}"),
            EngineError::Operator(m) => write!(f, "operator error: {m}"),
            EngineError::Pdf(e) => write!(f, "pdf error: {e}"),
            EngineError::Io(m) => write!(f, "io error: {m}"),
            EngineError::IoRetryable(m) => write!(f, "transient io error: {m}"),
            EngineError::Corrupt(m) => write!(f, "corruption detected: {m}"),
            EngineError::TxnConflict(m) => write!(f, "transaction conflict: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PdfError> for EngineError {
    fn from(e: PdfError) -> Self {
        EngineError::Pdf(e)
    }
}

impl From<std::io::Error> for EngineError {
    /// Classifies an I/O error: interrupted/would-block/timed-out are
    /// retryable, invalid-data signals corruption, everything else is
    /// fatal. Only `InvalidData` maps to [`EngineError::Corrupt`] — the
    /// storage layer reports every integrity failure it detects (checksum
    /// mismatches, short reads of allocated pages) under that kind. A bare
    /// `UnexpectedEof` can also arise from environmental short-read
    /// conditions (a file another process is truncating, an empty file
    /// reaching a `read_exact` path) that are not on-disk corruption, so
    /// it stays a fatal I/O error rather than triggering recovery.
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                EngineError::IoRetryable(e.to_string())
            }
            ErrorKind::InvalidData => EngineError::Corrupt(e.to_string()),
            _ => EngineError::Io(e.to_string()),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = PdfError::Numeric("nan".into()).into();
        assert_eq!(e.to_string(), "pdf error: numeric error: nan");
        let e: EngineError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn io_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        let retry: EngineError = Error::new(ErrorKind::Interrupted, "EINTR").into();
        assert!(retry.is_retryable());
        assert!(!retry.is_corruption());
        let retry: EngineError = Error::new(ErrorKind::TimedOut, "slow disk").into();
        assert!(retry.is_retryable());

        let corrupt: EngineError = Error::new(ErrorKind::InvalidData, "torn page 3").into();
        assert!(corrupt.is_corruption());
        assert!(!corrupt.is_retryable());
        assert!(corrupt.to_string().starts_with("corruption detected"));

        let fatal: EngineError = Error::new(ErrorKind::NotFound, "gone").into();
        assert!(!fatal.is_retryable());
        assert!(!fatal.is_corruption());

        // A bare short read is environmental (file truncated under us,
        // empty file through a read_exact path) — fatal, not corruption.
        let eof: EngineError = Error::new(ErrorKind::UnexpectedEof, "short read").into();
        assert!(!eof.is_corruption());
        assert!(!eof.is_retryable());
        assert!(eof.to_string().starts_with("io error"));
    }

    #[test]
    fn txn_conflicts_are_retryable() {
        let c = EngineError::TxnConflict("row changed since snapshot".into());
        assert!(c.is_retryable());
        assert!(!c.is_corruption());
        assert!(c.to_string().starts_with("transaction conflict"));
    }
}
