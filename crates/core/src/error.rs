//! Engine error type.

use orion_pdf::error::PdfError;
use std::fmt;

/// Errors raised by the probabilistic relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Schema construction or lookup failure.
    Schema(String),
    /// Predicate typing/structure failure.
    Predicate(String),
    /// Operator misuse (unknown relation, arity mismatch, ...).
    Operator(String),
    /// Underlying pdf computation failed.
    Pdf(PdfError),
    /// Storage I/O failure.
    Io(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Schema(m) => write!(f, "schema error: {m}"),
            EngineError::Predicate(m) => write!(f, "predicate error: {m}"),
            EngineError::Operator(m) => write!(f, "operator error: {m}"),
            EngineError::Pdf(e) => write!(f, "pdf error: {e}"),
            EngineError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PdfError> for EngineError {
    fn from(e: PdfError) -> Self {
        EngineError::Pdf(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = PdfError::Numeric("nan".into()).into();
        assert_eq!(e.to_string(), "pdf error: numeric error: nan");
        let e: EngineError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(e.to_string().contains("missing"));
    }
}
