//! Morsel-driven parallel execution (no external runtime).
//!
//! The relational operators are embarrassingly parallel across tuples: all
//! per-tuple work (`product`, `floor`, `marginalize`, history collapses)
//! reads the [`HistoryRegistry`] immutably, and the only registry mutation
//! an operator performs is reference-count maintenance when a result tuple
//! is pushed. Execution is therefore split into two phases:
//!
//! 1. **Parallel compute** — the input is cut into fixed-size *morsels*
//!    (contiguous index ranges); a scoped-thread worker pool claims morsels
//!    from an atomic cursor and evaluates the per-tuple closure into
//!    per-morsel buffers.
//! 2. **Ordered serial commit** — buffers are stitched back **in input
//!    order**, and the caller applies registry side effects (`add_refs`,
//!    ref transfers) tuple by tuple, exactly as serial execution would.
//!
//! Because phase 1 is pure and phase 2 replays the serial commit order,
//! output tuples, pdf values and history ids are bit-identical to serial
//! execution at any thread count. Errors are deterministic too: the error
//! reported is the one the lowest-indexed failing tuple produced.
//!
//! Bulk insertion ([`insert_batch`]) extends the same protocol to history
//! **id allocation**: phase 1 builds and validates rows in parallel, then
//! the commit phase reserves one contiguous id range
//! ([`HistoryRegistry::reserve_ids`]) and installs base pdfs in row order —
//! the ids are exactly those a serial tuple-at-a-time load would have
//! assigned.

use crate::batch::ExecMode;
use crate::error::{EngineError, Result};
use crate::history::{Ancestors, HistoryRegistry};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::select::ExecOptions;
use crate::tuple::{PdfNode, ProbTuple};
use crate::value::Value;
use orion_obs::Span;
use orion_pdf::prelude::JointPdf;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Default tuples per morsel. Inputs no larger than one morsel run
/// serially, so small relations (and the unit-test corpus) never pay
/// thread spawn costs.
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

/// Resolves a thread-count request: `0` means "auto" — the `ORION_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("ORION_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item, in parallel when the options ask for it,
/// returning the results in input order (phase 1 of the two-phase
/// protocol). `f` receives the item index and must not touch the registry;
/// the caller commits side effects serially over the returned buffer.
pub(crate) fn run_tuples<T, U, F>(items: &[T], opts: &ExecOptions, f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
{
    let morsel = opts.morsel_size.max(1);
    let threads = effective_threads(opts.threads);
    if threads <= 1 || items.len() <= morsel {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let n_morsels = items.len().div_ceil(morsel);
    let workers = threads.min(n_morsels);
    let cursor = AtomicUsize::new(0);
    // Tracing is record-only: spans observe the claim loop but never feed
    // back into scheduling or results (see `tests/parallel_equiv.rs`).
    let tracer = opts.tracer().cloned();
    // Finished morsels, tagged with their index for in-order stitching.
    let done: Mutex<Vec<(usize, Result<Vec<U>>)>> = Mutex::new(Vec::with_capacity(n_morsels));

    let mut p1 = match &tracer {
        Some(t) => t.thread_lane("exec").span("phase1.compute", "exec"),
        None => Span::noop(),
    };
    if p1.is_recording() {
        p1.arg("morsels", n_morsels as u64);
        p1.arg("workers", workers as u64);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (cursor, done, f, tracer) = (&cursor, &done, &f, &tracer);
            handles.push(scope.spawn(move || {
                // One fresh trace lane per worker, one span per morsel
                // claim. `unique_lane` keeps concurrent queries' workers
                // (which may share display names) on distinct lanes.
                let lane = tracer.as_ref().map(|t| t.unique_lane(&format!("worker-{w}")));
                let start = Instant::now();
                let mut claimed = 0u64;
                loop {
                    let m = cursor.fetch_add(1, Ordering::Relaxed);
                    if m >= n_morsels {
                        break;
                    }
                    claimed += 1;
                    let lo = m * morsel;
                    let hi = ((m + 1) * morsel).min(items.len());
                    let mut mspan = match &lane {
                        Some(l) => l.span("morsel", "exec"),
                        None => Span::noop(),
                    };
                    if mspan.is_recording() {
                        mspan.arg("morsel", m as u64);
                        mspan.arg("lo", lo as u64);
                        mspan.arg("hi", hi as u64);
                    }
                    let mut buf = Vec::with_capacity(hi - lo);
                    let mut res = Ok(());
                    for (i, t) in items[lo..hi].iter().enumerate() {
                        match f(lo + i, t) {
                            Ok(u) => buf.push(u),
                            Err(e) => {
                                // Serial execution stops at the first
                                // failing tuple of the morsel; so do we.
                                res = Err(e);
                                break;
                            }
                        }
                    }
                    done.lock().push((m, res.map(|()| buf)));
                }
                (w, claimed, start.elapsed())
            }));
        }
        for h in handles {
            match h.join() {
                Ok((w, claimed, busy)) => {
                    if let Some(s) = opts.stats_ref() {
                        let nanos = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
                        s.record_worker(w, claimed, nanos);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    drop(p1);

    // Ordered stitch; the error from the lowest input index wins, matching
    // what serial in-order evaluation would have reported. The caller's
    // serial registry commit happens over this buffer, so the phase-2 span
    // marks the parallel/serial boundary in the trace.
    let _p2 = match &tracer {
        Some(t) => t.thread_lane("exec").span("phase2.stitch", "exec"),
        None => Span::noop(),
    };
    let mut slots = done.into_inner();
    slots.sort_unstable_by_key(|(m, _)| *m);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in slots {
        out.extend(r?);
    }
    Ok(out)
}

/// Applies `f` to every morsel-sized chunk of `items` — one morsel becomes
/// one batch — returning the per-chunk results stitched in input order.
/// `f` receives the morsel index, the chunk's starting item index, and the
/// chunk itself; like [`run_tuples`] it must not touch the registry. Batch
/// counters (`batches`, `batch_rows`) are recorded per chunk in both the
/// serial and the parallel path, so `EXPLAIN ANALYZE` can report batch
/// geometry. Error semantics match [`run_tuples`]: the error from the
/// lowest-indexed failing chunk wins.
pub(crate) fn run_batches<T, U, F>(items: &[T], opts: &ExecOptions, f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, usize, &[T]) -> Result<Vec<U>> + Sync,
{
    let morsel = opts.morsel_size.max(1);
    let threads = effective_threads(opts.threads);
    let record = |chunk: &[T]| {
        if let Some(s) = opts.stats_ref() {
            s.batches.inc();
            s.batch_rows.add(chunk.len() as u64);
        }
    };
    if threads <= 1 || items.len() <= morsel {
        // Serial execution still chunks into batches: batch-mode compute
        // (and its counters) must not depend on the thread count.
        let mut out = Vec::with_capacity(items.len());
        let mut lo = 0;
        let mut m = 0;
        while lo < items.len() {
            let hi = (lo + morsel).min(items.len());
            let chunk = &items[lo..hi];
            record(chunk);
            out.extend(f(m, lo, chunk)?);
            lo = hi;
            m += 1;
        }
        return Ok(out);
    }

    let n_morsels = items.len().div_ceil(morsel);
    let workers = threads.min(n_morsels);
    let cursor = AtomicUsize::new(0);
    let tracer = opts.tracer().cloned();
    let done: Mutex<Vec<(usize, Result<Vec<U>>)>> = Mutex::new(Vec::with_capacity(n_morsels));

    let mut p1 = match &tracer {
        Some(t) => t.thread_lane("exec").span("phase1.compute", "exec"),
        None => Span::noop(),
    };
    if p1.is_recording() {
        p1.arg("morsels", n_morsels as u64);
        p1.arg("workers", workers as u64);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (cursor, done, f, tracer, record) = (&cursor, &done, &f, &tracer, &record);
            handles.push(scope.spawn(move || {
                let lane = tracer.as_ref().map(|t| t.unique_lane(&format!("worker-{w}")));
                let start = Instant::now();
                let mut claimed = 0u64;
                loop {
                    let m = cursor.fetch_add(1, Ordering::Relaxed);
                    if m >= n_morsels {
                        break;
                    }
                    claimed += 1;
                    let lo = m * morsel;
                    let hi = ((m + 1) * morsel).min(items.len());
                    let mut mspan = match &lane {
                        Some(l) => l.span("morsel", "exec"),
                        None => Span::noop(),
                    };
                    if mspan.is_recording() {
                        mspan.arg("morsel", m as u64);
                        mspan.arg("lo", lo as u64);
                        mspan.arg("hi", hi as u64);
                    }
                    let chunk = &items[lo..hi];
                    record(chunk);
                    done.lock().push((m, f(m, lo, chunk)));
                }
                (w, claimed, start.elapsed())
            }));
        }
        for h in handles {
            match h.join() {
                Ok((w, claimed, busy)) => {
                    if let Some(s) = opts.stats_ref() {
                        let nanos = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
                        s.record_worker(w, claimed, nanos);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    drop(p1);

    let _p2 = match &tracer {
        Some(t) => t.thread_lane("exec").span("phase2.stitch", "exec"),
        None => Span::noop(),
    };
    let mut slots = done.into_inner();
    slots.sort_unstable_by_key(|(m, _)| *m);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in slots {
        out.extend(r?);
    }
    Ok(out)
}

/// Mode dispatch for the per-tuple operators: row mode runs [`run_tuples`];
/// batch mode runs [`run_batches`] with the same per-tuple closure applied
/// across each chunk. Within a chunk, tuples are evaluated in input order
/// and evaluation stops at the first failing tuple — exactly the row-mode
/// morsel semantics — so results, stats counts, and reported errors are
/// bit-identical across modes.
pub(crate) fn run_tuples_mode<T, U, F>(items: &[T], opts: &ExecOptions, f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
{
    match opts.mode {
        ExecMode::Row => run_tuples(items, opts, f),
        ExecMode::Batch => run_batches(items, opts, |_, lo, chunk| {
            chunk.iter().enumerate().map(|(k, t)| f(lo + k, t)).collect()
        }),
    }
}

/// One row of a bulk insert: certain values by column name, plus one joint
/// pdf per dependency set (the set's columns in the pdf's dimension order)
/// — the same shape [`Relation::insert`] takes.
#[derive(Debug, Clone)]
pub struct BulkRow {
    /// Values for the certain columns.
    pub certain: Vec<(String, Value)>,
    /// One joint pdf per dependency set.
    pub uncertain: Vec<(Vec<String>, JointPdf)>,
}

/// A validated row awaiting the commit phase: the full certain-value row
/// and the attribute/joint prototype of each pdf node, in insertion order.
struct StagedRow {
    certain: Vec<Value>,
    protos: Vec<(Vec<AttrId>, JointPdf)>,
}

/// Bulk-inserts `n_rows` rows built by `build(row_index)`, validating and
/// materializing rows in parallel, then committing them — including
/// history-id assignment — in row order. The resulting relation, registry
/// contents **and pdf ids** are bit-identical to calling
/// [`Relation::insert`] once per row, at any thread count.
pub fn insert_batch<F>(
    rel: &mut Relation,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
    n_rows: usize,
    build: F,
) -> Result<()>
where
    F: Fn(usize) -> BulkRow + Sync,
{
    // Phase 1: parallel build + validation against the (shared) schema.
    let indices: Vec<usize> = (0..n_rows).collect();
    let staged: Vec<StagedRow> = run_tuples(&indices, opts, |_, &i| stage_row(rel, build(i)))?;

    // Phase 2: ordered serial commit. One contiguous reservation covers
    // every base pdf; walking rows in order assigns exactly the ids a
    // serial load would have produced.
    let mut p2 = match opts.tracer() {
        Some(t) => t.thread_lane("exec").span("insert_batch.commit", "exec"),
        None => Span::noop(),
    };
    if p2.is_recording() {
        p2.arg("rows", staged.len() as u64);
    }
    let total: u64 = staged.iter().map(|r| r.protos.len() as u64).sum();
    let mut id = reg.reserve_ids(total);
    rel.tuples.reserve(staged.len());
    for row in staged {
        let mut nodes = Vec::with_capacity(row.protos.len());
        for (attrs, joint) in row.protos {
            reg.install_reserved(id, attrs.clone(), joint.clone());
            let ancestors: Ancestors = [id].into_iter().collect();
            reg.add_refs(&ancestors);
            nodes.push(PdfNode::base(id, &attrs, joint, ancestors));
            id += 1;
        }
        rel.tuples.push(ProbTuple { certain: row.certain, nodes });
    }
    Ok(())
}

/// Validates one bulk row against the relation's schema (mirroring
/// [`Relation::insert`]) without touching the registry.
fn stage_row(rel: &Relation, row: BulkRow) -> Result<StagedRow> {
    let mut certain = vec![Value::Null; rel.schema.columns().len()];
    for (name, v) in row.certain {
        let idx = rel
            .schema
            .index_of(&name)
            .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
        if rel.schema.columns()[idx].uncertain {
            return Err(EngineError::Schema(format!(
                "column '{name}' is uncertain; supply a pdf instead"
            )));
        }
        certain[idx] = v;
    }
    let mut protos = Vec::with_capacity(row.uncertain.len());
    let mut covered: Vec<AttrId> = Vec::new();
    for (names, joint) in row.uncertain {
        let mut attrs = Vec::with_capacity(names.len());
        for name in &names {
            let col = rel
                .schema
                .column(name)
                .ok_or_else(|| EngineError::Schema(format!("unknown column '{name}'")))?;
            if !col.uncertain {
                return Err(EngineError::Schema(format!(
                    "column '{name}' is certain; supply a value instead"
                )));
            }
            attrs.push(col.id);
        }
        if joint.arity() != attrs.len() {
            return Err(EngineError::Schema(format!(
                "pdf arity {} does not match {} attributes",
                joint.arity(),
                attrs.len()
            )));
        }
        covered.extend(&attrs);
        protos.push((attrs, joint));
    }
    for c in rel.schema.columns() {
        if c.uncertain && !covered.contains(&c.id) {
            return Err(EngineError::Schema(format!("uncertain column '{}' has no pdf", c.name)));
        }
    }
    Ok(StagedRow { certain, protos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, ProbSchema};
    use orion_pdf::prelude::*;

    fn small_opts(threads: usize) -> ExecOptions {
        ExecOptions { threads, morsel_size: 2, ..ExecOptions::default() }
    }

    #[test]
    fn run_tuples_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out =
                run_tuples(&items, &small_opts(threads), |i, &x| Ok(x * 2 + i as u64)).unwrap();
            let want: Vec<u64> = (0..100).map(|x| x * 3).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn run_tuples_reports_lowest_index_error() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let err = run_tuples(&items, &small_opts(threads), |i, _| {
                if i >= 9 {
                    Err(EngineError::Operator(format!("boom at {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert!(err.to_string().contains("boom at 9"), "threads={threads}: {err}");
        }
    }

    #[test]
    fn run_tuples_records_worker_lanes() {
        let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
        let opts = ExecOptions { stats: Some(stats.clone()), ..small_opts(4) };
        let items: Vec<u64> = (0..64).collect();
        run_tuples(&items, &opts, |_, &x| Ok(x)).unwrap();
        let snap = stats.snapshot();
        assert!(!snap.workers.is_empty());
        let morsels: u64 = snap.workers.iter().map(|l| l.morsels).sum();
        assert_eq!(morsels, 32, "64 items / morsel_size 2");
    }

    #[test]
    fn serial_path_records_no_lanes() {
        let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
        let opts = ExecOptions { stats: Some(stats.clone()), threads: 1, ..ExecOptions::default() };
        let items: Vec<u64> = (0..64).collect();
        run_tuples(&items, &opts, |_, &x| Ok(x)).unwrap();
        assert!(stats.snapshot().workers.is_empty());
    }

    #[test]
    fn run_batches_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out = run_batches(&items, &small_opts(threads), |_, lo, chunk| {
                Ok(chunk.iter().enumerate().map(|(k, &x)| x * 2 + (lo + k) as u64).collect())
            })
            .unwrap();
            let want: Vec<u64> = (0..100).map(|x| x * 3).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn run_batches_reports_lowest_chunk_error() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let err = run_batches(&items, &small_opts(threads), |m, _, _| {
                if m >= 3 {
                    Err(EngineError::Operator(format!("boom at morsel {m}")))
                } else {
                    Ok(Vec::<u64>::new())
                }
            })
            .unwrap_err();
            assert!(err.to_string().contains("boom at morsel 3"), "threads={threads}: {err}");
        }
    }

    #[test]
    fn run_batches_counts_batches_in_both_paths() {
        let items: Vec<u64> = (0..65).collect();
        for threads in [1, 4] {
            let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
            let opts = ExecOptions { stats: Some(stats.clone()), ..small_opts(threads) };
            run_batches(&items, &opts, |_, _, chunk| Ok(chunk.to_vec())).unwrap();
            let snap = stats.snapshot();
            assert_eq!(snap.batches, 33, "threads={threads}: 65 items / morsel_size 2");
            assert_eq!(snap.batch_rows, 65, "threads={threads}");
        }
    }

    #[test]
    fn run_tuples_mode_dispatch_is_equivalent() {
        let items: Vec<u64> = (0..50).collect();
        let row = run_tuples_mode(&items, &small_opts(4), |i, &x| Ok(x + i as u64)).unwrap();
        for threads in [1, 2, 4] {
            let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
            let opts = ExecOptions {
                mode: ExecMode::Batch,
                stats: Some(stats.clone()),
                ..small_opts(threads)
            };
            let batch = run_tuples_mode(&items, &opts, |i, &x| Ok(x + i as u64)).unwrap();
            assert_eq!(batch, row, "threads={threads}");
            assert_eq!(stats.snapshot().batches, 25, "threads={threads}");
        }
    }

    #[test]
    fn run_tuples_mode_batch_stops_at_first_failing_tuple() {
        // Within a chunk, batch mode must report the same (lowest-index)
        // error row mode would.
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let opts = ExecOptions { mode: ExecMode::Batch, ..small_opts(threads) };
            let err = run_tuples_mode(&items, &opts, |i, _| {
                if i >= 9 {
                    Err(EngineError::Operator(format!("boom at {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert!(err.to_string().contains("boom at 9"), "threads={threads}: {err}");
        }
    }

    fn bulk_schema() -> ProbSchema {
        ProbSchema::new(vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)], vec![])
            .unwrap()
    }

    fn bulk_row(i: usize) -> BulkRow {
        BulkRow {
            certain: vec![("id".into(), Value::Int(i as i64))],
            uncertain: vec![(
                vec!["x".into()],
                JointPdf::from_pdf1(Pdf1::gaussian(i as f64, 1.0).unwrap()),
            )],
        }
    }

    #[test]
    fn insert_batch_matches_serial_insert_exactly() {
        const N: usize = 23;
        // One schema for every run: AttrIds are globally allocated, and the
        // tuples record them.
        let schema = bulk_schema();
        let mut serial_reg = HistoryRegistry::new();
        let mut serial = Relation::new("t", schema.clone());
        for i in 0..N {
            let row = bulk_row(i);
            let certain: Vec<(&str, Value)> =
                row.certain.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let uncertain = row
                .uncertain
                .iter()
                .map(|(ns, j)| (ns.iter().map(|s| s.as_str()).collect(), j.clone()))
                .collect();
            serial.insert(&mut serial_reg, &certain, uncertain).unwrap();
        }

        for threads in [1, 2, 4, 8] {
            let mut reg = HistoryRegistry::new();
            let mut rel = Relation::new("t", schema.clone());
            insert_batch(&mut rel, &mut reg, &small_opts(threads), N, bulk_row).unwrap();
            assert_eq!(rel.tuples, serial.tuples, "threads={threads}");
            assert_eq!(reg.last_id(), serial_reg.last_id());
            assert_eq!(reg.len(), serial_reg.len());
            for (id, base) in serial_reg.iter_bases() {
                let b = reg.base(id).unwrap();
                assert_eq!(b.attrs, base.attrs);
                assert_eq!(reg.ref_count(id), serial_reg.ref_count(id));
            }
        }
    }

    #[test]
    fn insert_batch_validation_errors_are_deterministic() {
        let mut reg = HistoryRegistry::new();
        let mut rel = Relation::new("t", bulk_schema());
        let err = insert_batch(&mut rel, &mut reg, &small_opts(4), 16, |i| {
            if i >= 5 {
                BulkRow { certain: vec![("nope".into(), Value::Int(0))], uncertain: vec![] }
            } else {
                bulk_row(i)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        assert!(rel.is_empty(), "failed batch leaves the relation untouched");
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn effective_threads_prefers_explicit_request() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
