//! Certain (precise) attribute values.
//!
//! Uncertain attributes always range over the reals (their pdfs are defined
//! on ℝ); certain attributes may additionally be text or boolean. `NULL`
//! represents a *missing attribute value* — which the paper carefully
//! distinguishes from a *missing tuple* (a partial pdf), see Table IV.

use std::cmp::Ordering;
use std::fmt;

/// A certain attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing attribute value (Section II-B: distinct from a missing tuple).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Double-precision real.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Numeric view, when the value is `Int` or `Real`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Whether this is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Three-valued-logic comparison: `None` when either side is `NULL` or
    /// the types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(3).compare(&Value::Real(3.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).compare(&Value::Real(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Real(7.1).compare(&Value::Int(7)), Some(Ordering::Greater));
    }

    #[test]
    fn null_never_compares() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert_eq!(Value::Null.compare(&Value::Null), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Text("a".into()).compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Real(1.0)), None);
    }

    #[test]
    fn text_and_bool_ordering() {
        assert_eq!(
            Value::Text("abc".into()).compare(&Value::Text("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Bool(false).compare(&Value::Bool(true)), Some(Ordering::Less));
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Text("x".into()).to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Real(2.5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Text("t".into()).as_f64(), None);
    }
}
