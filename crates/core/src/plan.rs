//! Logical query plans and their execution over the probabilistic engine.
//!
//! A [`Plan`] is a small algebra tree (scan / select / project / join /
//! threshold). The same tree can be executed by the probabilistic operators
//! ([`execute`]) and by the brute-force possible-worlds reference engine
//! ([`crate::pws`]), which is how the test suite certifies PWS consistency.

use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::join::join;
use crate::pindex::{IndexKind, PlannerMode, MIN_PRUNABLE_P};
use crate::predicate::{CmpOp, Predicate};
use crate::project::project;
use crate::relation::Relation;
use crate::select::{select_masked, ExecOptions};
use crate::stats_catalog::{
    pred_interval, StatsCatalog, TableStats, MAGIC_ROWS, MAGIC_SELECTIVITY,
    MAGIC_THRESHOLD_SELECTIVITY,
};
use crate::threshold::{threshold_attrs, threshold_pred, threshold_pred_masked};
use orion_obs::{AltPath, ExecStats, OpProfile, Span};
use orion_pdf::prelude::Interval;
use std::collections::HashMap;
use std::sync::Arc;

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named base table.
    Scan(String),
    /// σ_θ.
    Select(Box<Plan>, Predicate),
    /// Π_cols.
    Project(Box<Plan>, Vec<String>),
    /// `left ⋈_θ right` (cross product when the predicate is `None`).
    Join(Box<Plan>, Box<Plan>, Option<Predicate>),
    /// σ_{Pr(attrs) ⊙ p} (outside PWS, Section III-E).
    ThresholdAttrs(Box<Plan>, Vec<String>, CmpOp, f64),
    /// σ_{Pr(θ) ⊙ p} (outside PWS, Section III-E).
    ThresholdPred(Box<Plan>, Predicate, CmpOp, f64),
}

impl Plan {
    /// Convenience: scan.
    pub fn scan(name: &str) -> Plan {
        Plan::Scan(name.to_string())
    }

    /// Convenience: σ_θ over this plan.
    pub fn select(self, pred: Predicate) -> Plan {
        Plan::Select(Box::new(self), pred)
    }

    /// Convenience: Π_cols over this plan.
    pub fn project(self, cols: &[&str]) -> Plan {
        Plan::Project(Box::new(self), cols.iter().map(|s| s.to_string()).collect())
    }

    /// Convenience: join with another plan.
    pub fn join_on(self, other: Plan, pred: Option<Predicate>) -> Plan {
        Plan::Join(Box::new(self), Box::new(other), pred)
    }

    /// Whether the plan contains threshold operators (which possible-worlds
    /// semantics does not define).
    pub fn has_threshold(&self) -> bool {
        match self {
            Plan::Scan(_) => false,
            Plan::Select(p, _) | Plan::Project(p, _) => p.has_threshold(),
            Plan::Join(l, r, _) => l.has_threshold() || r.has_threshold(),
            Plan::ThresholdAttrs(..) | Plan::ThresholdPred(..) => true,
        }
    }
}

/// Estimated output cardinality of `plan` against a [`StatsCatalog`],
/// bottom-up. Scans of analyzed tables use collected row counts; selects
/// and thresholds scale by histogram/cdf-sketch selectivities; anything
/// the catalog cannot answer falls back to the textbook magic constants
/// ([`MAGIC_ROWS`], [`MAGIC_SELECTIVITY`], [`MAGIC_THRESHOLD_SELECTIVITY`]).
/// Returns the estimate plus the table stats in scope (lost after joins,
/// which merge columns from both sides).
fn estimate_node<'a>(plan: &Plan, catalog: &'a StatsCatalog) -> (f64, Option<&'a TableStats>) {
    match plan {
        Plan::Scan(name) => match catalog.get(name) {
            Some(ts) => (ts.rows as f64, Some(ts)),
            None => (MAGIC_ROWS as f64, None),
        },
        Plan::Select(p, pred) => {
            let (rows, ctx) = estimate_node(p, catalog);
            let sel = ctx.map_or(MAGIC_SELECTIVITY, |ts| ts.est_select(pred));
            (rows * sel, ctx)
        }
        Plan::Project(p, _) => estimate_node(p, catalog),
        Plan::Join(l, r, pred) => {
            let (lr, _) = estimate_node(l, catalog);
            let (rr, _) = estimate_node(r, catalog);
            let sel = if pred.is_some() { MAGIC_SELECTIVITY } else { 1.0 };
            (lr * rr * sel, None)
        }
        Plan::ThresholdAttrs(p, attrs, op, prob) => {
            let (rows, ctx) = estimate_node(p, catalog);
            let sel = ctx.map_or(MAGIC_THRESHOLD_SELECTIVITY, |ts| {
                ts.est_threshold_attrs(attrs, *op, *prob)
            });
            (rows * sel, ctx)
        }
        Plan::ThresholdPred(p, pred, op, prob) => {
            let (rows, ctx) = estimate_node(p, catalog);
            let sel = ctx
                .map_or(MAGIC_THRESHOLD_SELECTIVITY, |ts| ts.est_threshold_pred(pred, *op, *prob));
            (rows * sel, ctx)
        }
    }
}

/// Estimated output cardinality of `plan`, rounded to whole rows.
pub fn estimate_rows(plan: &Plan, catalog: &StatsCatalog) -> u64 {
    estimate_node(plan, catalog).0.round().max(0.0) as u64
}

/// Attaches `est_rows` to every node of a profile tree produced by
/// [`execute_profiled`] over the same plan. The profile mirrors the plan
/// shape (one node per operator, children in input order), so the walk is
/// positional.
pub fn annotate_estimates(profile: &mut OpProfile, plan: &Plan, catalog: &StatsCatalog) {
    profile.est_rows = Some(estimate_rows(plan, catalog));
    match plan {
        Plan::Scan(_) => {}
        Plan::Select(p, _)
        | Plan::Project(p, _)
        | Plan::ThresholdAttrs(p, ..)
        | Plan::ThresholdPred(p, ..) => {
            if let Some(child) = profile.children.first_mut() {
                annotate_estimates(child, p, catalog);
            }
        }
        Plan::Join(l, r, _) => {
            let mut kids = profile.children.iter_mut();
            if let Some(lp) = kids.next() {
                annotate_estimates(lp, l, catalog);
            }
            if let Some(rp) = kids.next() {
                annotate_estimates(rp, r, catalog);
            }
        }
    }
}

/// Abstract per-operation cost constants for the access-path planner.
///
/// The units are arbitrary but the *ratios* are calibrated from orion-obs
/// counters on the fig5 sensor workload (`elapsed_nanos` attributed per
/// counter increment): one pdf floor-and-collapse costs on the order of
/// microseconds, per-tuple plumbing and an index-page fault-in cost tens to
/// hundreds of nanoseconds, and a candidate-mask probe costs a few
/// nanoseconds. Setting `cpu_tuple = 1` as the unit gives the defaults
/// below.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Faulting one 8 KiB index page through the buffer pool.
    pub io_page: f64,
    /// Per-tuple executor plumbing (clone, refcount, dispatch).
    pub cpu_tuple: f64,
    /// Evaluating one tuple's predicate probability (floor + collapse).
    pub cpu_pdf: f64,
    /// Checking one tuple against an index candidate mask.
    pub cpu_probe: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel { io_page: 10.0, cpu_tuple: 1.0, cpu_pdf: 50.0, cpu_probe: 0.05 }
    }
}

/// The outcome of an access-path decision: the candidate mask to execute
/// with (`None` means full scan) and every alternative the planner priced,
/// winner flagged, for `EXPLAIN` and the profile tree.
#[derive(Debug, Clone, Default)]
pub struct AccessPlan {
    /// Candidate mask from the chosen index path (`None` for scan).
    pub mask: Option<Vec<bool>>,
    /// Priced alternatives (empty when no index path was applicable, so
    /// un-indexed plans render exactly as before).
    pub alternatives: Vec<AltPath>,
}

/// Chooses the access path for `σ_{Pr(θ) ⊙ p}` over `rel`: full scan vs an
/// index-assisted threshold through a persistent cdf-summary index.
///
/// * scan cost: `N · (cpu_tuple + cpu_pdf)`
/// * index cost: `rebuild + pages · io_page + N · cpu_probe +
///   C · (cpu_tuple + cpu_pdf)` where `C` is the catalog's threshold
///   estimate (magic `N/3` when unanalyzed) and `rebuild = N · cpu_tuple`
///   when the cached build is stale.
///
/// [`PlannerMode::Rule`] always takes a usable index; [`PlannerMode::Cost`]
/// compares the two totals. Either way the returned mask is a *sound
/// superset* of the passing set, so execution results are bitwise identical
/// to the scan.
pub fn plan_threshold_access(
    rel: &Relation,
    pred: &Predicate,
    op: CmpOp,
    p: f64,
    catalog: Option<&StatsCatalog>,
    opts: &ExecOptions,
) -> Result<AccessPlan> {
    let Some(handle) = opts.indexes.as_ref() else { return Ok(AccessPlan::default()) };
    if !matches!(op, CmpOp::Gt | CmpOp::Ge) || p.is_nan() || p < MIN_PRUNABLE_P {
        return Ok(AccessPlan::default());
    }
    let Some((col, lo, hi)) = pred_interval(pred) else { return Ok(AccessPlan::default()) };
    if lo > hi {
        return Ok(AccessPlan::default());
    }
    let mut cat = handle.lock();
    let Some(def) =
        cat.find(&rel.name, Some(&col)).into_iter().find(|d| d.kind == IndexKind::Cdf).cloned()
    else {
        return Ok(AccessPlan::default());
    };
    let cm = CostModel::default();
    let n = rel.len() as f64;
    let scan_cost = n * (cm.cpu_tuple + cm.cpu_pdf);
    let sel = catalog
        .and_then(|c| c.get(&rel.name))
        .map_or(MAGIC_SELECTIVITY, |ts| ts.est_threshold_pred(pred, op, p));
    let fresh = cat.is_fresh(&def.name, rel.len());
    let pages = if fresh { cat.built_pages(&def.name) as f64 } else { (n / 100.0).ceil().max(1.0) };
    let rebuild = if fresh { 0.0 } else { n * cm.cpu_tuple };
    let index_cost =
        rebuild + pages * cm.io_page + n * cm.cpu_probe + sel * n * (cm.cpu_tuple + cm.cpu_pdf);
    let use_index = match opts.planner {
        PlannerMode::Rule => true,
        PlannerMode::Cost => index_cost < scan_cost,
    };
    let mut alternatives = vec![
        AltPath { path: "scan".into(), cost: scan_cost, chosen: !use_index },
        AltPath {
            path: format!("index-threshold({})", def.name),
            cost: index_cost,
            chosen: use_index,
        },
    ];
    if !use_index {
        return Ok(AccessPlan { mask: None, alternatives });
    }
    let built = cat.ensure_built(&def.name, rel)?;
    drop(cat);
    match built.threshold_mask(&Interval::new(lo, hi), op, p)? {
        Some((mask, _probes)) => Ok(AccessPlan { mask: Some(mask), alternatives }),
        None => {
            // The built index declined (not prunable after all): execute as
            // a scan and report that in the decision record.
            alternatives[0].chosen = true;
            alternatives[1].chosen = false;
            Ok(AccessPlan { mask: None, alternatives })
        }
    }
}

/// Chooses the access path for `σ_θ` with a certain-column range predicate:
/// full scan vs an index-range scan through a persistent expected-value
/// index. Cost formulas mirror [`plan_threshold_access`] minus the pdf
/// term (`scan = N · cpu_tuple`, `index = rebuild + pages · io_page +
/// N · cpu_probe + C · cpu_tuple`).
///
/// Masks are only ever produced for predicates confined to one *certain*
/// column — for uncertain predicates, flooring leaves residual mass an
/// index bound cannot decide, so those always scan.
pub fn plan_select_access(
    rel: &Relation,
    pred: &Predicate,
    catalog: Option<&StatsCatalog>,
    opts: &ExecOptions,
) -> Result<AccessPlan> {
    let Some(handle) = opts.indexes.as_ref() else { return Ok(AccessPlan::default()) };
    let Some((col, lo, hi)) = pred_interval(pred) else { return Ok(AccessPlan::default()) };
    if lo > hi || rel.schema.column(&col).is_none_or(|c| c.uncertain) {
        return Ok(AccessPlan::default());
    }
    let mut cat = handle.lock();
    let Some(def) =
        cat.find(&rel.name, Some(&col)).into_iter().find(|d| d.kind == IndexKind::Evx).cloned()
    else {
        return Ok(AccessPlan::default());
    };
    let cm = CostModel::default();
    let n = rel.len() as f64;
    let scan_cost = n * cm.cpu_tuple;
    let sel =
        catalog.and_then(|c| c.get(&rel.name)).map_or(MAGIC_SELECTIVITY, |ts| ts.est_select(pred));
    let fresh = cat.is_fresh(&def.name, rel.len());
    let pages = if fresh { cat.built_pages(&def.name) as f64 } else { (n / 100.0).ceil().max(1.0) };
    let rebuild = if fresh { 0.0 } else { n * cm.cpu_tuple };
    let index_cost = rebuild + pages * cm.io_page + n * cm.cpu_probe + sel * n * cm.cpu_tuple;
    let use_index = match opts.planner {
        PlannerMode::Rule => true,
        PlannerMode::Cost => index_cost < scan_cost,
    };
    let mut alternatives = vec![
        AltPath { path: "scan".into(), cost: scan_cost, chosen: !use_index },
        AltPath { path: format!("index-range({})", def.name), cost: index_cost, chosen: use_index },
    ];
    if !use_index {
        return Ok(AccessPlan { mask: None, alternatives });
    }
    let built = cat.ensure_built(&def.name, rel)?;
    drop(cat);
    match built.range_mask(lo, hi)? {
        Some((mask, _probes)) => Ok(AccessPlan { mask: Some(mask), alternatives }),
        None => {
            alternatives[0].chosen = true;
            alternatives[1].chosen = false;
            Ok(AccessPlan { mask: None, alternatives })
        }
    }
}

/// The operator name a plan node traces under.
fn op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan(_) => "Scan",
        Plan::Select(..) => "Select",
        Plan::Project(..) => "Project",
        Plan::Join(..) => "Join",
        Plan::ThresholdAttrs(..) => "ThresholdAttrs",
        Plan::ThresholdPred(..) => "ThresholdPred",
    }
}

/// A span on the driver's `exec` lane, inert when tracing is off (one
/// relaxed atomic load). Operator spans open before child recursion, so
/// they nest like the plan tree and cover inclusive time — self time lives
/// in the `ExecStats` args the profiled executor attaches.
fn op_span(opts: &ExecOptions, plan: &Plan) -> Span {
    match opts.tracer() {
        // Thread-keyed lane: concurrent queries on other threads get their
        // own lanes, so operator spans always nest.
        Some(t) => t.thread_lane("exec").span(op_name(plan), "exec"),
        None => Span::noop(),
    }
}

/// Executes a plan with the probabilistic operators.
pub fn execute(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    let mut span = op_span(opts, plan);
    let out = match plan {
        Plan::Scan(name) => tables
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'"))),
        Plan::Select(p, pred) => {
            let input = execute(p, tables, reg, opts)?;
            let ap = plan_select_access(&input, pred, None, opts)?;
            select_masked(&input, pred, ap.mask.as_deref(), reg, opts)
        }
        Plan::Project(p, cols) => {
            let input = execute(p, tables, reg, opts)?;
            let refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
            project(&input, &refs, reg, opts)
        }
        Plan::Join(l, r, pred) => {
            let left = execute(l, tables, reg, opts)?;
            let right = execute(r, tables, reg, opts)?;
            join(&left, &right, pred.as_ref(), reg, opts)
        }
        Plan::ThresholdAttrs(p, attrs, op, prob) => {
            let input = execute(p, tables, reg, opts)?;
            let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
            threshold_attrs(&input, &refs, *op, *prob, reg, opts)
        }
        Plan::ThresholdPred(p, pred, op, prob) => {
            let input = execute(p, tables, reg, opts)?;
            let ap = plan_threshold_access(&input, pred, *op, *prob, None, opts)?;
            match &ap.mask {
                Some(m) => threshold_pred_masked(&input, pred, *op, *prob, Some(m), reg, opts),
                // No persistent index chose to serve this: the transient
                // support-interval fallback inside threshold_pred may
                // still prune.
                None => threshold_pred(&input, pred, *op, *prob, reg, opts),
            }
        }
    }?;
    if span.is_recording() {
        span.arg("tuples_out", out.len() as u64);
    }
    Ok(out)
}

/// Executes a plan like [`execute`], additionally building an [`OpProfile`]
/// tree mirroring the plan. Each operator runs with its own
/// [`ExecStats`] collector (pdf-operation counters flow in through
/// `ExecOptions::stats`); tuple flow and wall time are recorded here, at
/// the operator boundaries.
pub fn execute_profiled(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<(Relation, OpProfile)> {
    execute_profiled_with(plan, tables, reg, opts, None)
}

/// [`execute_profiled`] with a stats catalog for the access-path planner:
/// alternative costs in the profile tree use catalog estimates instead of
/// the magic fallback constants. Path choice never changes results — only
/// which (bitwise-identical) execution strategy pays for them.
pub fn execute_profiled_with(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
    catalog: Option<&StatsCatalog>,
) -> Result<(Relation, OpProfile)> {
    let stats = Arc::new(ExecStats::new());
    let node_opts = ExecOptions { stats: Some(stats.clone()), ..opts.clone() };
    let mut span = op_span(opts, plan);
    // Children run before each node's timer starts, so elapsed time is
    // per-operator (self time), not inclusive of inputs.
    let (rel, mut profile) = match plan {
        Plan::Scan(name) => {
            let _t = stats.timer();
            let rel = tables
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'")))?;
            (rel, OpProfile::new("Scan", name.as_str()))
        }
        Plan::Select(p, pred) => {
            let (input, child) = execute_profiled_with(p, tables, reg, opts, catalog)?;
            stats.tuples_in.add(input.len() as u64);
            let ap = plan_select_access(&input, pred, catalog, opts)?;
            let _t = stats.timer();
            let out = select_masked(&input, pred, ap.mask.as_deref(), reg, &node_opts)?;
            (
                out,
                OpProfile::new("Select", pred.to_string())
                    .with_alternatives(ap.alternatives)
                    .with_child(child),
            )
        }
        Plan::Project(p, cols) => {
            let (input, child) = execute_profiled_with(p, tables, reg, opts, catalog)?;
            stats.tuples_in.add(input.len() as u64);
            let refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
            let _t = stats.timer();
            let out = project(&input, &refs, reg, &node_opts)?;
            (out, OpProfile::new("Project", cols.join(", ")).with_child(child))
        }
        Plan::Join(l, r, pred) => {
            let (left, lp) = execute_profiled_with(l, tables, reg, opts, catalog)?;
            let (right, rp) = execute_profiled_with(r, tables, reg, opts, catalog)?;
            stats.tuples_in.add((left.len() + right.len()) as u64);
            let _t = stats.timer();
            let out = join(&left, &right, pred.as_ref(), reg, &node_opts)?;
            let detail = match pred {
                Some(p) => p.to_string(),
                None => "cross".to_string(),
            };
            (out, OpProfile::new("Join", detail).with_child(lp).with_child(rp))
        }
        Plan::ThresholdAttrs(p, attrs, op, prob) => {
            let (input, child) = execute_profiled_with(p, tables, reg, opts, catalog)?;
            stats.tuples_in.add(input.len() as u64);
            let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
            let _t = stats.timer();
            let out = threshold_attrs(&input, &refs, *op, *prob, reg, &node_opts)?;
            let detail = format!("Pr({}) {op} {prob}", attrs.join(", "));
            (out, OpProfile::new("ThresholdAttrs", detail).with_child(child))
        }
        Plan::ThresholdPred(p, pred, op, prob) => {
            let (input, child) = execute_profiled_with(p, tables, reg, opts, catalog)?;
            stats.tuples_in.add(input.len() as u64);
            let ap = plan_threshold_access(&input, pred, *op, *prob, catalog, opts)?;
            let _t = stats.timer();
            let out = match &ap.mask {
                Some(m) => {
                    threshold_pred_masked(&input, pred, *op, *prob, Some(m), reg, &node_opts)?
                }
                None => threshold_pred(&input, pred, *op, *prob, reg, &node_opts)?,
            };
            let detail = format!("Pr({pred}) {op} {prob}");
            (
                out,
                OpProfile::new("ThresholdPred", detail)
                    .with_alternatives(ap.alternatives)
                    .with_child(child),
            )
        }
    };
    stats.tuples_out.add(rel.len() as u64);
    profile.stats = stats.snapshot();
    if span.is_recording() {
        // The per-operator ExecStats delta rides on the span, so the trace
        // alone explains where pdf work happened.
        span.arg("detail", profile.detail.as_str());
        span.arg("tuples_in", profile.stats.tuples_in);
        span.arg("tuples_out", profile.stats.tuples_out);
        span.arg("pdf_products", profile.stats.pdf_products);
        span.arg("pdf_floors", profile.stats.pdf_floors);
        span.arg("pdf_marginalizations", profile.stats.pdf_marginalizations);
        span.arg("collapses", profile.stats.collapses);
        span.arg("pairs_pruned", profile.stats.pairs_pruned);
        span.arg("self_nanos", profile.stats.elapsed_nanos);
    }
    Ok((rel, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, ProbSchema};
    use crate::value::Value;
    use orion_pdf::prelude::*;

    fn db() -> (HashMap<String, Relation>, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("t", schema);
        for (id, lo, hi) in [(1, 0.0, 10.0), (2, 5.0, 15.0)] {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("x", Pdf1::uniform(lo, hi).unwrap())],
            )
            .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rel);
        (tables, reg)
    }

    #[test]
    fn execute_pipeline() {
        let (tables, mut reg) = db();
        let plan = Plan::scan("t").select(Predicate::cmp("x", CmpOp::Lt, 8.0)).project(&["id"]);
        let out = execute(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.columns().len(), 1);
        // Tuple 2 exists with probability 0.3 after the floor.
        assert!((out.tuples[1].naive_existence() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn execute_threshold() {
        let (tables, mut reg) = db();
        let plan = Plan::ThresholdPred(
            Box::new(Plan::scan("t")),
            Predicate::cmp("x", CmpOp::Lt, 8.0),
            CmpOp::Gt,
            0.5,
        );
        let out = execute(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 1, "only id=1 has P(x<8) = 0.8 > 0.5");
        assert_eq!(out.value(0, "id").unwrap(), &Value::Int(1));
    }

    #[test]
    fn execute_profiled_matches_execute_and_counts() {
        let (tables, mut reg) = db();
        let plan = Plan::scan("t").select(Predicate::cmp("x", CmpOp::Lt, 8.0)).project(&["id"]);
        let (out, profile) =
            execute_profiled(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(profile.name, "Project");
        assert_eq!(profile.stats.tuples_in, 2);
        assert_eq!(profile.stats.tuples_out, 2);
        let sel = &profile.children[0];
        assert_eq!(sel.name, "Select");
        assert_eq!(sel.detail, "x < 8");
        assert_eq!(sel.stats.tuples_in, 2);
        assert_eq!(sel.stats.tuples_out, 2);
        assert_eq!(sel.stats.pdf_floors, 2, "one symbolic floor per tuple");
        let scan = &sel.children[0];
        assert_eq!(scan.name, "Scan");
        assert_eq!(scan.stats.tuples_out, 2);
    }

    #[test]
    fn unknown_table_errors() {
        let (tables, mut reg) = db();
        assert!(execute(&Plan::scan("nope"), &tables, &mut reg, &ExecOptions::default()).is_err());
    }

    #[test]
    fn estimates_use_magic_constants_when_unanalyzed() {
        let plan = Plan::scan("t").select(Predicate::cmp("x", CmpOp::Lt, 8.0));
        let catalog = StatsCatalog::new();
        let est = estimate_rows(&plan, &catalog);
        assert_eq!(est, (MAGIC_ROWS as f64 * MAGIC_SELECTIVITY).round() as u64);
        let t = Plan::ThresholdPred(
            Box::new(Plan::scan("t")),
            Predicate::cmp("x", CmpOp::Lt, 8.0),
            CmpOp::Gt,
            0.5,
        );
        assert_eq!(
            estimate_rows(&t, &catalog),
            (MAGIC_ROWS as f64 * MAGIC_THRESHOLD_SELECTIVITY).round() as u64
        );
    }

    #[test]
    fn estimates_track_analyzed_tables_and_annotate_profiles() {
        let (tables, mut reg) = db();
        let mut catalog = StatsCatalog::new();
        catalog.insert(crate::stats_catalog::analyze_relation(&tables["t"]).unwrap());
        let scan = Plan::scan("t");
        assert_eq!(estimate_rows(&scan, &catalog), 2, "analyzed scan uses real row count");
        let plan = scan.select(Predicate::cmp("x", CmpOp::Lt, 8.0)).project(&["id"]);
        let (_, mut profile) =
            execute_profiled(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        annotate_estimates(&mut profile, &plan, &catalog);
        assert!(profile.est_rows.is_some());
        let sel = &profile.children[0];
        let scan_node = &sel.children[0];
        assert_eq!(scan_node.est_rows, Some(2));
        // Symbolic selects keep maybe-tuples, so actual out is 2; the
        // histogram estimate must be within the table size.
        assert!(sel.est_rows.unwrap() <= 2);
    }

    #[test]
    fn cost_planner_chooses_cdf_index_and_matches_scan() {
        use crate::pindex::{IndexDef, IndexHandle, IndexKind};
        use orion_pdf::sample::XorShift;
        let schema = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        let mut rng = XorShift::new(31);
        for rid in 1..=200i64 {
            let mean = rng.next_f64() * 100.0;
            let sd = 1.0 + rng.next_f64() * 2.0;
            rel.insert_simple(
                &mut reg,
                &[("rid", Value::Int(rid))],
                &[("v", Pdf1::gaussian(mean, sd * sd).unwrap())],
            )
            .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("r".to_string(), rel);
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 40.0),
            Predicate::cmp("v", CmpOp::Le, 45.0),
        ]);
        let plan = Plan::ThresholdPred(Box::new(Plan::scan("r")), pred, CmpOp::Gt, 0.5);
        let ids = |r: &Relation| -> Vec<Value> {
            r.tuples.iter().map(|t| t.certain[0].clone()).collect()
        };
        let base = execute(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();

        let handle = IndexHandle::new();
        handle
            .lock()
            .create(IndexDef {
                name: "ix_v".into(),
                table: "r".into(),
                column: "v".into(),
                kind: IndexKind::Cdf,
            })
            .unwrap();
        for mode in [PlannerMode::Cost, PlannerMode::Rule] {
            let opts = ExecOptions {
                planner: mode,
                indexes: Some(handle.clone()),
                ..ExecOptions::default()
            };
            let (out, profile) =
                execute_profiled_with(&plan, &tables, &mut reg, &opts, None).unwrap();
            assert_eq!(ids(&out), ids(&base), "mode {mode:?} must match the scan bitwise");
            assert_eq!(profile.alternatives.len(), 2, "scan and index both priced");
            assert!(profile.alternatives[1].chosen, "index path wins under {mode:?}");
            assert!(profile.alternatives[1].cost < profile.alternatives[0].cost);
            assert_eq!(profile.stats.index_probes, 200);
            assert!(profile.stats.index_pruned > 100, "selective query prunes most tuples");
        }
    }

    #[test]
    fn select_planner_weighs_rebuild_and_prefers_index_when_fresh() {
        use crate::pindex::{IndexDef, IndexHandle, IndexKind};
        let schema = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        for rid in 1..=100i64 {
            rel.insert_simple(
                &mut reg,
                &[("rid", Value::Int(rid))],
                &[("x", Pdf1::uniform(0.0, 1.0).unwrap())],
            )
            .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("r".to_string(), rel);
        let plan = Plan::scan("r").select(Predicate::cmp("rid", CmpOp::Le, 10.0));
        let ids = |r: &Relation| -> Vec<Value> {
            r.tuples.iter().map(|t| t.certain[0].clone()).collect()
        };
        let base = execute(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(base.len(), 10);

        let handle = IndexHandle::new();
        handle
            .lock()
            .create(IndexDef {
                name: "ix_rid".into(),
                table: "r".into(),
                column: "rid".into(),
                kind: IndexKind::Evx,
            })
            .unwrap();
        // Cold cache under Cost: the rebuild term makes the scan cheaper
        // for a certain-only (pdf-free) predicate.
        let cost_opts = ExecOptions {
            planner: PlannerMode::Cost,
            indexes: Some(handle.clone()),
            ..ExecOptions::default()
        };
        let (out, profile) =
            execute_profiled_with(&plan, &tables, &mut reg, &cost_opts, None).unwrap();
        assert_eq!(ids(&out), ids(&base));
        assert!(profile.alternatives[0].chosen, "cold build: scan wins on cost");
        // Rule mode forces the index (building it as a side effect) ...
        let rule_opts = ExecOptions { planner: PlannerMode::Rule, ..cost_opts.clone() };
        let (out, profile) =
            execute_profiled_with(&plan, &tables, &mut reg, &rule_opts, None).unwrap();
        assert_eq!(ids(&out), ids(&base));
        assert!(profile.alternatives[1].chosen, "rule mode always takes a usable index");
        assert_eq!(profile.stats.index_probes, 100);
        assert_eq!(profile.stats.index_pruned, 90);
        // ... after which the Cost planner flips to the now-fresh index.
        let (out, profile) =
            execute_profiled_with(&plan, &tables, &mut reg, &cost_opts, None).unwrap();
        assert_eq!(ids(&out), ids(&base));
        assert!(profile.alternatives[1].chosen, "fresh build: index-range wins on cost");
    }

    #[test]
    fn has_threshold_detection() {
        let p = Plan::scan("t").select(Predicate::cmp("x", CmpOp::Lt, 1.0));
        assert!(!p.has_threshold());
        let t = Plan::ThresholdAttrs(Box::new(p), vec!["x".into()], CmpOp::Gt, 0.5);
        assert!(t.has_threshold());
        assert!(Plan::scan("a").join_on(t, None).has_threshold());
    }
}
