//! Persistent secondary indexes over probabilistic attributes.
//!
//! This subsystem promotes the in-memory [`crate::index::SupportIndex`]
//! idea into a cataloged, page-backed, planner-visible form. Two index
//! kinds exist, both bulk-loaded into a static [`BTree`] (see
//! `orion-storage`'s `btree` module):
//!
//! * **`evx`** — over a *certain* column. Key = the numeric value (a
//!   certain value is its own expected value); payload = tuple position.
//!   Serves certain-column range/equality selections.
//! * **`cdf`** — over an *uncertain* column. Key = the *upper* bound of
//!   the marginal's effective support; payload = tuple position, support
//!   lower bound, total mass, and the conditional-quantile locations at
//!   the [`CDF_LEVELS`] probability levels (the paper's companion
//!   probabilistic-threshold-index work keys nodes by exactly such
//!   interval + probability-bound pairs). Serves threshold queries
//!   `σ_{Pr(A∈[l,u]) ⊙ p}`; since only lower-bounded thresholds are
//!   prunable, hi-keying turns the support-disjointness prune into a
//!   B+tree seek past the non-candidates.
//!
//! **Soundness contract.** An index probe never answers a query by itself:
//! it produces a *candidate mask* — a superset of the tuples that can pass
//! — and the executor runs the ordinary operator over all tuples, skipping
//! only masked-out positions. A pruned tuple's residual probability is
//! bounded (≤ the 1e-9 effective-support tail, or provably ≤ `p` via the
//! mass/cdf upper bounds with a 1e-6 margin), never guessed, so indexed
//! and scanned results are bitwise identical for any threshold
//! `p ≥` [`MIN_PRUNABLE_P`]. Tuples without a usable key (NULL / missing
//! node / NaN support) are always candidates — 3VL semantics stay with the
//! evaluator.
//!
//! **Maintenance protocol: invalidate + rebuild.** The catalog tracks a
//! per-table *staleness epoch*, bumped by every committed DML
//! ([`IndexCatalog::note_mutation`]). A built tree is tagged with the
//! epoch it was built at and lazily rebuilt on first use after the table
//! changed. Only index *definitions* are durable (WAL tag + checkpoint
//! section in `persist`/`durable`); tree pages are rebuilt
//! deterministically from the recovered table, which makes replay
//! idempotent by construction — the recovery oracle proves the rebuilt
//! index answers bitwise-equal to a fresh one.

use crate::error::{EngineError, Result};
use crate::predicate::CmpOp;
use crate::relation::Relation;
use crate::value::Value;
use orion_pdf::prelude::Interval;
use orion_storage::{BTree, MemStore};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Probability levels at which a `cdf` index stores the marginal's
/// conditional quantile location (the smallest `x` with
/// `F(x) ≥ level · mass`). Pruning a threshold `Pr(θ) > p` via the level
/// `q` requires `1 - q` to clear `p` by [`CDF_MARGIN`], so each level sits
/// just past a common round threshold (0.101 serves `p = 0.9`, 0.051
/// serves `p = 0.95`, …) instead of exactly on it.
pub const CDF_LEVELS: [f64; 13] =
    [0.011, 0.051, 0.101, 0.151, 0.201, 0.301, 0.401, 0.501, 0.601, 0.701, 0.801, 0.901, 0.951];

/// Smallest threshold probability the index may prune at. Effective
/// supports truncate at most 1e-9 of mass, and the cdf upper bounds carry
/// a 1e-6 comparison margin, so pruning below this could (in theory)
/// disagree with the scan's numerics; such thresholds fall back to a scan.
pub const MIN_PRUNABLE_P: f64 = 1e-6;

/// Margin subtracted before a cdf-level upper bound may prune: the bound
/// and the scan's flooring machinery evaluate the same analytic cdf along
/// different code paths, so only a clear gap is trusted.
const CDF_MARGIN: f64 = 1e-6;

/// `evx` payload: tuple position.
const EVX_PAYLOAD: usize = 4;
/// `cdf` payload: tuple position + support lo + mass + per-level quantile
/// location.
const CDF_PAYLOAD: usize = 4 + 8 + 8 + 8 * CDF_LEVELS.len();

/// Which key layout an index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Certain/expected-value keys over a certain column.
    Evx,
    /// Cdf-summary keys (support interval + mass bounds) over an
    /// uncertain column.
    Cdf,
}

impl IndexKind {
    /// Lowercase display/parse name (`USING evx|cdf`, `orion.indexes`).
    pub fn as_str(self) -> &'static str {
        match self {
            IndexKind::Evx => "evx",
            IndexKind::Cdf => "cdf",
        }
    }

    /// Parses a kind name (case-insensitive).
    pub fn parse(s: &str) -> Option<IndexKind> {
        match s.to_ascii_lowercase().as_str() {
            "evx" => Some(IndexKind::Evx),
            "cdf" => Some(IndexKind::Cdf),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            IndexKind::Evx => 0,
            IndexKind::Cdf => 1,
        }
    }

    fn from_tag(t: u8) -> Option<IndexKind> {
        match t {
            0 => Some(IndexKind::Evx),
            1 => Some(IndexKind::Cdf),
            _ => None,
        }
    }
}

/// A durable index definition (the tree itself is rebuilt, never stored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Unique index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column.
    pub column: String,
    /// Key layout.
    pub kind: IndexKind,
}

impl IndexDef {
    /// Canonical byte encoding (WAL payloads, checkpoint section,
    /// fingerprints).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the canonical encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        put_str(out, &self.table);
        put_str(out, &self.column);
        out.push(self.kind.tag());
    }

    /// Decodes one definition, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(IndexDef, usize)> {
        let mut pos = 0usize;
        let name = get_str(buf, &mut pos)?;
        let table = get_str(buf, &mut pos)?;
        let column = get_str(buf, &mut pos)?;
        let tag =
            *buf.get(pos).ok_or_else(|| EngineError::Corrupt("index def truncated".into()))?;
        pos += 1;
        let kind = IndexKind::from_tag(tag)
            .ok_or_else(|| EngineError::Corrupt(format!("unknown index kind tag {tag}")))?;
        Ok((IndexDef { name, table, column, kind }, pos))
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let end = *pos + 4;
    let len = buf
        .get(*pos..end)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
        .ok_or_else(|| EngineError::Corrupt("index def truncated".into()))?;
    let bytes = buf
        .get(end..end + len)
        .ok_or_else(|| EngineError::Corrupt("index def truncated".into()))?;
    *pos = end + len;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| EngineError::Corrupt("index def is not utf-8".into()))
}

/// A materialized index: a static B+tree over the relation's tuples as of
/// one staleness epoch, plus the positions that could not be keyed.
pub struct BuiltIndex {
    /// The definition this tree materializes.
    pub def: IndexDef,
    /// The table's staleness epoch at build time.
    pub epoch: u64,
    /// Tuple count at build time (probe masks are this long).
    pub rows: usize,
    tree: BTree<MemStore>,
    /// Positions without a usable key (NULL value, missing pdf node, NaN
    /// support): always candidates for `cdf`, candidates for `evx` too —
    /// three-valued logic is decided by the evaluator, never by the index.
    unkeyed: Vec<u32>,
}

impl BuiltIndex {
    /// Bulk-loads the index for `def` over `rel` at staleness `epoch`.
    pub fn build(def: &IndexDef, rel: &Relation, epoch: u64) -> Result<BuiltIndex> {
        let col = rel
            .schema
            .column(&def.column)
            .ok_or_else(|| EngineError::Schema(format!("unknown column '{}'", def.column)))?;
        match def.kind {
            IndexKind::Evx if col.uncertain => {
                return Err(EngineError::Operator(format!(
                    "evx index needs a certain column ('{}' is uncertain); use USING cdf",
                    def.column
                )))
            }
            IndexKind::Cdf if !col.uncertain => {
                return Err(EngineError::Operator(format!(
                    "cdf index needs an uncertain column ('{}' is certain); use USING evx",
                    def.column
                )))
            }
            _ => {}
        }
        let mut entries: Vec<(f64, Vec<u8>)> = Vec::with_capacity(rel.len());
        let mut unkeyed: Vec<u32> = Vec::new();
        match def.kind {
            IndexKind::Evx => {
                let idx = rel.schema.index_of(&def.column).expect("column exists");
                for (i, t) in rel.tuples.iter().enumerate() {
                    // i64 keys above 2^53 would round in f64; keep such
                    // tuples unkeyed rather than risk an unsound range.
                    let key = match &t.certain[idx] {
                        Value::Int(v) if v.unsigned_abs() <= (1u64 << 53) => Some(*v as f64),
                        Value::Real(r) if !r.is_nan() => Some(*r),
                        _ => None,
                    };
                    match key {
                        Some(k) => entries.push((k, (i as u32).to_le_bytes().to_vec())),
                        None => unkeyed.push(i as u32),
                    }
                }
            }
            IndexKind::Cdf => {
                for (i, t) in rel.tuples.iter().enumerate() {
                    let summary = t
                        .node_for(col.id)
                        .and_then(|node| node.marginal(col.id).map(|m| (node.mass(), m)))
                        .and_then(|(mass, m)| m.effective_support().map(|s| (mass, m, s)));
                    let Some((mass, marginal, support)) = summary else {
                        unkeyed.push(i as u32);
                        continue;
                    };
                    if support.lo.is_nan() || support.hi.is_nan() {
                        unkeyed.push(i as u32);
                        continue;
                    }
                    let mut payload = Vec::with_capacity(CDF_PAYLOAD);
                    payload.extend_from_slice(&(i as u32).to_le_bytes());
                    payload.extend_from_slice(&support.lo.to_bits().to_le_bytes());
                    payload.extend_from_slice(&mass.to_bits().to_le_bytes());
                    // Quantile *locations* rather than cdf values at fixed
                    // support fractions: the probe compares the query bound
                    // against these x's, so the unpruned band around any
                    // threshold `p` is one level-gap wide in probability
                    // space — support-fraction grids leave bands that widen
                    // with the marginal's tail length.
                    for q in CDF_LEVELS {
                        let x = marginal.quantile(q).unwrap_or(f64::NAN);
                        payload.extend_from_slice(&x.to_bits().to_le_bytes());
                    }
                    // Keyed by support.hi: the only prunable thresholds are
                    // lower-bounded (`Pr(col > T) ⊙ p` with ⊙ ∈ {>, ≥}), so
                    // `support.hi < T` — the wholesale prune — becomes a
                    // B+tree seek past the non-candidates instead of a
                    // per-entry payload check over the whole tree.
                    entries.push((support.hi, payload));
                }
            }
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN keys filtered"));
        let payload_len = match def.kind {
            IndexKind::Evx => EVX_PAYLOAD,
            IndexKind::Cdf => CDF_PAYLOAD,
        };
        let tree = BTree::build(&entries, payload_len)?;
        Ok(BuiltIndex { def: def.clone(), epoch, rows: rel.len(), tree, unkeyed })
    }

    /// Pages occupied by the tree.
    pub fn pages(&self) -> u32 {
        self.tree.page_count()
    }

    /// Keyed entries in the tree.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the tree holds no keyed entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Candidate mask for `σ_{Pr(col ∈ [l,u]) ⊙ p}` over a `cdf` index:
    /// `Ok(None)` when this probe cannot prune (wrong kind, non-upper-bound
    /// operator, or `p` below [`MIN_PRUNABLE_P`]); otherwise a sound
    /// superset mask plus the number of index entries probed.
    pub fn threshold_mask(
        &self,
        iv: &Interval,
        op: CmpOp,
        p: f64,
    ) -> Result<Option<(Vec<bool>, u64)>> {
        if self.def.kind != IndexKind::Cdf
            || !matches!(op, CmpOp::Gt | CmpOp::Ge)
            || p.is_nan()
            || p < MIN_PRUNABLE_P
        {
            return Ok(None);
        }
        // `> p` needs mass > p; `>= p` tolerates equality (tiny slack).
        let min_mass = if op == CmpOp::Gt { p } else { p - 1e-12 };
        let mut mask = vec![false; self.rows];
        for &u in &self.unkeyed {
            mask[u as usize] = true;
        }
        // Entries with `support.hi < iv.lo` are support-disjoint from the
        // query and skipped by the key seek itself; entries above it decode
        // their payload for the remaining bounds.
        let probes = self.tree.range(iv.lo, f64::INFINITY, |_hi, payload| {
            let tuple = u32::from_le_bytes(payload[..4].try_into().expect("payload len")) as usize;
            let lo = f64::from_bits(u64::from_le_bytes(payload[4..12].try_into().expect("len")));
            let mass = f64::from_bits(u64::from_le_bytes(payload[12..20].try_into().expect("len")));
            // NaN mass keeps the tuple a candidate (no `mass > min_mass`
            // evidence), matching the evaluator-owned three-valued logic.
            if lo > iv.hi || mass <= min_mass {
                return; // support-disjoint above or mass bound already fails
            }
            // Quantile-level refinement: `x_k` is the smallest point with
            // `F(x_k) ≥ q_k·mass`, so `Pr(col ∈ [l,u]) ≤ mass·(1 - q_k)`
            // when the query sits entirely above `x_k` (and `≤ q_k·mass`
            // when entirely below). Prune only past the comparison margin.
            // Walked highest level first — for the common lower-bounded
            // query that is the strongest bound, so a deeply pruned entry
            // decodes one level, not all of them.
            let mut ub = mass;
            for (k, q) in CDF_LEVELS.iter().enumerate().rev() {
                let x = f64::from_bits(u64::from_le_bytes(
                    payload[20 + 8 * k..28 + 8 * k].try_into().expect("len"),
                ));
                if x.is_nan() {
                    continue;
                }
                if iv.lo > x {
                    ub = ub.min(mass * (1.0 - q));
                }
                if iv.hi < x {
                    ub = ub.min(mass * q);
                }
                if ub <= p - CDF_MARGIN {
                    return; // already provably below the threshold
                }
            }
            if ub <= p - CDF_MARGIN {
                return;
            }
            mask[tuple] = true;
        })?;
        Ok(Some((mask, probes as u64)))
    }

    /// Candidate mask for a certain-column selection constrained to
    /// `[lo, hi]` over an `evx` index: `Ok(None)` when this index cannot
    /// serve the range, else a sound superset mask plus entries probed.
    pub fn range_mask(&self, lo: f64, hi: f64) -> Result<Option<(Vec<bool>, u64)>> {
        if self.def.kind != IndexKind::Evx || lo.is_nan() || hi.is_nan() {
            return Ok(None);
        }
        let mut mask = vec![false; self.rows];
        for &u in &self.unkeyed {
            mask[u as usize] = true;
        }
        let probes = self.tree.range(lo, hi, |_, payload| {
            let tuple = u32::from_le_bytes(payload[..4].try_into().expect("payload len")) as usize;
            mask[tuple] = true;
        })?;
        Ok(Some((mask, probes as u64)))
    }
}

impl fmt::Debug for BuiltIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuiltIndex")
            .field("def", &self.def)
            .field("epoch", &self.epoch)
            .field("rows", &self.rows)
            .field("pages", &self.pages())
            .finish()
    }
}

/// The session's index catalog: durable definitions, per-table staleness
/// epochs, and lazily (re)built trees.
#[derive(Debug, Default)]
pub struct IndexCatalog {
    /// Definitions by index name (sorted iteration gives the canonical
    /// encoding order).
    defs: BTreeMap<String, IndexDef>,
    /// Per-table mutation counters; a built tree whose epoch is behind is
    /// stale and rebuilt on next use.
    epochs: HashMap<String, u64>,
    /// Built trees by index name.
    built: HashMap<String, Arc<BuiltIndex>>,
}

impl IndexCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any index is defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Definitions in name order.
    pub fn defs(&self) -> impl Iterator<Item = &IndexDef> {
        self.defs.values()
    }

    /// One definition by name.
    pub fn get(&self, name: &str) -> Option<&IndexDef> {
        self.defs.get(name)
    }

    /// A private copy of the definitions and staleness epochs with an
    /// *empty* build cache. Per-statement query sessions plan against such
    /// a snapshot: any tree they build came from their own point-in-time
    /// relation copy and is never cached back into the shared catalog, so
    /// a commit racing the statement cannot poison freshness for later
    /// readers.
    pub fn snapshot(&self) -> IndexCatalog {
        IndexCatalog { defs: self.defs.clone(), epochs: self.epochs.clone(), built: HashMap::new() }
    }

    /// Definitions over `table` (optionally restricted to `column`), in
    /// name order.
    pub fn find(&self, table: &str, column: Option<&str>) -> Vec<&IndexDef> {
        self.defs
            .values()
            .filter(|d| d.table == table && column.is_none_or(|c| d.column == c))
            .collect()
    }

    /// Registers a definition (fails when the name is taken).
    pub fn create(&mut self, def: IndexDef) -> Result<()> {
        if self.defs.contains_key(&def.name) {
            return Err(EngineError::Operator(format!("index '{}' already exists", def.name)));
        }
        self.defs.insert(def.name.clone(), def);
        Ok(())
    }

    /// Re-applies a definition idempotently (WAL replay / checkpoint load:
    /// the same create record may be seen twice).
    pub fn install(&mut self, def: IndexDef) {
        self.built.remove(&def.name);
        self.defs.insert(def.name.clone(), def);
    }

    /// Drops a definition (and its built tree) by name.
    pub fn drop_index(&mut self, name: &str) -> Result<IndexDef> {
        self.built.remove(name);
        self.defs
            .remove(name)
            .ok_or_else(|| EngineError::Operator(format!("unknown index '{name}'")))
    }

    /// Drops every definition over `table` (DROP TABLE).
    pub fn drop_table(&mut self, table: &str) {
        let names: Vec<String> =
            self.defs.values().filter(|d| d.table == table).map(|d| d.name.clone()).collect();
        for n in names {
            self.defs.remove(&n);
            self.built.remove(&n);
        }
        self.epochs.remove(table);
    }

    /// Bumps `table`'s staleness epoch: every committed DML against the
    /// table calls this, invalidating its built trees.
    pub fn note_mutation(&mut self, table: &str) {
        if self.defs.values().any(|d| d.table == table) {
            *self.epochs.entry(table.to_string()).or_insert(0) += 1;
        }
    }

    /// The table's current staleness epoch.
    pub fn epoch(&self, table: &str) -> u64 {
        self.epochs.get(table).copied().unwrap_or(0)
    }

    /// Pages of the built tree for `name` (0 when not built yet).
    pub fn built_pages(&self, name: &str) -> u32 {
        self.built.get(name).map_or(0, |b| b.pages())
    }

    /// Whether a cached build for `name` is current for a relation of
    /// `rows` tuples — the same staleness test [`Self::ensure_built`]
    /// applies, exposed so the planner can price a pending rebuild.
    pub fn is_fresh(&self, name: &str, rows: usize) -> bool {
        match (self.built.get(name), self.defs.get(name)) {
            (Some(b), Some(def)) => b.epoch == self.epoch(&def.table) && b.rows == rows,
            _ => false,
        }
    }

    /// Returns the built tree for `name` over `rel`, rebuilding when the
    /// table's epoch moved past the build (or the tuple count diverged —
    /// belt and braces for un-noted mutations).
    pub fn ensure_built(&mut self, name: &str, rel: &Relation) -> Result<Arc<BuiltIndex>> {
        let def = self
            .defs
            .get(name)
            .ok_or_else(|| EngineError::Operator(format!("unknown index '{name}'")))?
            .clone();
        let epoch = self.epoch(&def.table);
        if let Some(b) = self.built.get(name) {
            if b.epoch == epoch && b.rows == rel.len() {
                return Ok(Arc::clone(b));
            }
        }
        let built = Arc::new(BuiltIndex::build(&def, rel, epoch)?);
        self.built.insert(name.to_string(), Arc::clone(&built));
        Ok(built)
    }

    /// Drops every built tree (definitions stay; used when the backing
    /// tables are replaced wholesale, e.g. transaction apply).
    pub fn clear_built(&mut self) {
        self.built.clear();
    }

    /// Canonical encoding of the definitions (checkpoint section,
    /// byte-compare staleness marks, fingerprints). Epochs and built trees
    /// are volatile and excluded.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.defs.len() as u32).to_le_bytes());
        for def in self.defs.values() {
            def.encode_into(&mut out);
        }
        out
    }

    /// Decodes a definitions section written by [`IndexCatalog::encode`].
    pub fn decode_defs(buf: &[u8]) -> Result<Vec<IndexDef>> {
        let n = buf
            .get(..4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
            .ok_or_else(|| EngineError::Corrupt("index section truncated".into()))?;
        let mut pos = 4usize;
        let mut defs = Vec::with_capacity(n);
        for _ in 0..n {
            let (def, used) = IndexDef::decode(&buf[pos..])?;
            pos += used;
            defs.push(def);
        }
        Ok(defs)
    }

    /// Replaces all definitions (checkpoint load), dropping built trees.
    pub fn replace_defs(&mut self, defs: Vec<IndexDef>) {
        self.defs.clear();
        self.built.clear();
        for d in defs {
            self.defs.insert(d.name.clone(), d);
        }
    }
}

/// A cloneable, thread-safe handle to a shared [`IndexCatalog`] — the
/// durable engine, SQL sessions, and [`crate::select::ExecOptions`] all
/// point at the same catalog so DML staleness bumps are visible to every
/// reader.
#[derive(Clone, Default)]
pub struct IndexHandle(Arc<Mutex<IndexCatalog>>);

impl IndexHandle {
    /// A handle to a fresh empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing catalog.
    pub fn from_catalog(cat: IndexCatalog) -> Self {
        IndexHandle(Arc::new(Mutex::new(cat)))
    }

    /// Locks the catalog (poison-tolerant: the catalog holds no partially
    /// applied state across panics).
    pub fn lock(&self) -> MutexGuard<'_, IndexCatalog> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IndexHandle({} defs)", self.lock().defs.len())
    }
}

/// Which access-path selection policy the planner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Cost-based: estimate scan vs index costs and pick the cheaper.
    Cost,
    /// Rule-based: always prefer a usable index.
    Rule,
}

impl PlannerMode {
    /// Reads `ORION_PLANNER` (`cost` default, `rule` forces indexes).
    pub fn from_env() -> Self {
        match std::env::var("ORION_PLANNER") {
            Ok(v) if v.eq_ignore_ascii_case("rule") => PlannerMode::Rule,
            _ => PlannerMode::Cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryRegistry;
    use crate::schema::{ColumnType, ProbSchema};
    use orion_pdf::prelude::*;
    use orion_pdf::sample::XorShift;

    fn readings(n: usize) -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        let mut rng = XorShift::new(31);
        for rid in 1..=n as i64 {
            let mean = rng.next_f64() * 100.0;
            let sd = 1.0 + rng.next_f64() * 2.0;
            rel.insert_simple(
                &mut reg,
                &[("rid", Value::Int(rid))],
                &[("v", Pdf1::gaussian(mean, sd * sd).unwrap())],
            )
            .unwrap();
        }
        (rel, reg)
    }

    fn cdf_def() -> IndexDef {
        IndexDef {
            name: "idx_v".into(),
            table: "r".into(),
            column: "v".into(),
            kind: IndexKind::Cdf,
        }
    }

    #[test]
    fn def_codec_round_trips() {
        let def = cdf_def();
        let bytes = def.encode();
        let (back, used) = IndexDef::decode(&bytes).unwrap();
        assert_eq!(back, def);
        assert_eq!(used, bytes.len());
        assert!(IndexDef::decode(&bytes[..bytes.len() - 1]).is_err(), "truncation detected");
        assert_eq!(IndexKind::parse("CDF"), Some(IndexKind::Cdf));
        assert_eq!(IndexKind::parse("evx"), Some(IndexKind::Evx));
        assert_eq!(IndexKind::parse("btree"), None);
    }

    #[test]
    fn cdf_mask_is_a_sound_superset() {
        let (rel, _) = readings(400);
        let built = BuiltIndex::build(&cdf_def(), &rel, 0).unwrap();
        assert_eq!(built.len(), 400);
        assert!(built.pages() >= 1);
        let iv = Interval::new(40.0, 45.0);
        for (op, p) in [(CmpOp::Gt, 0.5), (CmpOp::Ge, 0.9), (CmpOp::Gt, 1e-6), (CmpOp::Ge, 0.01)] {
            let (mask, probes) = built.threshold_mask(&iv, op, p).unwrap().expect("prunable");
            assert!(probes > 0);
            assert!(mask.iter().filter(|&&b| b).count() < rel.len(), "must prune something");
            for (ti, keep) in mask.iter().enumerate() {
                if !keep {
                    let prob = rel.marginal(ti, "v").unwrap().range_prob(&iv);
                    let passes = match op {
                        CmpOp::Gt => prob > p,
                        _ => prob >= p,
                    };
                    assert!(!passes, "tuple {ti} wrongly pruned (prob {prob}, p {p})");
                }
            }
        }
        // Non-upper-bound operators and tiny thresholds never prune.
        assert!(built.threshold_mask(&iv, CmpOp::Lt, 0.5).unwrap().is_none());
        assert!(built.threshold_mask(&iv, CmpOp::Gt, 1e-9).unwrap().is_none());
    }

    #[test]
    fn cdf_levels_prune_low_probability_overlaps() {
        // Two gaussians overlapping the query interval only in a far tail:
        // support intersects, mass is 1, but the stored cdf levels bound
        // the in-interval mass below p.
        let schema = ProbSchema::new(vec![("v", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        for mean in [0.0, 100.0] {
            rel.insert_simple(&mut reg, &[], &[("v", Pdf1::gaussian(mean, 4.0).unwrap())]).unwrap();
        }
        let def = IndexDef {
            name: "i".into(),
            table: "r".into(),
            column: "v".into(),
            kind: IndexKind::Cdf,
        };
        let built = BuiltIndex::build(&def, &rel, 0).unwrap();
        // Query near the very top of tuple 0's support: true prob ~ 1e-8.
        let sup = rel.marginal(0, "v").unwrap().effective_support().unwrap();
        let iv = Interval::new(sup.hi - 0.1, sup.hi);
        let (mask, _) = built.threshold_mask(&iv, CmpOp::Gt, 0.5).unwrap().unwrap();
        assert!(!mask[0], "cdf levels must prune the tail-only overlap");
        assert!(!mask[1], "support-disjoint tuple pruned");
    }

    #[test]
    fn evx_mask_matches_certain_range() {
        let (rel, _) = readings(200);
        let def = IndexDef {
            name: "idx_rid".into(),
            table: "r".into(),
            column: "rid".into(),
            kind: IndexKind::Evx,
        };
        let built = BuiltIndex::build(&def, &rel, 3).unwrap();
        assert_eq!(built.epoch, 3);
        let (mask, probes) = built.range_mask(50.0, 60.0).unwrap().expect("evx serves ranges");
        assert_eq!(probes, 11);
        for (ti, keep) in mask.iter().enumerate() {
            let Value::Int(rid) = rel.tuples[ti].certain[0] else { unreachable!() };
            assert_eq!(*keep, (50..=60).contains(&rid), "rid {rid}");
        }
        // Kind mismatches are rejected at build.
        let bad = IndexDef { kind: IndexKind::Cdf, ..def.clone() };
        assert!(BuiltIndex::build(&bad, &rel, 0).is_err());
        let bad = IndexDef { column: "v".into(), ..def };
        assert!(BuiltIndex::build(&bad, &rel, 0).is_err());
    }

    #[test]
    fn null_and_missing_keys_stay_candidates() {
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[("id", Value::Int(1))], &[("v", Pdf1::certain(5.0))])
            .unwrap();
        rel.insert_simple(&mut reg, &[("id", Value::Null)], &[("v", Pdf1::certain(50.0))]).unwrap();
        let def = IndexDef {
            name: "i".into(),
            table: "r".into(),
            column: "id".into(),
            kind: IndexKind::Evx,
        };
        let built = BuiltIndex::build(&def, &rel, 0).unwrap();
        let (mask, _) = built.range_mask(100.0, 200.0).unwrap().unwrap();
        assert!(!mask[0], "keyed out-of-range tuple pruned");
        assert!(mask[1], "NULL key must remain a candidate (3VL stays in the evaluator)");
    }

    #[test]
    fn catalog_staleness_epochs_and_codec() {
        let (rel, _) = readings(50);
        let mut cat = IndexCatalog::new();
        cat.create(cdf_def()).unwrap();
        assert!(cat.create(cdf_def()).is_err(), "duplicate name rejected");
        // note_mutation only counts tables that carry an index.
        cat.note_mutation("other");
        assert_eq!(cat.epoch("other"), 0);
        let b0 = cat.ensure_built("idx_v", &rel).unwrap();
        let b1 = cat.ensure_built("idx_v", &rel).unwrap();
        assert!(Arc::ptr_eq(&b0, &b1), "fresh build is cached");
        cat.note_mutation("r");
        assert_eq!(cat.epoch("r"), 1);
        let b2 = cat.ensure_built("idx_v", &rel).unwrap();
        assert!(!Arc::ptr_eq(&b0, &b2), "stale build rebuilt");
        assert_eq!(b2.epoch, 1);
        assert!(cat.built_pages("idx_v") >= 1);

        let bytes = cat.encode();
        let defs = IndexCatalog::decode_defs(&bytes).unwrap();
        assert_eq!(defs, vec![cdf_def()]);
        let mut cat2 = IndexCatalog::new();
        cat2.replace_defs(defs);
        assert_eq!(cat2.encode(), bytes, "canonical encoding is stable");

        cat.drop_index("idx_v").unwrap();
        assert!(cat.drop_index("idx_v").is_err());
        assert!(cat.is_empty());
    }

    #[test]
    fn handle_is_shared_and_debuggable() {
        let h = IndexHandle::new();
        let h2 = h.clone();
        h.lock().create(cdf_def()).unwrap();
        assert_eq!(h2.lock().defs().count(), 1);
        assert_eq!(format!("{h:?}"), "IndexHandle(1 defs)");
    }
}
