//! Database persistence: saving and loading a set of probabilistic
//! relations plus their history registry through the paged storage layer.
//!
//! The on-disk format is a single heap file of tagged records:
//!
//! ```text
//! [1: schema]  table name, columns (id, name, type, uncertain), Δ sets
//! [2: base]    registered base pdf: id, attrs, phantom flag, joint
//! [3: tuple]   owning table, certain values, pdf nodes
//!              (node = dims (VarId + optional column) + ancestors + joint)
//! [4: epoch]   checkpoint epoch stamp (u64) — the fence recovery uses to
//!              reject a stale WAL left by a crashed checkpoint
//! [5: stats]   one table's ANALYZE statistics (versioned catalog codec);
//!              replay overwrites per table, so it is idempotent
//! [6: begin]   transaction begin marker (txn id) — WAL only
//! [7: commit]  transaction commit marker (txn id) — WAL only
//! [8: abort]   transaction abort marker (txn id) — WAL only
//! [9: delete]  delete one tuple, identified by its exact encoded tuple
//!              record (content-addressed: base ids make live tuples
//!              unique; byte-equal duplicates are interchangeable)
//! [10: update] replace one tuple in place: the old tuple's encoded bytes
//!              plus the full replacement tuple record
//! [11: index]  one secondary-index definition (name, table, column, kind);
//!              replay installs-or-overwrites by name, so it is idempotent
//! [12: index drop] drop one index definition by name; dropping an unknown
//!              name is a no-op, so replay is idempotent
//! ```
//!
//! Records 6–8 never reach [`apply_record`]: WAL replay intercepts them
//! ([`txn_marker`]) and buffers the records between a begin and its commit,
//! applying the group atomically — a begin whose commit never made it to
//! stable storage (crash mid-transaction) or that is followed by an abort
//! marker is discarded wholesale. Snapshots contain only committed state
//! and therefore never carry tags 6–10.
//!
//! Schemas are written first, then bases, then tuples, so a single pass
//! loads everything. Reference counts are rebuilt from the loaded tuples'
//! ancestor sets, and both the attribute-id and pdf-id allocators are
//! bumped past every persisted id so later inserts cannot collide.
//!
//! Durability: [`save_database`] is **atomic** — it writes a temp file,
//! fsyncs it, and renames it over the target, so a crash mid-save leaves
//! the previous snapshot intact. Every decoder is hardened against
//! arbitrary bytes (bounds checks before every read, overflow-checked size
//! computations), surfacing [`EngineError::Corrupt`] instead of panicking.
//! [`apply_record`] applies one tagged record to an in-memory database and
//! is shared between snapshot loading and WAL replay
//! ([`crate::durable::DurableDb`]).

use crate::error::{EngineError, Result};
use crate::history::{Ancestors, BasePdf, HistoryRegistry, PdfId};
use crate::pindex::{IndexCatalog, IndexDef};
use crate::relation::Relation;
use crate::schema::{ensure_attr_floor, AttrId, Column, ColumnType, ProbSchema};
use crate::stats_catalog::{StatsCatalog, TableStats};
use crate::tuple::{NodeDim, PdfNode, ProbTuple, VarId};
use crate::value::Value;
use bytes::{Buf, BufMut};
use orion_storage::codec::{checked_size, decode_joint, encode_joint, need, DecodeError};
use orion_storage::{DeltaFile, FileStore, HeapFile, MemStore, Page, PageStore};
use std::collections::HashMap;
use std::path::Path;

pub(crate) const TAG_SCHEMA: u8 = 1;
pub(crate) const TAG_BASE: u8 = 2;
pub(crate) const TAG_TUPLE: u8 = 3;
pub(crate) const TAG_EPOCH: u8 = 4;
pub(crate) const TAG_STATS: u8 = 5;
pub(crate) const TAG_TXN_BEGIN: u8 = 6;
pub(crate) const TAG_TXN_COMMIT: u8 = 7;
pub(crate) const TAG_TXN_ABORT: u8 = 8;
pub(crate) const TAG_DELETE: u8 = 9;
pub(crate) const TAG_UPDATE: u8 = 10;
pub(crate) const TAG_INDEX: u8 = 11;
pub(crate) const TAG_INDEX_DROP: u8 = 12;

fn put_str(s: &str, out: &mut impl BufMut) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_u8c(buf: &mut impl Buf, what: &str) -> std::result::Result<u8, DecodeError> {
    need(buf, 1, what)?;
    Ok(buf.get_u8())
}

fn get_u16c(buf: &mut impl Buf, what: &str) -> std::result::Result<u16, DecodeError> {
    need(buf, 2, what)?;
    Ok(buf.get_u16_le())
}

fn get_u32c(buf: &mut impl Buf, what: &str) -> std::result::Result<u32, DecodeError> {
    need(buf, 4, what)?;
    Ok(buf.get_u32_le())
}

fn get_u64c(buf: &mut impl Buf, what: &str) -> std::result::Result<u64, DecodeError> {
    need(buf, 8, what)?;
    Ok(buf.get_u64_le())
}

/// Reads a count field and verifies the buffer can possibly hold that many
/// elements of at least `min_elem` bytes each — rejecting absurd counts
/// before any `Vec::with_capacity` can abort on them.
fn get_count(
    buf: &mut impl Buf,
    min_elem: usize,
    what: &str,
) -> std::result::Result<usize, DecodeError> {
    let n = get_u32c(buf, what)? as usize;
    need(buf, checked_size(n, min_elem, what)?, what)?;
    Ok(n)
}

fn get_str(buf: &mut impl Buf) -> std::result::Result<String, DecodeError> {
    let n = get_u32c(buf, "string length")? as usize;
    need(buf, n, "string")?;
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| DecodeError(format!("invalid utf8: {e}")))
}

fn put_value(v: &Value, out: &mut impl BufMut) {
    match v {
        Value::Null => out.put_u8(0),
        Value::Int(i) => {
            out.put_u8(1);
            out.put_i64_le(*i);
        }
        Value::Real(r) => {
            out.put_u8(2);
            out.put_f64_le(*r);
        }
        Value::Text(s) => {
            out.put_u8(3);
            put_str(s, out);
        }
        Value::Bool(b) => {
            out.put_u8(4);
            out.put_u8(u8::from(*b));
        }
    }
}

fn get_value(buf: &mut impl Buf) -> std::result::Result<Value, DecodeError> {
    Ok(match get_u8c(buf, "value tag")? {
        0 => Value::Null,
        1 => {
            need(buf, 8, "int value")?;
            Value::Int(buf.get_i64_le())
        }
        2 => {
            need(buf, 8, "real value")?;
            Value::Real(buf.get_f64_le())
        }
        3 => Value::Text(get_str(buf)?),
        4 => Value::Bool(get_u8c(buf, "bool value")? != 0),
        t => return Err(DecodeError(format!("unknown value tag {t}"))),
    })
}

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Real => 1,
        ColumnType::Text => 2,
        ColumnType::Bool => 3,
    }
}

fn type_of(tag: u8) -> std::result::Result<ColumnType, DecodeError> {
    Ok(match tag {
        0 => ColumnType::Int,
        1 => ColumnType::Real,
        2 => ColumnType::Text,
        3 => ColumnType::Bool,
        t => return Err(DecodeError(format!("unknown column type {t}"))),
    })
}

pub(crate) fn encode_schema(rel: &Relation, out: &mut Vec<u8>) {
    out.put_u8(TAG_SCHEMA);
    put_str(&rel.name, out);
    out.put_u32_le(rel.schema.columns().len() as u32);
    for c in rel.schema.columns() {
        out.put_u64_le(c.id);
        put_str(&c.name, out);
        out.put_u8(type_tag(c.ty));
        out.put_u8(u8::from(c.uncertain));
    }
    out.put_u32_le(rel.schema.deps().len() as u32);
    for set in rel.schema.deps() {
        out.put_u32_le(set.len() as u32);
        for &a in set {
            out.put_u64_le(a);
        }
    }
}

pub(crate) fn encode_base(id: PdfId, base: &BasePdf, out: &mut Vec<u8>) {
    out.put_u8(TAG_BASE);
    out.put_u64_le(id);
    out.put_u8(u8::from(base.phantom));
    out.put_u32_le(base.attrs.len() as u32);
    for &a in &base.attrs {
        out.put_u64_le(a);
    }
    encode_joint(&base.joint, out);
}

pub(crate) fn encode_tuple(table: &str, t: &ProbTuple, out: &mut Vec<u8>) {
    out.put_u8(TAG_TUPLE);
    put_str(table, out);
    out.put_u32_le(t.certain.len() as u32);
    for v in &t.certain {
        put_value(v, out);
    }
    out.put_u32_le(t.nodes.len() as u32);
    for n in &t.nodes {
        out.put_u32_le(n.dims.len() as u32);
        for d in &n.dims {
            out.put_u64_le(d.var.base);
            out.put_u16_le(d.var.dim);
            match d.column {
                Some(a) => {
                    out.put_u8(1);
                    out.put_u64_le(a);
                }
                None => out.put_u8(0),
            }
        }
        out.put_u32_le(n.ancestors.len() as u32);
        for &a in &n.ancestors {
            out.put_u64_le(a);
        }
        encode_joint(&n.joint, out);
    }
}

pub(crate) fn encode_epoch(epoch: u64, out: &mut Vec<u8>) {
    out.put_u8(TAG_EPOCH);
    out.put_u64_le(epoch);
}

/// Encodes one table's ANALYZE statistics as a tagged record.
pub(crate) fn encode_stats(stats: &TableStats, out: &mut Vec<u8>) {
    out.put_u8(TAG_STATS);
    out.extend_from_slice(&stats.encode());
}

/// Encodes one secondary-index definition as a tagged record.
pub(crate) fn encode_index_def(def: &IndexDef, out: &mut Vec<u8>) {
    out.put_u8(TAG_INDEX);
    def.encode_into(out);
}

/// Encodes an index drop (by name) as a tagged record.
pub(crate) fn encode_index_drop(name: &str, out: &mut Vec<u8>) {
    out.put_u8(TAG_INDEX_DROP);
    put_str(name, out);
}

/// If `rec` is a checkpoint-epoch record, the epoch it carries.
pub(crate) fn record_epoch(rec: &[u8]) -> Option<u64> {
    if rec.len() == 9 && rec[0] == TAG_EPOCH {
        Some(u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes")))
    } else {
        None
    }
}

/// A transaction framing marker found in the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnMarker {
    /// Start buffering: records until the matching commit belong to txn.
    Begin(u64),
    /// Apply the buffered records atomically.
    Commit(u64),
    /// Discard the buffered records.
    Abort(u64),
}

/// Encodes a 9-byte transaction marker record (begin/commit/abort).
pub(crate) fn encode_txn_marker(tag: u8, txid: u64, out: &mut Vec<u8>) {
    debug_assert!(matches!(tag, TAG_TXN_BEGIN | TAG_TXN_COMMIT | TAG_TXN_ABORT));
    out.put_u8(tag);
    out.put_u64_le(txid);
}

/// If `rec` is a transaction marker, which one. Strict like
/// [`record_epoch`]: a truncated marker is not a marker.
pub(crate) fn txn_marker(rec: &[u8]) -> Option<TxnMarker> {
    if rec.len() != 9 {
        return None;
    }
    let id = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
    match rec[0] {
        TAG_TXN_BEGIN => Some(TxnMarker::Begin(id)),
        TAG_TXN_COMMIT => Some(TxnMarker::Commit(id)),
        TAG_TXN_ABORT => Some(TxnMarker::Abort(id)),
        _ => None,
    }
}

/// Encodes a content-addressed delete: the target tuple is identified by
/// its exact encoded tuple record. Base-pdf ids make live tuples unique;
/// byte-equal duplicates (certain-only rows) are interchangeable, so
/// removing the latest match is deterministic.
pub(crate) fn encode_delete(table: &str, old_tuple_rec: &[u8], out: &mut Vec<u8>) {
    out.put_u8(TAG_DELETE);
    put_str(table, out);
    out.put_u32_le(old_tuple_rec.len() as u32);
    out.put_slice(old_tuple_rec);
}

/// Encodes an in-place replacement: the old tuple's encoded record (the
/// content address) followed by the full replacement tuple record.
pub(crate) fn encode_update(
    table: &str,
    old_tuple_rec: &[u8],
    new_tuple_rec: &[u8],
    out: &mut Vec<u8>,
) {
    out.put_u8(TAG_UPDATE);
    put_str(table, out);
    out.put_u32_le(old_tuple_rec.len() as u32);
    out.put_slice(old_tuple_rec);
    out.put_u32_le(new_tuple_rec.len() as u32);
    out.put_slice(new_tuple_rec);
}

/// Saves every relation and the registry into one file at `path`
/// **atomically**: the snapshot is written to a `.tmp` sibling, fsynced,
/// and renamed over `path`, so a crash at any point leaves either the old
/// snapshot or the new one — never a half-written file.
pub fn save_database(
    path: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
) -> Result<()> {
    save_snapshot(path, tables, reg, 0)
}

/// [`save_database`] stamped with a checkpoint `epoch`. The epoch is the
/// fence recovery uses to detect a WAL left behind by a checkpoint that
/// crashed between the snapshot rename and the WAL reset: such a WAL
/// carries a smaller epoch than the snapshot and must be discarded, not
/// replayed (its records are already folded into the snapshot). Epoch 0
/// (no checkpoint yet) writes no stamp, matching the legacy format.
pub fn save_snapshot(
    path: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    epoch: u64,
) -> Result<()> {
    save_snapshot_with_stats(path, tables, reg, &StatsCatalog::new(), epoch)
}

/// [`save_snapshot`] that also persists the ANALYZE stats catalog: one
/// stats record per analyzed table, written after the tuples so replay sees
/// schemas first. An empty catalog writes nothing, matching the legacy
/// format byte for byte.
pub fn save_snapshot_with_stats(
    path: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
    epoch: u64,
) -> Result<()> {
    save_snapshot_full(path, tables, reg, stats, &IndexCatalog::new(), epoch)
}

/// [`save_snapshot_with_stats`] that also persists the secondary-index
/// catalog: one index record per definition, written last (after stats).
/// Only definitions are durable — trees are rebuilt deterministically on
/// first use. An empty catalog writes nothing, matching the legacy format
/// byte for byte.
pub fn save_snapshot_full(
    path: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
    indexes: &IndexCatalog,
    epoch: u64,
) -> Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let mut heap = HeapFile::new(FileStore::create(&tmp)?, 64);
    let mut buf = Vec::with_capacity(4096);
    if epoch > 0 {
        encode_epoch(epoch, &mut buf);
        heap.insert(&buf)?;
    }
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    for name in &names {
        buf.clear();
        encode_schema(&tables[*name], &mut buf);
        heap.insert(&buf)?;
    }
    let mut bases: Vec<_> = reg.iter_bases().collect();
    bases.sort_by_key(|(id, _)| *id);
    for (id, base) in bases {
        buf.clear();
        encode_base(id, base, &mut buf);
        heap.insert(&buf)?;
    }
    for name in &names {
        for t in &tables[*name].tuples {
            buf.clear();
            encode_tuple(name, t, &mut buf);
            heap.insert(&buf)?;
        }
    }
    for ts in stats.iter() {
        buf.clear();
        encode_stats(ts, &mut buf);
        heap.insert(&buf)?;
    }
    for def in indexes.defs() {
        buf.clear();
        encode_index_def(def, &mut buf);
        heap.insert(&buf)?;
    }
    heap.sync()?;
    drop(heap);
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable: fsync the containing directory.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

fn bad(e: DecodeError) -> EngineError {
    EngineError::Corrupt(e.to_string())
}

fn get_blob(buf: &mut impl Buf, what: &str) -> std::result::Result<Vec<u8>, DecodeError> {
    let n = get_u32c(buf, what)? as usize;
    need(buf, n, what)?;
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    Ok(bytes)
}

/// Decodes the body of a tuple record (everything after the tag byte) into
/// its owning table name and the tuple — **without** touching any table or
/// reference count. `max_attr` accumulates the highest attribute id seen.
fn decode_tuple_body(buf: &mut impl Buf, max_attr: &mut AttrId) -> Result<(String, ProbTuple)> {
    let table = get_str(buf).map_err(bad)?;
    let ncert = get_count(buf, 1, "certain values").map_err(bad)?;
    let mut certain = Vec::with_capacity(ncert);
    for _ in 0..ncert {
        certain.push(get_value(buf).map_err(bad)?);
    }
    let nnodes = get_count(buf, 8, "pdf nodes").map_err(bad)?;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        // Dim: base(8) + dim(2) + column flag(1) minimum.
        let ndims = get_count(buf, 11, "node dims").map_err(bad)?;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let base = get_u64c(buf, "dim base").map_err(bad)?;
            let dim = get_u16c(buf, "dim index").map_err(bad)?;
            let column = if get_u8c(buf, "dim column flag").map_err(bad)? != 0 {
                let a = get_u64c(buf, "dim column").map_err(bad)?;
                *max_attr = (*max_attr).max(a);
                Some(a)
            } else {
                None
            };
            dims.push(NodeDim { var: VarId { base, dim }, column });
        }
        let nanc = get_count(buf, 8, "ancestors").map_err(bad)?;
        let mut ancestors = Ancestors::new();
        for _ in 0..nanc {
            ancestors.insert(get_u64c(buf, "ancestor id").map_err(bad)?);
        }
        let joint = decode_joint(buf).map_err(bad)?;
        nodes.push(PdfNode::new(dims, joint, ancestors));
    }
    Ok((table, ProbTuple { certain, nodes }))
}

/// Decodes a full tuple record (tag byte included) without applying it.
/// Update records embed their replacement tuple as one of these blobs.
pub(crate) fn decode_tuple_record(
    rec: &[u8],
    max_attr: &mut AttrId,
) -> Result<(String, ProbTuple)> {
    let mut buf = rec;
    let buf = &mut buf;
    let tag = get_u8c(buf, "record tag").map_err(bad)?;
    if tag != TAG_TUPLE {
        return Err(EngineError::Corrupt(format!("expected tuple record, got tag {tag}")));
    }
    decode_tuple_body(buf, max_attr)
}

/// Index of the **latest** tuple in `rel` whose encoding equals `old`.
/// Base-pdf ids make pdf-carrying tuples unique; byte-equal certain-only
/// duplicates are interchangeable, so "latest match" is deterministic.
fn find_tuple_by_bytes(table: &str, rel: &Relation, old: &[u8]) -> Result<usize> {
    let mut probe = Vec::with_capacity(old.len());
    rel.tuples
        .iter()
        .rposition(|t| {
            probe.clear();
            encode_tuple(table, t, &mut probe);
            probe == old
        })
        .ok_or_else(|| EngineError::Corrupt(format!("delete/update target not found in '{table}'")))
}

/// State threaded through [`apply_record`] across a load or WAL replay:
/// the tables and registry being rebuilt, plus the highest attribute id
/// seen (for bumping the allocator afterwards via
/// [`ensure_attr_floor`]).
#[derive(Debug, Default)]
pub struct LoadState {
    /// Relations rebuilt so far, by table name.
    pub tables: HashMap<String, Relation>,
    /// Registry rebuilt so far (refcounts accumulate from tuple records).
    pub reg: HistoryRegistry,
    /// Highest attribute id observed in any decoded record.
    pub max_attr: AttrId,
    /// Highest checkpoint epoch observed (0 when no stamp has been seen):
    /// the fence below which WAL records are stale — see
    /// [`save_snapshot`].
    pub wal_epoch: u64,
    /// ANALYZE statistics rebuilt so far (stats records overwrite per
    /// table, so replay is idempotent).
    pub stats: StatsCatalog,
    /// Secondary-index definitions rebuilt so far (index records install
    /// by name and drops ignore unknown names, so replay is idempotent).
    pub indexes: IndexCatalog,
}

impl LoadState {
    /// Bumps the global attribute allocator past every id seen, so fresh
    /// schemas created after this load cannot collide. Call once after the
    /// last [`apply_record`].
    pub fn finish(self) -> (HashMap<String, Relation>, HistoryRegistry) {
        ensure_attr_floor(self.max_attr);
        (self.tables, self.reg)
    }

    /// Takes the rebuilt stats catalog out of the state (call before
    /// [`LoadState::finish`]).
    pub fn take_stats(&mut self) -> StatsCatalog {
        std::mem::take(&mut self.stats)
    }

    /// Takes the rebuilt index catalog out of the state (call before
    /// [`LoadState::finish`]). Only definitions are durable — the trees
    /// themselves are rebuilt deterministically on first use.
    pub fn take_indexes(&mut self) -> IndexCatalog {
        std::mem::take(&mut self.indexes)
    }
}

/// Applies one tagged record (as produced by [`save_database`]'s encoders
/// or logged to the WAL) to `state`. Shared by snapshot loading and WAL
/// replay, so both paths rebuild identical in-memory structures.
///
/// Base records do **not** bump reference counts — counts are rebuilt
/// solely from tuple records' ancestor sets, making replay idempotent with
/// respect to orphan bases (a crash between base and tuple records leaves
/// refcount-0 bases, which are harmless).
pub fn apply_record(rec: &[u8], state: &mut LoadState) -> Result<()> {
    let mut buf = rec;
    let buf = &mut buf;
    let tag = get_u8c(buf, "record tag").map_err(bad)?;
    match tag {
        TAG_SCHEMA => {
            let name = get_str(buf).map_err(bad)?;
            // Column: id(8) + name-len(4) + type(1) + uncertain(1) minimum.
            let ncols = get_count(buf, 14, "schema columns").map_err(bad)?;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let id = get_u64c(buf, "column id").map_err(bad)?;
                state.max_attr = state.max_attr.max(id);
                let cname = get_str(buf).map_err(bad)?;
                let ty = type_of(get_u8c(buf, "column type").map_err(bad)?).map_err(bad)?;
                let uncertain = get_u8c(buf, "column uncertainty").map_err(bad)? != 0;
                columns.push(Column { id, name: cname, ty, uncertain });
            }
            let nsets = get_count(buf, 4, "dependency sets").map_err(bad)?;
            let mut deps = Vec::with_capacity(nsets);
            for _ in 0..nsets {
                let k = get_count(buf, 8, "dependency set").map_err(bad)?;
                let mut set = Vec::with_capacity(k);
                for _ in 0..k {
                    set.push(get_u64c(buf, "dependency attr").map_err(bad)?);
                }
                deps.push(set);
            }
            let schema = ProbSchema::from_columns(columns, deps);
            state.tables.insert(name.clone(), Relation::new(name, schema));
        }
        TAG_BASE => {
            let id = get_u64c(buf, "base id").map_err(bad)?;
            let phantom = get_u8c(buf, "phantom flag").map_err(bad)? != 0;
            let k = get_count(buf, 8, "base attrs").map_err(bad)?;
            let mut attrs: Vec<AttrId> = Vec::with_capacity(k);
            for _ in 0..k {
                attrs.push(get_u64c(buf, "base attr").map_err(bad)?);
            }
            for &a in &attrs {
                state.max_attr = state.max_attr.max(a);
            }
            let joint = decode_joint(buf).map_err(bad)?;
            state.reg.restore(id, BasePdf { attrs, joint, phantom });
        }
        TAG_TUPLE => {
            let (table, t) = decode_tuple_body(buf, &mut state.max_attr)?;
            for n in &t.nodes {
                state.reg.add_refs(&n.ancestors);
            }
            let rel = state.tables.get_mut(&table).ok_or_else(|| {
                EngineError::Corrupt(format!("tuple for unknown table '{table}'"))
            })?;
            rel.tuples.push(t);
        }
        TAG_DELETE => {
            let table = get_str(buf).map_err(bad)?;
            let old = get_blob(buf, "old tuple record").map_err(bad)?;
            let rel = state.tables.get_mut(&table).ok_or_else(|| {
                EngineError::Corrupt(format!("delete for unknown table '{table}'"))
            })?;
            let idx = find_tuple_by_bytes(&table, rel, &old)?;
            let t = rel.tuples.remove(idx);
            // Mirror `Relation::delete_where`: drop the tuple's references
            // and reclaim its own base pdfs (sole-ancestor nodes); bases
            // still referenced by derived tuples survive as phantoms.
            for n in &t.nodes {
                state.reg.release_refs(&n.ancestors);
                if n.ancestors.len() == 1 {
                    let id = *n.ancestors.iter().next().expect("len checked");
                    state.reg.delete_base(id);
                }
            }
        }
        TAG_UPDATE => {
            let table = get_str(buf).map_err(bad)?;
            let old = get_blob(buf, "old tuple record").map_err(bad)?;
            let newb = get_blob(buf, "new tuple record").map_err(bad)?;
            let (ntable, new_t) = decode_tuple_record(&newb, &mut state.max_attr)?;
            if ntable != table {
                return Err(EngineError::Corrupt(format!(
                    "update record for '{table}' carries a tuple for '{ntable}'"
                )));
            }
            let rel = state.tables.get_mut(&table).ok_or_else(|| {
                EngineError::Corrupt(format!("update for unknown table '{table}'"))
            })?;
            let idx = find_tuple_by_bytes(&table, rel, &old)?;
            let old_t = std::mem::replace(&mut rel.tuples[idx], new_t);
            let new_nodes = &rel.tuples[idx].nodes;
            for i in 0..old_t.nodes.len().max(new_nodes.len()) {
                if old_t.nodes.get(i) == new_nodes.get(i) {
                    continue; // unchanged node: history untouched
                }
                // Take the new node's references before releasing the old
                // one's, so a base shared by both sides can never
                // transiently hit refcount zero and be reclaimed.
                if let Some(nw) = new_nodes.get(i) {
                    state.reg.add_refs(&nw.ancestors);
                }
                if let Some(o) = old_t.nodes.get(i) {
                    state.reg.release_refs(&o.ancestors);
                    if o.ancestors.len() == 1 {
                        let id = *o.ancestors.iter().next().expect("len checked");
                        state.reg.delete_base(id);
                    }
                }
            }
        }
        TAG_TXN_BEGIN | TAG_TXN_COMMIT | TAG_TXN_ABORT => {
            return Err(EngineError::Corrupt(
                "transaction marker reached apply_record (replay must intercept framing)".into(),
            ))
        }
        TAG_EPOCH => {
            let e = get_u64c(buf, "checkpoint epoch").map_err(bad)?;
            state.wal_epoch = state.wal_epoch.max(e);
        }
        TAG_STATS => {
            let mut payload = vec![0u8; buf.remaining()];
            buf.copy_to_slice(&mut payload);
            state.stats.insert(TableStats::decode(&payload)?);
        }
        TAG_INDEX => {
            let mut payload = vec![0u8; buf.remaining()];
            buf.copy_to_slice(&mut payload);
            let (def, used) = IndexDef::decode(&payload)?;
            if used != payload.len() {
                return Err(EngineError::Corrupt(format!(
                    "index record has {} trailing bytes",
                    payload.len() - used
                )));
            }
            // Install-or-overwrite by name: replay is idempotent.
            state.indexes.install(def);
        }
        TAG_INDEX_DROP => {
            let name = get_str(buf).map_err(bad)?;
            // Dropping an unknown name is a no-op: a snapshot taken after
            // the drop no longer carries the definition, so WAL replay of
            // the drop record over that snapshot must not error.
            let _ = state.indexes.drop_index(&name);
        }
        t => return Err(EngineError::Corrupt(format!("unknown record tag {t}"))),
    }
    Ok(())
}

/// Loads every record of the snapshot at `path` into `state`, without
/// finishing it — [`crate::durable::DurableDb`] replays WAL records into
/// the same state afterwards.
pub fn load_into(path: &Path, state: &mut LoadState) -> Result<()> {
    let heap = HeapFile::new(FileStore::open(path)?, 64);
    let mut err: Option<EngineError> = None;
    heap.scan(|_, rec| {
        if let Err(e) = apply_record(rec, state) {
            err = Some(e);
            return false;
        }
        true
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Loads a database saved by [`save_database`]. Rebuilds reference counts
/// and bumps the attribute/pdf id allocators past every persisted id.
pub fn load_database(path: &Path) -> Result<(HashMap<String, Relation>, HistoryRegistry)> {
    let mut state = LoadState::default();
    load_into(path, &mut state)?;
    Ok(state.finish())
}

/// [`save_database`] that also persists the ANALYZE stats catalog, so a
/// save → open round trip keeps every analyzed table's statistics.
pub fn save_database_with_stats(
    path: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
) -> Result<()> {
    save_snapshot_with_stats(path, tables, reg, stats, 0)
}

/// [`load_database`] that also returns the persisted ANALYZE stats
/// catalog (empty for files written before stats records existed).
pub fn load_database_with_stats(
    path: &Path,
) -> Result<(HashMap<String, Relation>, HistoryRegistry, StatsCatalog)> {
    let mut state = LoadState::default();
    load_into(path, &mut state)?;
    let stats = state.take_stats();
    let (tables, reg) = state.finish();
    Ok((tables, reg, stats))
}

/// What [`load_chain`] found while folding the snapshot chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainReport {
    /// Whether a base snapshot existed (false = fresh directory).
    pub snapshot_loaded: bool,
    /// Incremental delta files folded over the base, in epoch order.
    pub deltas_folded: u64,
    /// Delta files discarded because a later **full** checkpoint had
    /// already subsumed them (epoch ≤ the base snapshot's), left behind by
    /// a crash between the snapshot rename and the delta cleanup.
    pub stale_deltas_removed: u64,
    /// Total pages overlaid from the folded deltas.
    pub pages_overlaid: u64,
}

/// Folds `snapshot` plus its delta files into one in-memory page store.
///
/// Pages are merged **before** any record is decoded: the base's pages are
/// raw-copied, then each delta's pages are overlaid in epoch order (higher
/// epoch wins per page). Only the folded store is scanned as a heap —
/// scanning base and deltas as separate heaps would double-apply records
/// living on a page a delta re-images (the partial tail page every
/// incremental checkpoint appends into).
pub(crate) fn fold_chain_pages(snapshot: &Path, dir: &Path) -> Result<(MemStore, ChainReport)> {
    let mut report = ChainReport { snapshot_loaded: true, ..ChainReport::default() };
    let mut mem = MemStore::new();
    let mut store = FileStore::open(snapshot)?;
    for pid in 0..store.page_count() {
        let mut page = Page::new();
        store.read_page(pid, &mut page)?;
        mem.allocate()?;
        mem.write_page(pid, &page)?;
    }
    // The base's checkpoint epoch is its first record's stamp (0 if the
    // snapshot predates every checkpoint). [`save_snapshot`] writes the
    // stamp first, so it sits at page 0, slot 0; stale deltas are judged
    // against it.
    let mut base_epoch = 0u64;
    if mem.page_count() > 0 {
        let mut first = Page::new();
        mem.read_page(0, &mut first)?;
        if let Some(rec) = first.get(0) {
            base_epoch = record_epoch(rec).unwrap_or(0);
        }
    }
    let mut chain_epoch = base_epoch;
    for (epoch, path) in DeltaFile::list(dir)? {
        if epoch <= base_epoch {
            // A full checkpoint at `base_epoch` subsumed this delta but
            // crashed before removing it. Its pages are already inside the
            // base; folding them would resurrect pre-checkpoint images.
            std::fs::remove_file(&path)?;
            report.stale_deltas_removed += 1;
            continue;
        }
        if epoch != chain_epoch + 1 {
            return Err(EngineError::Corrupt(format!(
                "broken snapshot chain: delta epoch {epoch} after epoch {chain_epoch}"
            )));
        }
        let delta = DeltaFile::read(&path)?;
        for (pid, page) in &delta.pages {
            while mem.page_count() <= *pid {
                mem.allocate()?;
            }
            mem.write_page(*pid, page)?;
            report.pages_overlaid += 1;
        }
        chain_epoch = epoch;
        report.deltas_folded += 1;
    }
    Ok((mem, report))
}

/// Loads the snapshot **chain** under `dir` (base `snapshot` + incremental
/// delta files) into `state`: pages are folded first
/// ([`fold_chain_pages`]), then the folded store is scanned once. Stale
/// deltas from a crashed full checkpoint are deleted. A missing base with
/// delta files present is corruption — deltas are meaningless without the
/// base they patch.
pub fn load_chain(snapshot: &Path, dir: &Path, state: &mut LoadState) -> Result<ChainReport> {
    if !snapshot.exists() {
        if let Some((epoch, _)) = DeltaFile::list(dir)?.first() {
            return Err(EngineError::Corrupt(format!(
                "delta file at epoch {epoch} without a base snapshot"
            )));
        }
        return Ok(ChainReport::default());
    }
    let (mem, report) = fold_chain_pages(snapshot, dir)?;
    let heap = HeapFile::new(mem, 64);
    let mut err: Option<EngineError> = None;
    heap.scan(|_, rec| {
        if let Err(e) = apply_record(rec, state) {
            err = Some(e);
            return false;
        }
        true
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::select::{select, ExecOptions};
    use orion_pdf::prelude::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("orion_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_db() -> (HashMap<String, Relation>, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![
                ("id", ColumnType::Int, false),
                ("name", ColumnType::Text, false),
                ("x", ColumnType::Real, true),
                ("y", ColumnType::Real, true),
            ],
            vec![vec!["x", "y"]],
        )
        .unwrap();
        let mut rel = Relation::new("objects", schema);
        rel.insert(
            &mut reg,
            &[("id", Value::Int(1)), ("name", Value::Text("alpha".into()))],
            vec![(
                vec!["x", "y"],
                JointPdf::from_points(
                    JointDiscrete::from_points(
                        2,
                        vec![(vec![1.0, 2.0], 0.5), (vec![3.0, 4.0], 0.5)],
                    )
                    .unwrap(),
                ),
            )],
        )
        .unwrap();
        let schema2 = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel2 = Relation::new("readings", schema2);
        rel2.insert_simple(
            &mut reg,
            &[("rid", Value::Int(7))],
            &[("v", Pdf1::gaussian(20.0, 5.0).unwrap())],
        )
        .unwrap();
        let mut tables = HashMap::new();
        tables.insert("objects".to_string(), rel);
        tables.insert("readings".to_string(), rel2);
        (tables, reg)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (tables, reg) = sample_db();
        let path = temp("roundtrip.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, lreg) = load_database(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        let obj = &loaded["objects"];
        assert_eq!(obj.schema, tables["objects"].schema);
        assert_eq!(obj.tuples, tables["objects"].tuples);
        assert_eq!(lreg.len(), reg.len());
        // Marginal query works identically after reload.
        let m = loaded["readings"].marginal(0, "v").unwrap();
        assert_eq!(m.to_string(), "Gaus(20,5)");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn histories_survive_reload() {
        // Save, reload, then run the dependent-merge pipeline on the
        // loaded data: ancestors must still resolve.
        let (tables, reg) = sample_db();
        let path = temp("histories.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, mut lreg) = load_database(&path).unwrap();
        let obj = &loaded["objects"];
        let opts = ExecOptions::default();
        let sel = select(obj, &Predicate::cmp("x", CmpOp::Gt, 2.0), &mut lreg, &opts).unwrap();
        assert_eq!(sel.len(), 1);
        assert!((sel.tuples[0].naive_existence() - 0.5).abs() < 1e-12);
        // The loaded node's ancestor id must resolve in the loaded registry.
        let anc = *sel.tuples[0].nodes[0].ancestors.iter().next().unwrap();
        assert!(lreg.base(anc).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_does_not_collide_with_new_ids() {
        let (tables, reg) = sample_db();
        let path = temp("collide.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, mut lreg) = load_database(&path).unwrap();
        // Fresh schema after loading: ids must not collide with loaded ones.
        let fresh = ProbSchema::new(vec![("z", ColumnType::Real, true)], vec![]).unwrap();
        let loaded_ids: Vec<AttrId> =
            loaded.values().flat_map(|r| r.schema.columns().iter().map(|c| c.id)).collect();
        assert!(!loaded_ids.contains(&fresh.column("z").unwrap().id));
        // Fresh base registration must not collide with loaded pdf ids.
        let new_id = lreg.register(vec![1], JointPdf::from_pdf1(Pdf1::certain(0.0)));
        assert!(loaded.values().all(|r| r
            .tuples
            .iter()
            .all(|t| t.nodes.iter().all(|n| !n.ancestors.contains(&new_id)))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refcounts_rebuilt_on_load() {
        let (tables, reg) = sample_db();
        let path = temp("refs.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, lreg) = load_database(&path).unwrap();
        for rel in loaded.values() {
            for t in &rel.tuples {
                for n in &t.nodes {
                    for &a in &n.ancestors {
                        assert!(lreg.ref_count(a) >= 1, "ancestor {a} unreferenced");
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = temp("corrupt.db");
        let mut heap = HeapFile::new(FileStore::create(&path).unwrap(), 8);
        heap.insert(&[99u8, 1, 2, 3]).unwrap();
        heap.pool().flush().unwrap();
        drop(heap);
        let err = load_database(&path).unwrap_err();
        assert!(err.is_corruption(), "unknown tag must classify as corruption: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp() {
        let (tables, reg) = sample_db();
        let path = temp("atomic.db");
        save_database(&path, &tables, &reg).unwrap();
        // Saving again renames over the existing snapshot.
        save_database(&path, &tables, &reg).unwrap();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "temp snapshot must be renamed away");
        assert!(load_database(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_epoch_round_trips() {
        let (tables, reg) = sample_db();
        let path = temp("epoch.db");
        save_snapshot(&path, &tables, &reg, 7).unwrap();
        let mut state = LoadState::default();
        load_into(&path, &mut state).unwrap();
        assert_eq!(state.wal_epoch, 7);
        assert_eq!(state.tables.len(), 2, "epoch stamp does not disturb the payload");
        // Epoch 0 writes no stamp, matching the legacy format.
        save_snapshot(&path, &tables, &reg, 0).unwrap();
        let mut state = LoadState::default();
        load_into(&path, &mut state).unwrap();
        assert_eq!(state.wal_epoch, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epoch_records_decode_strictly() {
        let mut rec = Vec::new();
        encode_epoch(3, &mut rec);
        assert_eq!(record_epoch(&rec), Some(3));
        assert_eq!(record_epoch(&rec[..5]), None, "truncated stamp is not an epoch");
        assert_eq!(record_epoch(b"xx"), None);
        let mut state = LoadState::default();
        apply_record(&rec, &mut state).unwrap();
        assert_eq!(state.wal_epoch, 3);
        let err = apply_record(&rec[..5], &mut LoadState::default()).unwrap_err();
        assert!(err.is_corruption(), "truncated epoch record classifies as corruption");
    }

    #[test]
    fn stats_records_round_trip_through_snapshot() {
        use crate::stats_catalog::analyze_relation;
        let (tables, reg) = sample_db();
        let mut stats = StatsCatalog::new();
        stats.insert(analyze_relation(&tables["readings"]).unwrap());
        let path = temp("stats.db");
        save_snapshot_with_stats(&path, &tables, &reg, &stats, 2).unwrap();
        let mut state = LoadState::default();
        load_into(&path, &mut state).unwrap();
        let loaded = state.take_stats();
        assert_eq!(loaded.encode(), stats.encode(), "bitwise-identical catalog after reload");
        assert_eq!(loaded.get("readings").unwrap().rows, 1);
        assert_eq!(state.wal_epoch, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_stats_records_error_without_panicking() {
        use crate::stats_catalog::analyze_relation;
        let (tables, _reg) = sample_db();
        let mut rec = Vec::new();
        encode_stats(&analyze_relation(&tables["readings"]).unwrap(), &mut rec);
        let mut state = LoadState::default();
        apply_record(&rec, &mut state).unwrap();
        assert_eq!(state.stats.len(), 1);
        // Replay is idempotent: a second apply overwrites, not duplicates.
        apply_record(&rec, &mut state).unwrap();
        assert_eq!(state.stats.len(), 1);
        for cut in 1..rec.len() {
            let r = apply_record(&rec[..cut], &mut LoadState::default());
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
            assert!(r.unwrap_err().is_corruption(), "prefix errors classify as corruption");
        }
    }

    #[test]
    fn index_records_round_trip_and_replay_idempotently() {
        use crate::pindex::IndexKind;
        let (tables, reg) = sample_db();
        let mut indexes = IndexCatalog::new();
        indexes
            .create(IndexDef {
                name: "ix_v".into(),
                table: "readings".into(),
                column: "v".into(),
                kind: IndexKind::Cdf,
            })
            .unwrap();
        indexes
            .create(IndexDef {
                name: "ix_rid".into(),
                table: "readings".into(),
                column: "rid".into(),
                kind: IndexKind::Evx,
            })
            .unwrap();
        let path = temp("indexes.db");
        save_snapshot_full(&path, &tables, &reg, &StatsCatalog::new(), &indexes, 3).unwrap();
        let mut state = LoadState::default();
        load_into(&path, &mut state).unwrap();
        let loaded = state.take_indexes();
        assert_eq!(loaded.encode(), indexes.encode(), "bitwise-identical defs after reload");
        assert_eq!(state.wal_epoch, 3);
        std::fs::remove_file(&path).ok();

        // Replay idempotency: applying the same index record twice installs
        // once; dropping twice (or over a snapshot that never had it) is a
        // no-op, never an error.
        let def = indexes.get("ix_v").unwrap().clone();
        let mut rec = Vec::new();
        encode_index_def(&def, &mut rec);
        let mut state = LoadState::default();
        apply_record(&rec, &mut state).unwrap();
        apply_record(&rec, &mut state).unwrap();
        assert_eq!(state.indexes.defs().count(), 1);
        let mut drop_rec = Vec::new();
        encode_index_drop("ix_v", &mut drop_rec);
        apply_record(&drop_rec, &mut state).unwrap();
        apply_record(&drop_rec, &mut state).unwrap();
        assert_eq!(state.indexes.defs().count(), 0);

        // Every strict prefix of an index record errors as corruption.
        for cut in 1..rec.len() {
            let r = apply_record(&rec[..cut], &mut LoadState::default());
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    /// Rebuilds a [`LoadState`] from a database by applying its encoded
    /// records, exactly as snapshot load / WAL replay would.
    fn state_of(tables: &HashMap<String, Relation>, reg: &HistoryRegistry) -> LoadState {
        let mut state = LoadState::default();
        let mut buf = Vec::new();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        for name in &names {
            buf.clear();
            encode_schema(&tables[*name], &mut buf);
            apply_record(&buf, &mut state).unwrap();
        }
        let mut bases: Vec<_> = reg.iter_bases().collect();
        bases.sort_by_key(|(id, _)| *id);
        for (id, base) in bases {
            buf.clear();
            encode_base(id, base, &mut buf);
            apply_record(&buf, &mut state).unwrap();
        }
        for name in &names {
            for t in &tables[*name].tuples {
                buf.clear();
                encode_tuple(name, t, &mut buf);
                apply_record(&buf, &mut state).unwrap();
            }
        }
        state
    }

    #[test]
    fn txn_markers_decode_strictly() {
        let mut rec = Vec::new();
        encode_txn_marker(TAG_TXN_BEGIN, 42, &mut rec);
        assert_eq!(txn_marker(&rec), Some(TxnMarker::Begin(42)));
        assert_eq!(txn_marker(&rec[..5]), None, "truncated marker is not a marker");
        assert_eq!(txn_marker(b"xx"), None);
        let mut c = Vec::new();
        encode_txn_marker(TAG_TXN_COMMIT, 42, &mut c);
        assert_eq!(txn_marker(&c), Some(TxnMarker::Commit(42)));
        let mut a = Vec::new();
        encode_txn_marker(TAG_TXN_ABORT, 7, &mut a);
        assert_eq!(txn_marker(&a), Some(TxnMarker::Abort(7)));
        // Markers are WAL framing, not state records: reaching apply_record
        // means the replay loop failed to intercept them.
        for rec in [&rec, &c, &a] {
            let err = apply_record(rec, &mut LoadState::default()).unwrap_err();
            assert!(err.is_corruption(), "marker in apply_record classifies as corruption");
        }
    }

    #[test]
    fn delete_records_apply_like_delete_where() {
        let (tables, reg) = sample_db();
        let mut state = state_of(&tables, &reg);
        let regs_before = state.reg.len();
        let mut old = Vec::new();
        encode_tuple("objects", &tables["objects"].tuples[0], &mut old);
        let mut rec = Vec::new();
        encode_delete("objects", &old, &mut rec);
        apply_record(&rec, &mut state).unwrap();
        assert!(state.tables["objects"].tuples.is_empty(), "tuple removed");
        assert_eq!(state.reg.len(), regs_before - 1, "sole-ancestor base pdf reclaimed");
        // Deleting again: the content address no longer matches anything.
        let err = apply_record(&rec, &mut state).unwrap_err();
        assert!(err.is_corruption(), "missing delete target classifies as corruption");
        // Every strict prefix errors without panicking or mutating state.
        for cut in 0..rec.len() {
            let mut s = state_of(&tables, &reg);
            let r = apply_record(&rec[..cut], &mut s);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
            assert!(r.unwrap_err().is_corruption(), "prefix errors classify as corruption");
            assert_eq!(s.tables["objects"].tuples.len(), 1, "failed delete leaves state intact");
        }
    }

    #[test]
    fn update_records_replace_in_place_and_swap_history() {
        let (tables, reg) = sample_db();
        let make_state = || state_of(&tables, &reg);
        let mut state = make_state();
        // A replacement pdf registered the way a txn commit would do it:
        // its base record precedes the update record.
        let vattr = tables["readings"].schema.column("v").unwrap().id;
        let new_id = state.reg.last_id() + 1;
        let joint = JointPdf::from_pdf1(Pdf1::gaussian(30.0, 2.0).unwrap());
        let mut base_rec = Vec::new();
        encode_base(
            new_id,
            &BasePdf { attrs: vec![vattr], joint: joint.clone(), phantom: false },
            &mut base_rec,
        );
        let old_t = tables["readings"].tuples[0].clone();
        let old_base = *old_t.nodes[0].ancestors.iter().next().unwrap();
        let mut new_t = old_t.clone();
        new_t.nodes[0] = PdfNode::new(
            vec![NodeDim { var: VarId { base: new_id, dim: 0 }, column: Some(vattr) }],
            joint,
            [new_id].into_iter().collect(),
        );
        let mut oldb = Vec::new();
        encode_tuple("readings", &old_t, &mut oldb);
        let mut newb = Vec::new();
        encode_tuple("readings", &new_t, &mut newb);
        let mut rec = Vec::new();
        encode_update("readings", &oldb, &newb, &mut rec);

        apply_record(&base_rec, &mut state).unwrap();
        apply_record(&rec, &mut state).unwrap();
        assert_eq!(state.tables["readings"].tuples.len(), 1, "in-place replacement");
        assert_eq!(state.tables["readings"].tuples[0], new_t);
        assert_eq!(state.reg.ref_count(new_id), 1, "replacement node referenced");
        assert!(state.reg.base(old_base).is_err(), "replaced node's base reclaimed");

        // An update record whose embedded tuple names a different table is
        // corruption, caught before any lookup.
        let mut cross = Vec::new();
        encode_update("objects", &oldb, &newb, &mut cross);
        assert!(apply_record(&cross, &mut make_state()).unwrap_err().is_corruption());

        // Every strict prefix errors without panicking or mutating state.
        for cut in 0..rec.len() {
            let mut s = make_state();
            apply_record(&base_rec, &mut s).unwrap();
            let r = apply_record(&rec[..cut], &mut s);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
            assert!(r.unwrap_err().is_corruption(), "prefix errors classify as corruption");
            assert_eq!(s.tables["readings"].tuples[0], old_t, "failed update leaves state intact");
        }
    }

    #[test]
    fn truncated_records_error_without_panicking() {
        // Every strict prefix of a valid tuple record must decode to an
        // error — never a panic, never an accidental success.
        let (tables, _reg) = sample_db();
        let mut rec = Vec::new();
        encode_tuple("objects", &tables["objects"].tuples[0], &mut rec);
        for cut in 0..rec.len() {
            let mut state = LoadState::default();
            // A tuple record needs its schema applied first.
            let mut schema_rec = Vec::new();
            encode_schema(&tables["objects"], &mut schema_rec);
            apply_record(&schema_rec, &mut state).unwrap();
            let r = apply_record(&rec[..cut], &mut state);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
            assert!(r.unwrap_err().is_corruption(), "prefix errors classify as corruption");
        }
    }
}
