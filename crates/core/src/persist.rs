//! Database persistence: saving and loading a set of probabilistic
//! relations plus their history registry through the paged storage layer.
//!
//! The on-disk format is a single heap file of tagged records:
//!
//! ```text
//! [1: schema]  table name, columns (id, name, type, uncertain), Δ sets
//! [2: base]    registered base pdf: id, attrs, phantom flag, joint
//! [3: tuple]   owning table, certain values, pdf nodes
//!              (node = dims (VarId + optional column) + ancestors + joint)
//! ```
//!
//! Schemas are written first, then bases, then tuples, so a single pass
//! loads everything. Reference counts are rebuilt from the loaded tuples'
//! ancestor sets, and both the attribute-id and pdf-id allocators are
//! bumped past every persisted id so later inserts cannot collide.

use crate::error::{EngineError, Result};
use crate::history::{Ancestors, BasePdf, HistoryRegistry};
use crate::relation::Relation;
use crate::schema::{ensure_attr_floor, AttrId, Column, ColumnType, ProbSchema};
use crate::tuple::{NodeDim, PdfNode, ProbTuple, VarId};
use crate::value::Value;
use bytes::{Buf, BufMut};
use orion_storage::codec::{decode_joint, encode_joint, DecodeError};
use orion_storage::{FileStore, HeapFile};
use std::collections::HashMap;
use std::path::Path;

const TAG_SCHEMA: u8 = 1;
const TAG_BASE: u8 = 2;
const TAG_TUPLE: u8 = 3;

fn put_str(s: &str, out: &mut impl BufMut) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf) -> std::result::Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("truncated string length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(DecodeError("truncated string".into()));
    }
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| DecodeError(format!("invalid utf8: {e}")))
}

fn put_value(v: &Value, out: &mut impl BufMut) {
    match v {
        Value::Null => out.put_u8(0),
        Value::Int(i) => {
            out.put_u8(1);
            out.put_i64_le(*i);
        }
        Value::Real(r) => {
            out.put_u8(2);
            out.put_f64_le(*r);
        }
        Value::Text(s) => {
            out.put_u8(3);
            put_str(s, out);
        }
        Value::Bool(b) => {
            out.put_u8(4);
            out.put_u8(u8::from(*b));
        }
    }
}

fn get_value(buf: &mut impl Buf) -> std::result::Result<Value, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError("truncated value tag".into()));
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => Value::Int(buf.get_i64_le()),
        2 => Value::Real(buf.get_f64_le()),
        3 => Value::Text(get_str(buf)?),
        4 => Value::Bool(buf.get_u8() != 0),
        t => return Err(DecodeError(format!("unknown value tag {t}"))),
    })
}

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Real => 1,
        ColumnType::Text => 2,
        ColumnType::Bool => 3,
    }
}

fn type_of(tag: u8) -> std::result::Result<ColumnType, DecodeError> {
    Ok(match tag {
        0 => ColumnType::Int,
        1 => ColumnType::Real,
        2 => ColumnType::Text,
        3 => ColumnType::Bool,
        t => return Err(DecodeError(format!("unknown column type {t}"))),
    })
}

fn encode_schema(rel: &Relation, out: &mut Vec<u8>) {
    out.put_u8(TAG_SCHEMA);
    put_str(&rel.name, out);
    out.put_u32_le(rel.schema.columns().len() as u32);
    for c in rel.schema.columns() {
        out.put_u64_le(c.id);
        put_str(&c.name, out);
        out.put_u8(type_tag(c.ty));
        out.put_u8(u8::from(c.uncertain));
    }
    out.put_u32_le(rel.schema.deps().len() as u32);
    for set in rel.schema.deps() {
        out.put_u32_le(set.len() as u32);
        for &a in set {
            out.put_u64_le(a);
        }
    }
}

fn encode_tuple(table: &str, t: &ProbTuple, out: &mut Vec<u8>) {
    out.put_u8(TAG_TUPLE);
    put_str(table, out);
    out.put_u32_le(t.certain.len() as u32);
    for v in &t.certain {
        put_value(v, out);
    }
    out.put_u32_le(t.nodes.len() as u32);
    for n in &t.nodes {
        out.put_u32_le(n.dims.len() as u32);
        for d in &n.dims {
            out.put_u64_le(d.var.base);
            out.put_u16_le(d.var.dim);
            match d.column {
                Some(a) => {
                    out.put_u8(1);
                    out.put_u64_le(a);
                }
                None => out.put_u8(0),
            }
        }
        out.put_u32_le(n.ancestors.len() as u32);
        for &a in &n.ancestors {
            out.put_u64_le(a);
        }
        encode_joint(&n.joint, out);
    }
}

/// Saves every relation and the registry into one file at `path`
/// (overwriting it).
pub fn save_database(
    path: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
) -> Result<()> {
    let mut heap = HeapFile::new(FileStore::create(path)?, 64);
    let mut buf = Vec::with_capacity(4096);
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    for name in &names {
        buf.clear();
        encode_schema(&tables[*name], &mut buf);
        heap.insert(&buf)?;
    }
    let mut bases: Vec<_> = reg.iter_bases().collect();
    bases.sort_by_key(|(id, _)| *id);
    for (id, base) in bases {
        buf.clear();
        buf.put_u8(TAG_BASE);
        buf.put_u64_le(id);
        buf.put_u8(u8::from(base.phantom));
        buf.put_u32_le(base.attrs.len() as u32);
        for &a in &base.attrs {
            buf.put_u64_le(a);
        }
        encode_joint(&base.joint, &mut buf);
        heap.insert(&buf)?;
    }
    for name in &names {
        for t in &tables[*name].tuples {
            buf.clear();
            encode_tuple(name, t, &mut buf);
            heap.insert(&buf)?;
        }
    }
    heap.pool().flush()?;
    Ok(())
}

fn bad(e: DecodeError) -> EngineError {
    EngineError::Io(e.to_string())
}

/// Loads a database saved by [`save_database`]. Rebuilds reference counts
/// and bumps the attribute/pdf id allocators past every persisted id.
pub fn load_database(path: &Path) -> Result<(HashMap<String, Relation>, HistoryRegistry)> {
    let heap = HeapFile::new(FileStore::open(path)?, 64);
    let mut tables: HashMap<String, Relation> = HashMap::new();
    let mut reg = HistoryRegistry::new();
    let mut max_attr: AttrId = 0;
    let mut err: Option<EngineError> = None;
    heap.scan(|_, rec| {
        let mut buf = rec;
        let r = (|| -> std::result::Result<(), EngineError> {
            let tag = buf.get_u8();
            match tag {
                TAG_SCHEMA => {
                    let name = get_str(&mut buf).map_err(bad)?;
                    let ncols = buf.get_u32_le() as usize;
                    let mut columns = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        let id = buf.get_u64_le();
                        max_attr = max_attr.max(id);
                        let cname = get_str(&mut buf).map_err(bad)?;
                        let ty = type_of(buf.get_u8()).map_err(bad)?;
                        let uncertain = buf.get_u8() != 0;
                        columns.push(Column { id, name: cname, ty, uncertain });
                    }
                    let nsets = buf.get_u32_le() as usize;
                    let mut deps = Vec::with_capacity(nsets);
                    for _ in 0..nsets {
                        let k = buf.get_u32_le() as usize;
                        deps.push((0..k).map(|_| buf.get_u64_le()).collect());
                    }
                    let schema = ProbSchema::from_columns(columns, deps);
                    tables.insert(name.clone(), Relation::new(name, schema));
                }
                TAG_BASE => {
                    let id = buf.get_u64_le();
                    let phantom = buf.get_u8() != 0;
                    let k = buf.get_u32_le() as usize;
                    let attrs: Vec<AttrId> = (0..k).map(|_| buf.get_u64_le()).collect();
                    for &a in &attrs {
                        max_attr = max_attr.max(a);
                    }
                    let joint = decode_joint(&mut buf).map_err(bad)?;
                    reg.restore(id, BasePdf { attrs, joint, phantom });
                }
                TAG_TUPLE => {
                    let table = get_str(&mut buf).map_err(bad)?;
                    let ncert = buf.get_u32_le() as usize;
                    let mut certain = Vec::with_capacity(ncert);
                    for _ in 0..ncert {
                        certain.push(get_value(&mut buf).map_err(bad)?);
                    }
                    let nnodes = buf.get_u32_le() as usize;
                    let mut nodes = Vec::with_capacity(nnodes);
                    for _ in 0..nnodes {
                        let ndims = buf.get_u32_le() as usize;
                        let mut dims = Vec::with_capacity(ndims);
                        for _ in 0..ndims {
                            let base = buf.get_u64_le();
                            let dim = buf.get_u16_le();
                            let column = if buf.get_u8() != 0 {
                                let a = buf.get_u64_le();
                                max_attr = max_attr.max(a);
                                Some(a)
                            } else {
                                None
                            };
                            dims.push(NodeDim { var: VarId { base, dim }, column });
                        }
                        let nanc = buf.get_u32_le() as usize;
                        let ancestors: Ancestors = (0..nanc).map(|_| buf.get_u64_le()).collect();
                        let joint = decode_joint(&mut buf).map_err(bad)?;
                        reg.add_refs(&ancestors);
                        nodes.push(PdfNode::new(dims, joint, ancestors));
                    }
                    let rel = tables.get_mut(&table).ok_or_else(|| {
                        EngineError::Io(format!("tuple for unknown table '{table}'"))
                    })?;
                    rel.tuples.push(ProbTuple { certain, nodes });
                }
                t => return Err(EngineError::Io(format!("unknown record tag {t}"))),
            }
            Ok(())
        })();
        if let Err(e) = r {
            err = Some(e);
            return false;
        }
        true
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    ensure_attr_floor(max_attr);
    Ok((tables, reg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::select::{select, ExecOptions};
    use orion_pdf::prelude::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("orion_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_db() -> (HashMap<String, Relation>, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![
                ("id", ColumnType::Int, false),
                ("name", ColumnType::Text, false),
                ("x", ColumnType::Real, true),
                ("y", ColumnType::Real, true),
            ],
            vec![vec!["x", "y"]],
        )
        .unwrap();
        let mut rel = Relation::new("objects", schema);
        rel.insert(
            &mut reg,
            &[("id", Value::Int(1)), ("name", Value::Text("alpha".into()))],
            vec![(
                vec!["x", "y"],
                JointPdf::from_points(
                    JointDiscrete::from_points(
                        2,
                        vec![(vec![1.0, 2.0], 0.5), (vec![3.0, 4.0], 0.5)],
                    )
                    .unwrap(),
                ),
            )],
        )
        .unwrap();
        let schema2 = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel2 = Relation::new("readings", schema2);
        rel2.insert_simple(
            &mut reg,
            &[("rid", Value::Int(7))],
            &[("v", Pdf1::gaussian(20.0, 5.0).unwrap())],
        )
        .unwrap();
        let mut tables = HashMap::new();
        tables.insert("objects".to_string(), rel);
        tables.insert("readings".to_string(), rel2);
        (tables, reg)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (tables, reg) = sample_db();
        let path = temp("roundtrip.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, lreg) = load_database(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        let obj = &loaded["objects"];
        assert_eq!(obj.schema, tables["objects"].schema);
        assert_eq!(obj.tuples, tables["objects"].tuples);
        assert_eq!(lreg.len(), reg.len());
        // Marginal query works identically after reload.
        let m = loaded["readings"].marginal(0, "v").unwrap();
        assert_eq!(m.to_string(), "Gaus(20,5)");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn histories_survive_reload() {
        // Save, reload, then run the dependent-merge pipeline on the
        // loaded data: ancestors must still resolve.
        let (tables, reg) = sample_db();
        let path = temp("histories.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, mut lreg) = load_database(&path).unwrap();
        let obj = &loaded["objects"];
        let opts = ExecOptions::default();
        let sel = select(obj, &Predicate::cmp("x", CmpOp::Gt, 2.0), &mut lreg, &opts).unwrap();
        assert_eq!(sel.len(), 1);
        assert!((sel.tuples[0].naive_existence() - 0.5).abs() < 1e-12);
        // The loaded node's ancestor id must resolve in the loaded registry.
        let anc = *sel.tuples[0].nodes[0].ancestors.iter().next().unwrap();
        assert!(lreg.base(anc).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_does_not_collide_with_new_ids() {
        let (tables, reg) = sample_db();
        let path = temp("collide.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, mut lreg) = load_database(&path).unwrap();
        // Fresh schema after loading: ids must not collide with loaded ones.
        let fresh = ProbSchema::new(vec![("z", ColumnType::Real, true)], vec![]).unwrap();
        let loaded_ids: Vec<AttrId> =
            loaded.values().flat_map(|r| r.schema.columns().iter().map(|c| c.id)).collect();
        assert!(!loaded_ids.contains(&fresh.column("z").unwrap().id));
        // Fresh base registration must not collide with loaded pdf ids.
        let new_id = lreg.register(vec![1], JointPdf::from_pdf1(Pdf1::certain(0.0)));
        assert!(loaded.values().all(|r| r
            .tuples
            .iter()
            .all(|t| t.nodes.iter().all(|n| !n.ancestors.contains(&new_id)))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refcounts_rebuilt_on_load() {
        let (tables, reg) = sample_db();
        let path = temp("refs.db");
        save_database(&path, &tables, &reg).unwrap();
        let (loaded, lreg) = load_database(&path).unwrap();
        for rel in loaded.values() {
            for t in &rel.tuples {
                for n in &t.nodes {
                    for &a in &n.ancestors {
                        assert!(lreg.ref_count(a) >= 1, "ancestor {a} unreferenced");
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = temp("corrupt.db");
        let mut heap = HeapFile::new(FileStore::create(&path).unwrap(), 8);
        heap.insert(&[99u8, 1, 2, 3]).unwrap();
        heap.pool().flush().unwrap();
        drop(heap);
        assert!(load_database(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
