//! Support-interval indexing for probabilistic threshold range queries.
//!
//! The paper's companion work (refs 6 and 7 in its bibliography) builds index
//! structures over pdf attributes so threshold queries need not evaluate
//! every tuple's probability. This module implements the core pruning idea
//! in its simplest effective form: per tuple, store the (effective)
//! support interval and total mass of one uncertain column. A range
//! threshold query `Pr(x ∈ [l, u]) ⊙ p` can then skip
//!
//! * tuples whose support does not intersect `[l, u]` (probability 0), and
//! * tuples whose total mass already fails an upper-bound test
//!   (`mass ≤ p` can never satisfy `> p`).
//!
//! Only the surviving candidates pay for exact probability evaluation.
//!
//! Pruning is exact up to the *effective-support* tail: unbounded
//! distributions are indexed by the interval holding all but
//! [`orion_pdf::pdf1d::TAIL_EPS`] (= 1e-9) of their mass, so a pruned
//! tuple's true probability is at most 1e-9. Thresholds above that bound
//! (any practical `p`) are answered identically to a full scan.

use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::predicate::CmpOp;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::select::ExecOptions;
use orion_pdf::prelude::Interval;

/// One index entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    lo: f64,
    hi: f64,
    mass: f64,
    tuple: usize,
}

/// A support-interval index over one uncertain column of a relation.
///
/// The index is a snapshot: it indexes the relation it was built from by
/// tuple position and must be rebuilt after updates.
#[derive(Debug, Clone)]
pub struct SupportIndex {
    attr: AttrId,
    column: String,
    /// Entries sorted by `lo`.
    entries: Vec<Entry>,
    /// `max_hi[i]` = max of `entries[..=i].hi` — enables early pruning of
    /// the sorted scan (a classic interval-list acceleration).
    max_hi: Vec<f64>,
}

impl SupportIndex {
    /// Builds the index for `column` over `rel`.
    pub fn build(rel: &Relation, column: &str) -> Result<Self> {
        let col = rel
            .schema
            .column(column)
            .ok_or_else(|| EngineError::Schema(format!("unknown column '{column}'")))?;
        if !col.uncertain {
            return Err(EngineError::Operator(format!(
                "support index over certain column '{column}'"
            )));
        }
        let mut entries = Vec::with_capacity(rel.len());
        for (i, t) in rel.tuples.iter().enumerate() {
            let node = t.node_for(col.id).ok_or_else(|| {
                EngineError::Operator(format!("tuple {i} has no pdf node for '{column}'"))
            })?;
            let marginal = node
                .marginal(col.id)
                .ok_or_else(|| EngineError::Operator("marginal extraction failed".into()))?;
            let support = marginal.effective_support().unwrap_or_else(|| Interval::point(f64::NAN));
            entries.push(Entry { lo: support.lo, hi: support.hi, mass: node.mass(), tuple: i });
        }
        entries.sort_by(|a, b| a.lo.partial_cmp(&b.lo).expect("finite supports"));
        let mut max_hi = Vec::with_capacity(entries.len());
        let mut running = f64::NEG_INFINITY;
        for e in &entries {
            running = running.max(e.hi);
            max_hi.push(running);
        }
        Ok(SupportIndex { attr: col.id, column: column.to_string(), entries, max_hi })
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tuple positions whose support intersects `iv`, in index order.
    /// `min_mass` additionally prunes tuples whose total mass is at or
    /// below the threshold an over-`p` query needs.
    pub fn candidates(&self, iv: &Interval, min_mass: f64) -> Vec<usize> {
        // Entries with lo > iv.hi can never intersect; the sort bounds the
        // scan. Within the prefix, skip runs whose max_hi < iv.lo.
        let end = self.entries.partition_point(|e| e.lo <= iv.hi);
        let mut out = Vec::new();
        for i in 0..end {
            if self.max_hi[i] < iv.lo {
                continue;
            }
            let e = &self.entries[i];
            if e.hi >= iv.lo && e.mass > min_mass {
                out.push(e.tuple);
            }
        }
        out
    }

    /// Indexed evaluation of `σ_{Pr(attr ∈ [l,u]) ⊙ p}` — equivalent to
    /// [`crate::threshold::threshold_pred`] with a BETWEEN predicate, but
    /// only candidate tuples pay for probability evaluation.
    ///
    /// Only `>`/`>=` comparisons benefit from index pruning (they admit an
    /// upper-bound test); other operators fall back to scanning every
    /// tuple, since tuples with probability 0 can satisfy e.g. `< p`.
    pub fn threshold_range(
        &self,
        rel: &Relation,
        iv: &Interval,
        op: CmpOp,
        p: f64,
        reg: &mut HistoryRegistry,
        opts: &ExecOptions,
    ) -> Result<Relation> {
        let mut out = Relation::new(format!("sigma_pr_idx({})", rel.name), rel.schema.clone());
        let prunable = matches!(op, CmpOp::Gt | CmpOp::Ge) && p >= 0.0;
        let candidates: Vec<usize> = if prunable {
            let min_mass = if op == CmpOp::Gt { p } else { p - 1e-12 };
            self.candidates(iv, min_mass)
        } else {
            (0..rel.len()).collect()
        };
        // Candidates pay exactly what the full scan pays per tuple — the
        // same probability machinery — so indexed and scanned results are
        // identical even for historically dependent nodes.
        let pred = crate::predicate::Predicate::And(vec![
            crate::predicate::Predicate::cmp(&self.column, CmpOp::Ge, iv.lo),
            crate::predicate::Predicate::cmp(&self.column, CmpOp::Le, iv.hi),
        ]);
        for ti in candidates {
            let t = &rel.tuples[ti];
            let prob = crate::threshold::predicate_probability(rel, t, &pred, reg, opts)?;
            if op.test(
                prob.partial_cmp(&p)
                    .ok_or_else(|| EngineError::Operator("non-finite probability".into()))?,
            ) {
                for n in &t.nodes {
                    reg.add_refs(&n.ancestors);
                }
                out.tuples.push(t.clone());
            }
        }
        let _ = self.attr;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::{ColumnType, ProbSchema};
    use crate::threshold::threshold_pred;
    use crate::value::Value;
    use orion_pdf::prelude::*;
    use orion_pdf::sample::{Uniform, XorShift};

    /// Deterministic sensor-style readings without depending on the
    /// workload crate (which sits above this one).
    fn readings(n: usize) -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("r", schema);
        let mut reg = HistoryRegistry::new();
        let mut rng = XorShift::new(31);
        for rid in 1..=n as i64 {
            let mean = rng.next_f64() * 100.0;
            let sd = 1.0 + rng.next_f64() * 2.0;
            rel.insert_simple(
                &mut reg,
                &[("rid", Value::Int(rid))],
                &[("v", Pdf1::gaussian(mean, sd * sd).unwrap())],
            )
            .unwrap();
        }
        (rel, reg)
    }

    #[test]
    fn candidates_prune_disjoint_supports() {
        let (rel, _) = readings(500);
        let idx = SupportIndex::build(&rel, "v").unwrap();
        assert_eq!(idx.len(), 500);
        let iv = Interval::new(40.0, 45.0);
        let cands = idx.candidates(&iv, 0.0);
        assert!(!cands.is_empty());
        assert!(cands.len() < 500, "pruning must discard most tuples");
        // Every non-candidate really has (numerically) zero probability.
        for ti in 0..rel.len() {
            if !cands.contains(&ti) {
                let m = rel.marginal(ti, "v").unwrap();
                assert!(m.range_prob(&iv) < 1e-6, "tuple {ti} wrongly pruned");
            }
        }
    }

    #[test]
    fn indexed_threshold_matches_scan() {
        let (rel, mut reg) = readings(300);
        let idx = SupportIndex::build(&rel, "v").unwrap();
        let opts = ExecOptions::default();
        let iv = Interval::new(20.0, 28.0);
        for (op, p) in [(CmpOp::Gt, 0.5), (CmpOp::Ge, 0.9), (CmpOp::Lt, 0.1), (CmpOp::Gt, 1e-6)] {
            let indexed = idx.threshold_range(&rel, &iv, op, p, &mut reg, &opts).unwrap();
            let pred = Predicate::And(vec![
                Predicate::cmp("v", CmpOp::Ge, iv.lo),
                Predicate::cmp("v", CmpOp::Le, iv.hi),
            ]);
            let scanned = threshold_pred(&rel, &pred, op, p, &mut reg, &opts).unwrap();
            let ids = |r: &Relation| -> Vec<i64> {
                let mut v: Vec<i64> = r
                    .tuples
                    .iter()
                    .map(|t| match t.certain[0] {
                        Value::Int(i) => i,
                        _ => unreachable!(),
                    })
                    .collect();
                // The index visits candidates in support order, the scan in
                // tuple order; compare as sets.
                v.sort_unstable();
                v
            };
            assert_eq!(ids(&indexed), ids(&scanned), "op {op:?} p {p}");
        }
    }

    #[test]
    fn mass_pruning_respects_partial_pdfs() {
        let schema = ProbSchema::new(vec![("v", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        // Mass 0.4 tuple can never satisfy Pr > 0.5.
        rel.insert_simple(&mut reg, &[], &[("v", Pdf1::discrete(vec![(5.0, 0.4)]).unwrap())])
            .unwrap();
        rel.insert_simple(&mut reg, &[], &[("v", Pdf1::certain(5.0))]).unwrap();
        let idx = SupportIndex::build(&rel, "v").unwrap();
        let iv = Interval::new(0.0, 10.0);
        assert_eq!(idx.candidates(&iv, 0.5).len(), 1);
        let out = idx
            .threshold_range(&rel, &iv, CmpOp::Gt, 0.5, &mut reg, &ExecOptions::default())
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn build_validation() {
        let (rel, _) = readings(5);
        assert!(SupportIndex::build(&rel, "rid").is_err());
        assert!(SupportIndex::build(&rel, "nope").is_err());
        assert!(!SupportIndex::build(&rel, "v").unwrap().is_empty());
    }
}
