//! Aggregation over uncertain attributes.
//!
//! The paper motivates continuous representations with aggregates: a SUM
//! over n discrete uncertain attributes has exponentially many possible
//! values, so "one can save space as well as time by approximating with a
//! continuous pdf" (Section I). This module provides both sides of that
//! trade-off:
//!
//! * [`sum_exact`] — exact discrete convolution (support can blow up);
//! * [`sum_gaussian`] — a constant-size moment-matched Gaussian;
//! * [`count_expected`] / [`avg_expected`] — scalar expectation aggregates.
//!
//! All aggregate results are *new* distributions: they are assigned fresh
//! (empty) histories, because an aggregate value is an approximation that
//! no longer supports exact ancestor-based recombination.

use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::relation::Relation;
use crate::select::ExecOptions;
use orion_pdf::discrete::DiscretePdf;
use orion_pdf::ops::{convolve_discrete, sum_gaussian_approx};
use orion_pdf::prelude::Pdf1;

/// Collects the 1-D marginals of `col` across all tuples.
fn marginals(rel: &Relation, col: &str) -> Result<Vec<Pdf1>> {
    let c = rel
        .schema
        .column(col)
        .ok_or_else(|| EngineError::Schema(format!("unknown column '{col}'")))?;
    if !c.uncertain {
        return Err(EngineError::Operator(format!(
            "aggregate over certain column '{col}'; use plain arithmetic"
        )));
    }
    let mut out = Vec::with_capacity(rel.len());
    for (i, t) in rel.tuples.iter().enumerate() {
        let n = t.node_for(c.id).ok_or_else(|| {
            EngineError::Operator(format!("tuple {i} has no pdf node for '{col}'"))
        })?;
        out.push(
            n.marginal(c.id)
                .ok_or_else(|| EngineError::Operator("marginal extraction failed".into()))?,
        );
    }
    Ok(out)
}

/// Exact SUM over a discrete uncertain column: the full convolution.
/// Every tuple must exist with certainty (mass 1) — partial pdfs make the
/// exact sum a mixture over subsets, which is precisely the blow-up the
/// Gaussian approximation avoids.
pub fn sum_exact(rel: &Relation, col: &str) -> Result<DiscretePdf> {
    let ms = marginals(rel, col)?;
    if ms.is_empty() {
        return Ok(DiscretePdf::certain(0.0));
    }
    let mut acc: Option<DiscretePdf> = None;
    for m in &ms {
        if (m.mass() - 1.0).abs() > 1e-9 {
            return Err(EngineError::Operator(
                "sum_exact requires full-mass (certainly existing) tuples".into(),
            ));
        }
        let d = m
            .enumerate()
            .map_err(|_| EngineError::Operator("sum_exact requires discrete pdfs".into()))?;
        acc = Some(match acc {
            None => d,
            Some(a) => convolve_discrete(&a, &d)?,
        });
    }
    Ok(acc.expect("non-empty"))
}

/// SUM via repeated grid convolution: an `O(n * bins^2)` middle ground
/// between the exponential exact convolution and the constant-size
/// Gaussian approximation — exact up to the grid resolution, valid for
/// continuous and discrete inputs alike. Requires full-mass tuples (as
/// [`sum_exact`] does) and, like every aggregate here, assumes the
/// summed attributes are historically independent across tuples. The
/// result is a histogram for n >= 2 inputs; a single input is returned
/// unchanged (already exact).
pub fn sum_grid(rel: &Relation, col: &str, bins: usize) -> Result<Pdf1> {
    let ms = marginals(rel, col)?;
    if ms.is_empty() {
        return Ok(Pdf1::certain(0.0));
    }
    // Validate every input before paying for any O(bins^2) convolution.
    for m in &ms {
        if (m.mass() - 1.0).abs() > 1e-9 {
            return Err(EngineError::Operator(
                "sum_grid requires full-mass (certainly existing) tuples".into(),
            ));
        }
    }
    let mut acc: Option<Pdf1> = None;
    for m in &ms {
        acc = Some(match acc {
            None => m.clone(),
            Some(a) => Pdf1::Histogram(orion_pdf::ops::convolve_grid(&a, m, bins)?),
        });
    }
    Ok(acc.expect("non-empty"))
}

/// SUM approximated by a moment-matched Gaussian (constant-size result).
/// Works for continuous and discrete inputs alike.
pub fn sum_gaussian(rel: &Relation, col: &str) -> Result<Pdf1> {
    let ms = marginals(rel, col)?;
    if ms.is_empty() {
        return Ok(Pdf1::certain(0.0));
    }
    Ok(sum_gaussian_approx(&ms)?)
}

/// Expected COUNT: the sum of tuple existence probabilities
/// (history-aware).
pub fn count_expected(rel: &Relation, reg: &HistoryRegistry, opts: &ExecOptions) -> Result<f64> {
    let mut total = 0.0;
    for t in &rel.tuples {
        total += if opts.use_histories {
            collapse::existence_prob(t, reg, opts.resolution)?
        } else {
            t.naive_existence()
        };
    }
    Ok(total)
}

/// Expected AVG of an uncertain column: existence-weighted mean of the
/// per-tuple conditional expectations.
pub fn avg_expected(rel: &Relation, col: &str) -> Result<Option<f64>> {
    let ms = marginals(rel, col)?;
    let mut num = 0.0;
    let mut den = 0.0;
    for m in &ms {
        let mass = m.mass();
        if mass <= 0.0 {
            continue;
        }
        let e =
            m.expected_value().ok_or_else(|| EngineError::Operator("vacuous pdf in AVG".into()))?;
        num += mass * e;
        den += mass;
    }
    Ok((den > 0.0).then(|| num / den))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, ProbSchema};

    fn coins(n: usize) -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(vec![("x", ColumnType::Int, true)], vec![]).unwrap();
        let mut rel = Relation::new("coins", schema);
        let mut reg = HistoryRegistry::new();
        for _ in 0..n {
            rel.insert_simple(
                &mut reg,
                &[],
                &[("x", Pdf1::discrete(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap())],
            )
            .unwrap();
        }
        (rel, reg)
    }

    #[test]
    fn exact_sum_of_coins_is_binomial() {
        let (rel, _) = coins(4);
        let s = sum_exact(&rel, "x").unwrap();
        assert_eq!(s.len(), 5);
        assert!((s.prob_at(2.0) - 6.0 / 16.0).abs() < 1e-12);
        assert!((s.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_sum_matches_exact_moments() {
        let (rel, _) = coins(16);
        let g = sum_gaussian(&rel, "x").unwrap();
        assert!((g.expected_value().unwrap() - 8.0).abs() < 1e-9);
        // Variance 16 * 0.25 = 4 => sd 2; P(X <= 8) = 0.5.
        assert!((g.cumulative(8.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gaussian_sum_is_constant_size_while_exact_blows_up() {
        // Irrational steps defeat support collapse: exact support = 2^n.
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        for i in 0..8 {
            let step = (2.0_f64 + i as f64).sqrt();
            rel.insert_simple(
                &mut reg,
                &[],
                &[("x", Pdf1::discrete(vec![(0.0, 0.5), (step, 0.5)]).unwrap())],
            )
            .unwrap();
        }
        let exact = sum_exact(&rel, "x").unwrap();
        assert_eq!(exact.len(), 256, "exponential support");
        let g = sum_gaussian(&rel, "x").unwrap();
        assert_eq!(g.param_count(), 3, "constant-size approximation");
        // The approximation matches the exact mean.
        assert!((g.expected_value().unwrap() - exact.expected_value().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn grid_sum_tracks_exact_and_gaussian() {
        let (rel, _) = coins(8);
        let grid = sum_grid(&rel, "x", 64).unwrap();
        let exact = sum_exact(&rel, "x").unwrap();
        // Means agree; cdf midpoint agrees with the binomial.
        assert!((grid.expected_value().unwrap() - exact.expected_value().unwrap()).abs() < 0.1);
        assert!((grid.mass() - 1.0).abs() < 1e-6);
        // Continuous inputs (which sum_exact rejects) work here.
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut cont = Relation::new("c", schema);
        let mut reg = HistoryRegistry::new();
        for _ in 0..2 {
            cont.insert_simple(&mut reg, &[], &[("x", Pdf1::gaussian(1.0, 1.0).unwrap())]).unwrap();
        }
        assert!(sum_exact(&cont, "x").is_err());
        let g = sum_grid(&cont, "x", 64).unwrap();
        assert!((g.expected_value().unwrap() - 2.0).abs() < 0.05);
    }

    #[test]
    fn sum_exact_rejects_partial_and_continuous() {
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::discrete(vec![(1.0, 0.5)]).unwrap())])
            .unwrap();
        assert!(sum_exact(&rel, "x").is_err(), "partial pdf");
        let mut rel2 = Relation::new(
            "t2",
            ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap(),
        );
        rel2.insert_simple(&mut reg, &[], &[("x", Pdf1::gaussian(0.0, 1.0).unwrap())]).unwrap();
        assert!(sum_exact(&rel2, "x").is_err(), "continuous pdf");
    }

    #[test]
    fn count_and_avg() {
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::certain(10.0))]).unwrap();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::discrete(vec![(20.0, 0.5)]).unwrap())])
            .unwrap();
        let opts = ExecOptions::default();
        assert!((count_expected(&rel, &reg, &opts).unwrap() - 1.5).abs() < 1e-12);
        // AVG weighted by existence: (1*10 + 0.5*20) / 1.5
        assert!((avg_expected(&rel, "x").unwrap().unwrap() - (20.0 / 1.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_aggregates() {
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let rel = Relation::new("t", schema);
        let reg = HistoryRegistry::new();
        assert_eq!(sum_exact(&rel, "x").unwrap().prob_at(0.0), 1.0);
        assert!(avg_expected(&rel, "x").unwrap().is_none());
        assert_eq!(count_expected(&rel, &reg, &ExecOptions::default()).unwrap(), 0.0);
    }

    #[test]
    fn aggregate_validation() {
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let rel = Relation::new("t", schema);
        assert!(sum_exact(&rel, "id").is_err());
        assert!(sum_exact(&rel, "nope").is_err());
    }
}
