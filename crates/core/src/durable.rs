//! Durable database: atomic snapshots + a write-ahead log, with crash
//! recovery.
//!
//! A [`DurableDb`] lives in a directory holding two files:
//!
//! * `snapshot.db` — the last checkpoint, written atomically by
//!   [`crate::persist::save_database`] (temp file → fsync → rename);
//! * `wal.log` — every mutation since that checkpoint, as length+CRC32
//!   framed records ([`orion_storage::Wal`]).
//!
//! **Commit protocol.** An insert first mutates the in-memory tables and
//! registry, then logs the base-pdf records it registered followed by the
//! tuple record, then fsyncs the WAL. The tuple record reaching stable
//! storage *is* the commit point: recovery replays base records before the
//! tuple that references them, and a crash after the bases but before the
//! tuple leaves refcount-0 orphan bases — harmless, reclaimed at the next
//! checkpoint (reference counts are rebuilt only from tuple records).
//!
//! **Recovery.** [`DurableDb::open`] loads the snapshot (if present),
//! truncates any torn WAL tail, replays every committed WAL record through
//! the same [`crate::persist::apply_record`] decoder the snapshot loader
//! uses, and reports what it did in a [`RecoveryReport`]. Re-opening a
//! recovered database is idempotent: the second open replays the same
//! records and truncates nothing.

use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::persist::{self, LoadState};
use crate::relation::Relation;
use crate::schema::ProbSchema;
use crate::value::Value;
use orion_pdf::prelude::{JointPdf, Pdf1};
use orion_storage::Wal;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Snapshot file name inside a [`DurableDb`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.db";
/// Write-ahead log file name inside a [`DurableDb`] directory.
pub const WAL_FILE: &str = "wal.log";

/// What [`DurableDb::open`] found and did while recovering.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Committed WAL records replayed over the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes of torn WAL tail discarded (crash mid-append).
    pub wal_bytes_truncated: u64,
}

impl RecoveryReport {
    /// Stable JSON rendering for stats exporters and test grepping.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"snapshot_loaded\":{},\"wal_records_replayed\":{},\"wal_bytes_truncated\":{}}}",
            self.snapshot_loaded, self.wal_records_replayed, self.wal_bytes_truncated
        )
    }
}

/// A database rooted in a directory, surviving crashes at any point.
#[derive(Debug)]
pub struct DurableDb {
    dir: PathBuf,
    tables: HashMap<String, Relation>,
    reg: HistoryRegistry,
    wal: Wal,
    recovery: RecoveryReport,
}

impl DurableDb {
    /// Opens (creating if absent) the database in `dir`, running crash
    /// recovery: snapshot load, torn-tail truncation, WAL replay.
    pub fn open(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let snap = dir.join(SNAPSHOT_FILE);
        let mut state = LoadState::default();
        let snapshot_loaded = snap.exists();
        if snapshot_loaded {
            persist::load_into(&snap, &mut state)?;
        }
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE))?;
        for rec in &replay.records {
            persist::apply_record(rec, &mut state)?;
        }
        let recovery = RecoveryReport {
            snapshot_loaded,
            wal_records_replayed: replay.records.len() as u64,
            wal_bytes_truncated: replay.truncated_bytes,
        };
        let (tables, reg) = state.finish();
        Ok(DurableDb { dir: dir.to_path_buf(), tables, reg, wal, recovery })
    }

    /// Creates a table and durably logs its schema.
    pub fn create_table(&mut self, name: &str, schema: ProbSchema) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(EngineError::Schema(format!("table '{name}' already exists")));
        }
        let rel = Relation::new(name, schema);
        let mut buf = Vec::new();
        persist::encode_schema(&rel, &mut buf);
        self.wal.append(&buf)?;
        self.wal.sync()?;
        self.tables.insert(name.to_string(), rel);
        Ok(())
    }

    /// Inserts a tuple (see [`Relation::insert`]) and commits it through
    /// the WAL. On return the insert is durable.
    pub fn insert(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        uncertain: Vec<(Vec<&str>, JointPdf)>,
    ) -> Result<()> {
        let before = self.reg.last_id();
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert(&mut self.reg, certain, uncertain)?;
        self.log_tail(table, before)
    }

    /// Inserts a tuple of independent 1-D pdfs (see
    /// [`Relation::insert_simple`]) and commits it through the WAL.
    pub fn insert_simple(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        pdfs: &[(&str, Pdf1)],
    ) -> Result<()> {
        let before = self.reg.last_id();
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert_simple(&mut self.reg, certain, pdfs)?;
        self.log_tail(table, before)
    }

    /// Logs the base pdfs the last insert registered (ids in
    /// `before..=last`), then the tuple record, then fsyncs — the tuple
    /// record is the commit point.
    fn log_tail(&mut self, table: &str, before: u64) -> Result<()> {
        let mut buf = Vec::new();
        for id in before + 1..=self.reg.last_id() {
            if let Ok(base) = self.reg.base(id) {
                buf.clear();
                persist::encode_base(id, base, &mut buf);
                self.wal.append(&buf)?;
            }
        }
        let t = self.tables[table]
            .tuples
            .last()
            .ok_or_else(|| EngineError::Operator("insert left no tuple to log".into()))?;
        buf.clear();
        persist::encode_tuple(table, t, &mut buf);
        self.wal.append(&buf)?;
        self.wal.sync()?;
        Ok(())
    }

    /// Checkpoints: atomically writes a fresh snapshot, then empties the
    /// WAL (whose records the snapshot now subsumes).
    pub fn checkpoint(&mut self) -> Result<()> {
        persist::save_database(&self.dir.join(SNAPSHOT_FILE), &self.tables, &self.reg)?;
        self.wal.reset()?;
        Ok(())
    }

    /// The tables, for querying.
    pub fn tables(&self) -> &HashMap<String, Relation> {
        &self.tables
    }

    /// One table by name.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'")))
    }

    /// The history registry, for running operators over the tables.
    pub fn registry_mut(&mut self) -> &mut HistoryRegistry {
        &mut self.reg
    }

    /// What recovery did when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current WAL length in bytes (0 right after a checkpoint).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Recovery + size stats as JSON, for the observability exporters.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"recovery\":{},\"wal_len\":{},\"tables\":{},\"bases\":{}}}",
            self.recovery.to_json(),
            self.wal.len(),
            self.tables.len(),
            self.reg.len()
        )
    }

    /// Verifies structural invariants; see [`check_invariants`].
    pub fn check_invariants(&self) -> Result<()> {
        check_invariants(&self.tables, &self.reg)
    }
}

/// Verifies the structural invariants every recovered database must
/// satisfy, independent of where the crash happened:
///
/// 1. every tuple node's ancestors resolve in the registry;
/// 2. each base's reference count equals the number of nodes citing it;
/// 3. every node's joint mass lies in `[0, 1 + ε]`.
pub fn check_invariants(tables: &HashMap<String, Relation>, reg: &HistoryRegistry) -> Result<()> {
    let mut cited: HashMap<u64, usize> = HashMap::new();
    for (name, rel) in tables {
        for (i, t) in rel.tuples.iter().enumerate() {
            for n in &t.nodes {
                for &a in &n.ancestors {
                    if reg.base(a).is_err() {
                        return Err(EngineError::Corrupt(format!(
                            "{name}[{i}]: ancestor {a} does not resolve"
                        )));
                    }
                    *cited.entry(a).or_insert(0) += 1;
                }
                let m = n.mass();
                if !(0.0..=1.0 + 1e-9).contains(&m) {
                    return Err(EngineError::Corrupt(format!(
                        "{name}[{i}]: node mass {m} outside [0, 1]"
                    )));
                }
            }
        }
    }
    for (id, _) in reg.iter_bases() {
        let expect = cited.get(&id).copied().unwrap_or(0);
        if reg.ref_count(id) != expect {
            return Err(EngineError::Corrupt(format!(
                "base {id}: ref count {} but {expect} citing nodes",
                reg.ref_count(id)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_durable_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn schema() -> ProbSchema {
        ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
            .unwrap()
    }

    fn insert_n(db: &mut DurableDb, from: i64, n: i64) {
        for i in from..from + n {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
    }

    #[test]
    fn inserts_survive_reopen_without_checkpoint() {
        let dir = temp_dir("wal_only");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            assert!(db.wal_len() > 0);
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(!db.recovery().snapshot_loaded);
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopens_from_snapshot() {
        let dir = temp_dir("checkpoint");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
            db.checkpoint().unwrap();
            assert_eq!(db.wal_len(), 0);
            insert_n(&mut db, 2, 1);
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().snapshot_loaded);
        assert_eq!(db.recovery().wal_records_replayed, 2, "one base + one tuple after ckpt");
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_loses_only_the_uncommitted_insert() {
        let dir = temp_dir("torn");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
        }
        // Simulate a crash mid-append: chop bytes off the WAL tail.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().wal_bytes_truncated > 0);
        assert_eq!(db.table("readings").unwrap().len(), 1, "torn insert rolled back");
        db.check_invariants().unwrap();
        // Second open is idempotent: nothing further to truncate.
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_bytes_truncated, 0);
        assert_eq!(db.table("readings").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_json_is_grepable() {
        let dir = temp_dir("stats");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        insert_n(&mut db, 0, 1);
        let s = db.stats_json();
        assert!(s.contains("\"wal_records_replayed\":0"));
        assert!(s.contains("\"snapshot_loaded\":false"));
        assert!(s.contains("\"bases\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invariant_checker_catches_dangling_ancestor() {
        let mut reg = HistoryRegistry::new();
        let mut rel = Relation::new("t", schema());
        rel.insert_simple(&mut reg, &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rel);
        check_invariants(&tables, &reg).unwrap();
        // Forcibly remove the base the tuple references.
        let id = reg.iter_bases().map(|(id, _)| id).next().unwrap();
        reg.delete_base(id);
        // delete_base keeps referenced bases as phantoms — dependency is
        // still resolvable, so the invariant holds.
        check_invariants(&tables, &reg).unwrap();
    }
}
