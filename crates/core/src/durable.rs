//! Durable database: atomic snapshots + a write-ahead log, with crash
//! recovery.
//!
//! A [`DurableDb`] lives in a directory holding two files:
//!
//! * `snapshot.db` — the last checkpoint, written atomically by
//!   [`crate::persist::save_database`] (temp file → fsync → rename);
//! * `wal.log` — every mutation since that checkpoint, as length+CRC32
//!   framed records ([`orion_storage::Wal`]).
//!
//! **Commit protocol.** An insert first mutates the in-memory tables and
//! registry, then logs the base-pdf records it registered followed by the
//! tuple record, then fsyncs the WAL. The tuple record reaching stable
//! storage *is* the commit point: recovery replays base records before the
//! tuple that references them, and a crash after the bases but before the
//! tuple leaves refcount-0 orphan bases — harmless, reclaimed at the next
//! checkpoint (reference counts are rebuilt only from tuple records).
//! If logging fails, the in-memory mutation is **rolled back** (tuple
//! popped, freshly registered bases released) and the WAL is truncated to
//! its pre-insert length, so memory never diverges from what recovery
//! would rebuild.
//!
//! **Checkpoints.** A checkpoint writes an atomic snapshot stamped with a
//! fresh *epoch*, then empties the WAL. The first record logged after a
//! checkpoint restamps the WAL with the snapshot's epoch. A crash in the
//! window between the snapshot rename and the WAL reset leaves the old
//! WAL (carrying the *previous* epoch) beside the new snapshot; recovery
//! compares epochs and discards such a stale WAL instead of replaying it
//! over state that already contains its records.
//!
//! **Recovery.** [`DurableDb::open`] folds the snapshot **chain** (base
//! `snapshot.db` plus any incremental `delta-*.db` files, pages merged in
//! epoch order before a single decode pass — see
//! [`crate::persist::load_chain`]), truncates any torn WAL tail, discards
//! the whole WAL if its epoch predates the chain's, and otherwise replays
//! every committed record through the same
//! [`crate::persist::apply_record`] decoder the snapshot loader uses,
//! reporting what it did in a [`RecoveryReport`]. Re-opening a recovered
//! database is idempotent: the second open replays the same records and
//! truncates nothing.
//!
//! **Group commit.** The WAL is driven through
//! [`orion_storage::GroupWal`]: each commit enqueues its framed records,
//! one elected leader performs a single batched `append + fsync` for every
//! queued commit, and followers block on their commit sequence number.
//! [`DurableDb`]'s `&mut self` API commits solo (one fsync each);
//! [`SharedDurableDb`] exposes the same database behind `&self` methods so
//! concurrent writers actually share fsyncs. Tunables (batching window,
//! max batch bytes) live in [`orion_storage::GroupCommitConfig`].
//!
//! **Incremental checkpoints.** [`DurableDb::checkpoint_incremental`]
//! rebuilds the chain's pages in memory, appends only the records created
//! since the last checkpoint, and writes the pages that mutation dirtied
//! into an epoch-stamped [`orion_storage::DeltaFile`]
//! (temp → fsync → rename): the cost scales with the new data, not the
//! database. A full [`DurableDb::checkpoint`] rewrites the base and
//! deletes the delta chain it subsumes.

use crate::error::{EngineError, Result};
use crate::history::{HistoryRegistry, PdfId};
use crate::persist::{self, LoadState};
use crate::pindex::{IndexCatalog, IndexDef, IndexHandle, IndexKind};
use crate::plan_feedback::PlanFeedbackStore;
use crate::relation::Relation;
use crate::schema::ProbSchema;
use crate::stats_catalog::{analyze_relation, StatsCatalog};
use crate::tuple::ProbTuple;
use crate::value::Value;
use orion_obs::workload::WorkloadRepo;
use orion_pdf::prelude::{JointPdf, Pdf1};
use orion_storage::wal::WalStats;
use orion_storage::{
    DeltaFile, GroupCommitConfig, GroupWal, HeapFile, IoStats, PageStore, Wal, PAGE_SIZE,
};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file name inside a [`DurableDb`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.db";
/// Write-ahead log file name inside a [`DurableDb`] directory.
pub const WAL_FILE: &str = "wal.log";

/// What [`DurableDb::open`] found and did while recovering.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Committed WAL records replayed over the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes of torn WAL tail discarded (crash mid-append).
    pub wal_bytes_truncated: u64,
    /// Records discarded because the whole WAL predated the snapshot's
    /// checkpoint epoch (crash between snapshot rename and WAL reset).
    pub stale_wal_records_discarded: u64,
    /// Incremental delta files folded over the base snapshot.
    pub deltas_folded: u64,
    /// Delta files discarded because a full checkpoint had already
    /// subsumed them (crash between snapshot rename and delta cleanup).
    pub stale_deltas_removed: u64,
    /// Records belonging to a transaction whose commit marker never
    /// reached stable storage (crash mid-transaction) or that was
    /// explicitly aborted — discarded wholesale so no partial transaction
    /// is ever visible after recovery.
    pub incomplete_txn_records_discarded: u64,
}

impl RecoveryReport {
    /// Stable JSON rendering for stats exporters and test grepping.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"snapshot_loaded\":{},\"wal_records_replayed\":{},\"wal_bytes_truncated\":{},\"stale_wal_records_discarded\":{},\"deltas_folded\":{},\"stale_deltas_removed\":{},\"incomplete_txn_records_discarded\":{}}}",
            self.snapshot_loaded,
            self.wal_records_replayed,
            self.wal_bytes_truncated,
            self.stale_wal_records_discarded,
            self.deltas_folded,
            self.stale_deltas_removed,
            self.incomplete_txn_records_discarded
        )
    }
}

/// Where the last checkpoint left off: everything the persistent chain
/// already contains, so an incremental checkpoint appends only what came
/// after. Captured right after the chain fold at open (before WAL replay —
/// replayed records are *not* in the chain) and after every checkpoint.
#[derive(Debug, Clone, Default)]
pub(crate) struct CkptMarks {
    /// Highest base-pdf id in the chain; later registrations are new.
    last_base: PdfId,
    /// Per-table tuple count in the chain; presence of a key means the
    /// table's schema record is already persisted.
    tables: HashMap<String, usize>,
    /// Canonical encoding of the stats catalog the chain contains. Stats
    /// equality is defined as bitwise encoding equality, so comparing
    /// bytes tells an incremental checkpoint whether `ANALYZE` ran since.
    stats: Vec<u8>,
    /// Canonical encoding of the index definitions the chain contains
    /// (same byte-compare discipline as `stats`): tells an incremental
    /// checkpoint whether `CREATE INDEX` ran since.
    indexes: Vec<u8>,
    /// Whether a delete or update ran since the last checkpoint. Such
    /// mutations break the append-only assumption the incremental
    /// record-diff relies on (tuple counts can shrink, existing tuples can
    /// change in place), so the next checkpoint must be full.
    pub(crate) mutated: bool,
}

impl CkptMarks {
    fn capture(
        tables: &HashMap<String, Relation>,
        reg: &HistoryRegistry,
        stats: &StatsCatalog,
        indexes: &IndexCatalog,
    ) -> CkptMarks {
        CkptMarks {
            last_base: reg.last_id(),
            tables: tables.iter().map(|(n, r)| (n.clone(), r.tuples.len())).collect(),
            stats: stats.encode(),
            indexes: indexes.encode(),
            mutated: false,
        }
    }
}

/// A database rooted in a directory, surviving crashes at any point.
#[derive(Debug)]
pub struct DurableDb {
    dir: PathBuf,
    tables: HashMap<String, Relation>,
    reg: HistoryRegistry,
    wal: GroupWal,
    /// Checkpoint epoch of the current snapshot chain (0 before any
    /// checkpoint). WAL records only count at recovery if their log
    /// carries this epoch.
    epoch: u64,
    marks: CkptMarks,
    recovery: RecoveryReport,
    /// Per-table statistics collected by [`DurableDb::analyze_table`],
    /// persisted as WAL/snapshot records so they survive recovery.
    stats: StatsCatalog,
    /// Secondary-index catalog: definitions are durable (WAL + snapshot
    /// records), trees are rebuilt lazily. Shared with query executors
    /// via [`DurableDb::indexes`].
    indexes: IndexHandle,
    /// Checkpoint page accounting (`ckpt_pages_copied` / `_skipped`).
    io: Arc<IoStats>,
    /// Per-statement workload repository fed by the SQL session layer;
    /// persisted to a [`WORKLOAD_FILE`] sidecar at checkpoint when
    /// `ORION_STATEMENTS_PERSIST=1`.
    workload: Arc<WorkloadRepo>,
    /// Planner cardinality-feedback store folded from profiled executions.
    feedback: Arc<PlanFeedbackStore>,
}

impl DurableDb {
    /// Opens (creating if absent) the database in `dir`, running crash
    /// recovery: snapshot-chain fold, torn-tail truncation, stale-WAL
    /// rejection, WAL replay. Group commit uses default tunables; see
    /// [`DurableDb::open_with`].
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with(dir, GroupCommitConfig::default())
    }

    /// [`DurableDb::open`] with explicit group-commit tunables.
    pub fn open_with(dir: &Path, cfg: GroupCommitConfig) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        // Crash observability: flight-recorder dumps land next to the data
        // they describe, and a panic anywhere in the process leaves one
        // (both no-ops unless the recorder is enabled via ORION_TRACE=1 or
        // recorder::set_enabled).
        orion_obs::recorder::set_dump_dir(dir);
        orion_obs::recorder::install_panic_hook();
        let snap = dir.join(SNAPSHOT_FILE);
        let mut state = LoadState::default();
        let chain = persist::load_chain(&snap, dir, &mut state)?;
        let snap_epoch = state.wal_epoch;
        // Everything loaded so far lives in the persistent chain: that is
        // what the next incremental checkpoint starts from. WAL records
        // replayed below are new relative to it.
        let marks = CkptMarks::capture(&state.tables, &state.reg, &state.stats, &state.indexes);
        let (mut wal, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let wal_epoch = replay.records.first().and_then(|r| persist::record_epoch(r)).unwrap_or(0);
        let mut replayed = 0u64;
        let mut stale_discarded = 0u64;
        let mut incomplete_discarded = 0u64;
        if wal_epoch < snap_epoch {
            // The WAL predates the snapshot: a crash hit the window between
            // a checkpoint's commit point (snapshot rename / delta rename)
            // and its WAL reset. Every record here is already folded into
            // the chain — replaying would duplicate tuples and
            // double-count refcounts.
            stale_discarded = replay.records.len() as u64;
            if stale_discarded > 0 {
                wal.reset()?;
            }
        } else {
            // Transaction framing: records between a begin marker and its
            // commit marker are buffered and applied only when the commit
            // is seen — all-or-nothing. An abort marker, or a begin whose
            // commit never reached stable storage (crash mid-transaction),
            // discards the buffered records wholesale.
            let mut txn_buf: Option<(u64, Vec<&[u8]>)> = None;
            for rec in &replay.records {
                if let Some(marker) = persist::txn_marker(rec) {
                    match (marker, &mut txn_buf) {
                        (persist::TxnMarker::Begin(id), None) => txn_buf = Some((id, Vec::new())),
                        (persist::TxnMarker::Begin(_), Some(_)) => {
                            return Err(EngineError::Corrupt(
                                "nested transaction begin in WAL".into(),
                            ))
                        }
                        (persist::TxnMarker::Commit(id), Some((txid, buffered))) if id == *txid => {
                            for r in buffered.drain(..) {
                                persist::apply_record(r, &mut state)?;
                                replayed += 1;
                            }
                            txn_buf = None;
                        }
                        (persist::TxnMarker::Abort(id), Some((txid, buffered))) if id == *txid => {
                            incomplete_discarded += buffered.len() as u64;
                            txn_buf = None;
                        }
                        (m, _) => {
                            return Err(EngineError::Corrupt(format!(
                                "transaction marker {m:?} without matching begin"
                            )))
                        }
                    }
                    continue;
                }
                match &mut txn_buf {
                    Some((_, buffered)) => buffered.push(rec),
                    None => {
                        persist::apply_record(rec, &mut state)?;
                        if persist::record_epoch(rec).is_none() {
                            replayed += 1;
                        }
                    }
                }
            }
            if let Some((_, buffered)) = txn_buf {
                // Crash after the begin but before the commit made it to
                // stable storage: the transaction never committed.
                incomplete_discarded += buffered.len() as u64;
            }
        }
        let recovery = RecoveryReport {
            snapshot_loaded: chain.snapshot_loaded,
            wal_records_replayed: replayed,
            wal_bytes_truncated: replay.truncated_bytes,
            stale_wal_records_discarded: stale_discarded,
            deltas_folded: chain.deltas_folded,
            stale_deltas_removed: chain.stale_deltas_removed,
            incomplete_txn_records_discarded: incomplete_discarded,
        };
        let epoch = state.wal_epoch.max(snap_epoch);
        let stats = state.take_stats();
        let indexes = IndexHandle::from_catalog(state.take_indexes());
        let (tables, reg) = state.finish();
        let wal = GroupWal::new(wal, cfg);
        set_epoch_stamp(&wal, epoch)?;
        let workload = Arc::new(WorkloadRepo::from_env());
        let feedback = Arc::new(PlanFeedbackStore::new());
        load_workload_sidecar(dir, &workload, &feedback);
        Ok(DurableDb {
            dir: dir.to_path_buf(),
            tables,
            reg,
            wal,
            epoch,
            marks,
            recovery,
            stats,
            indexes,
            io: Arc::new(IoStats::default()),
            workload,
            feedback,
        })
    }

    /// Creates a table and durably logs its schema. On failure nothing is
    /// applied: the [`GroupWal`] truncates the failed batch away and the
    /// table is not created.
    pub fn create_table(&mut self, name: &str, schema: ProbSchema) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(EngineError::Schema(format!("table '{name}' already exists")));
        }
        let rel = Relation::new(name, schema);
        let mut buf = Vec::new();
        persist::encode_schema(&rel, &mut buf);
        self.wal.commit(&[buf])?;
        self.tables.insert(name.to_string(), rel);
        Ok(())
    }

    /// Collects per-column statistics for `table` (see
    /// [`crate::stats_catalog::analyze_relation`]) and durably logs the
    /// resulting [`crate::stats_catalog::TableStats`] record. Replay is an
    /// overwrite per table, so re-analyzing simply supersedes the old
    /// record. On a failed commit nothing is applied — the in-memory
    /// catalog keeps its previous entry (or none).
    pub fn analyze_table(&mut self, table: &str) -> Result<()> {
        let rel = self
            .tables
            .get(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        let ts = analyze_relation(rel)?;
        let mut buf = Vec::new();
        persist::encode_stats(&ts, &mut buf);
        self.wal.commit(&[buf])?;
        self.stats.insert(ts);
        Ok(())
    }

    /// The statistics catalog (empty until [`DurableDb::analyze_table`]).
    pub fn stats_catalog(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Creates a secondary index and durably logs its definition. `kind`
    /// defaults by column certainty (`cdf` for uncertain, `evx` for
    /// certain). Only the definition is persisted — the tree is rebuilt
    /// lazily on first use. On a failed commit nothing is applied.
    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        column: &str,
        kind: Option<IndexKind>,
    ) -> Result<()> {
        let def = validate_index_def(&self.tables, &self.indexes, name, table, column, kind)?;
        let mut buf = Vec::new();
        persist::encode_index_def(&def, &mut buf);
        self.wal.commit(&[buf])?;
        self.indexes.lock().create(def)
    }

    /// Drops a secondary index and durably logs the drop. On a failed
    /// commit nothing is applied.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        if self.indexes.lock().get(name).is_none() {
            return Err(EngineError::Operator(format!("unknown index '{name}'")));
        }
        let mut buf = Vec::new();
        persist::encode_index_drop(name, &mut buf);
        self.wal.commit(&[buf])?;
        let _ = self.indexes.lock().drop_index(name);
        // The chain may still carry this index's definition record; an
        // append-only delta cannot retract it, so the next checkpoint
        // must rewrite the base.
        self.marks.mutated = true;
        Ok(())
    }

    /// The shared index catalog handle (seed it into
    /// [`crate::select::ExecOptions::indexes`] so the planner sees it).
    pub fn indexes(&self) -> IndexHandle {
        self.indexes.clone()
    }

    /// Inserts a tuple (see [`Relation::insert`]) and commits it through
    /// the WAL. On return the insert is durable; on error nothing is
    /// applied — a failed WAL append/sync rolls the in-memory mutation
    /// back, so memory and log never diverge.
    pub fn insert(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        uncertain: Vec<(Vec<&str>, JointPdf)>,
    ) -> Result<()> {
        let before = self.reg.last_id();
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert(&mut self.reg, certain, uncertain)?;
        self.log_tail(table, before)?;
        self.indexes.lock().note_mutation(table);
        Ok(())
    }

    /// Inserts a tuple of independent 1-D pdfs (see
    /// [`Relation::insert_simple`]) and commits it through the WAL, with
    /// the same rollback-on-failure guarantee as [`DurableDb::insert`].
    pub fn insert_simple(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        pdfs: &[(&str, Pdf1)],
    ) -> Result<()> {
        let before = self.reg.last_id();
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert_simple(&mut self.reg, certain, pdfs)?;
        self.log_tail(table, before)?;
        self.indexes.lock().note_mutation(table);
        Ok(())
    }

    /// Logs the base pdfs the last insert registered (ids in
    /// `before..=last`) and the tuple record as **one group-commit unit**
    /// — the tuple record is the commit point. Any failure rolls back both
    /// the WAL (the [`GroupWal`] truncates the failed batch) and the
    /// in-memory mutation.
    fn log_tail(&mut self, table: &str, before: u64) -> Result<()> {
        let payloads = match encode_insert_payloads(&self.tables, &self.reg, table, before) {
            Ok(p) => p,
            Err(e) => {
                self.rollback_last_insert(table, before);
                return Err(e);
            }
        };
        if let Err(e) = self.wal.commit(&payloads) {
            self.rollback_last_insert(table, before);
            return Err(e.into());
        }
        Ok(())
    }

    /// Undoes the in-memory effects of the insert that registered bases
    /// `before+1..=last`: pops its tuple, releases the references the
    /// tuple's nodes took, and deletes the bases it registered (now
    /// unreferenced). Restores the exact pre-insert state recovery would
    /// rebuild from the (also rolled-back) WAL.
    fn rollback_last_insert(&mut self, table: &str, before: u64) {
        if let Some(rel) = self.tables.get_mut(table) {
            if let Some(t) = rel.tuples.pop() {
                for n in &t.nodes {
                    self.reg.release_refs(&n.ancestors);
                }
            }
        }
        for id in before + 1..=self.reg.last_id() {
            self.reg.delete_base(id);
        }
    }

    /// Full checkpoint: atomically writes a fresh base snapshot stamped
    /// with the next epoch, deletes the delta chain it subsumes, then
    /// empties the WAL (whose records the snapshot now contains).
    /// Crash-atomic at every point: until the snapshot rename lands,
    /// recovery uses the old chain + full WAL; once it lands, leftover
    /// deltas and a WAL still carrying the old epoch are recognized as
    /// stale and discarded instead of replayed. A checkpoint that returns
    /// an error never corrupts state — at worst the WAL keeps
    /// accumulating.
    pub fn checkpoint(&mut self) -> Result<()> {
        checkpoint_full(
            &self.dir,
            &self.tables,
            &self.reg,
            &self.stats,
            &self.indexes,
            &mut self.epoch,
            &mut self.marks,
            &self.wal,
            &self.io,
        )?;
        persist_workload_sidecar(&self.dir, &self.workload, &self.feedback);
        Ok(())
    }

    /// Incremental checkpoint: folds the existing chain's pages in memory,
    /// appends only the records created since the last checkpoint, and
    /// writes the pages that dirtied into an epoch-stamped delta file
    /// (temp → fsync → rename — the same crash-atomicity discipline as
    /// the full path; the delta rename is the commit point). Falls back to
    /// a full checkpoint when no base snapshot exists yet; a no-op when
    /// nothing changed since the last checkpoint. Pages copied vs skipped
    /// are counted in [`DurableDb::io_stats`].
    pub fn checkpoint_incremental(&mut self) -> Result<()> {
        checkpoint_incremental(
            &self.dir,
            &self.tables,
            &self.reg,
            &self.stats,
            &self.indexes,
            &mut self.epoch,
            &mut self.marks,
            &self.wal,
            &self.io,
        )?;
        persist_workload_sidecar(&self.dir, &self.workload, &self.feedback);
        Ok(())
    }

    /// The tables, for querying.
    pub fn tables(&self) -> &HashMap<String, Relation> {
        &self.tables
    }

    /// One table by name.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'")))
    }

    /// The history registry, for running operators over the tables.
    pub fn registry_mut(&mut self) -> &mut HistoryRegistry {
        &mut self.reg
    }

    /// The history registry, read-only (e.g. for snapshotting alongside
    /// [`DurableDb::tables`]).
    pub fn registry(&self) -> &HistoryRegistry {
        &self.reg
    }

    /// Checkpoint epoch of the current snapshot (0 before any checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fault injection: the `nth` next WAL record (0 = the very next one)
    /// fails its commit with an injected I/O error.
    #[cfg(feature = "failpoints")]
    pub fn inject_wal_append_failure(&mut self, nth: u32) {
        self.wal.fail_nth_record(nth);
    }

    /// Fault injection: the next WAL fsync fails with an injected I/O
    /// error (commit ambiguity — the insert must roll back).
    #[cfg(feature = "failpoints")]
    pub fn inject_wal_sync_failure(&mut self) {
        self.wal.fail_next_sync();
    }

    /// What recovery did when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current WAL length in bytes (0 right after a checkpoint).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Group-commit counters (fsyncs, batches, fsyncs saved).
    pub fn wal_stats(&self) -> Arc<WalStats> {
        self.wal.stats()
    }

    /// Checkpoint I/O counters (`ckpt_pages_copied` / `_skipped`).
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// The per-statement workload repository (shared with SQL sessions; the
    /// row source for `orion.statements` / `orion.slow_queries`).
    pub fn workload(&self) -> Arc<WorkloadRepo> {
        Arc::clone(&self.workload)
    }

    /// The planner cardinality-feedback store (the row source for
    /// `orion.plan_feedback`).
    pub fn plan_feedback(&self) -> Arc<PlanFeedbackStore> {
        Arc::clone(&self.feedback)
    }

    /// Current group-commit tunables.
    pub fn group_commit_config(&self) -> GroupCommitConfig {
        self.wal.config()
    }

    /// Replaces the group-commit tunables (batching window, max batch
    /// bytes, enable/disable).
    pub fn set_group_commit_config(&mut self, cfg: GroupCommitConfig) {
        self.wal.set_config(cfg);
    }

    /// Recovery + size stats as JSON, for the observability exporters.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"recovery\":{},\"wal_len\":{},\"epoch\":{},\"tables\":{},\"bases\":{},\"wal\":{},\"io\":{}}}",
            self.recovery.to_json(),
            self.wal.len(),
            self.epoch,
            self.tables.len(),
            self.reg.len(),
            self.wal.stats().to_json().to_string_compact(),
            self.io.snapshot().to_json().to_string_compact()
        )
    }

    /// Verifies structural invariants; see [`check_invariants`].
    pub fn check_invariants(&self) -> Result<()> {
        check_invariants(&self.tables, &self.reg)
    }

    /// Dumps the flight recorder's recent-span ring into this database's
    /// directory on demand (the same dump a panic or a halt-on-fault kill
    /// produces). Returns the written path, or `None` when the recorder is
    /// disabled.
    pub fn dump_flight(&self, reason: &str) -> Option<PathBuf> {
        if !orion_obs::recorder::enabled() {
            return None;
        }
        orion_obs::recorder::dump_to_dir(&self.dir, reason).ok()
    }

    /// Converts this exclusive handle into a [`SharedDurableDb`] whose
    /// `&self` methods let concurrent writers share group-commit fsyncs.
    pub fn into_shared(self) -> SharedDurableDb {
        SharedDurableDb {
            inner: Arc::new(SharedInner {
                core: Mutex::new(SharedCore {
                    dir: self.dir,
                    tables: self.tables,
                    reg: self.reg,
                    epoch: self.epoch,
                    marks: self.marks,
                    stats: self.stats,
                    indexes: self.indexes,
                    in_flight: 0,
                    commit_seq: 0,
                }),
                drained: Condvar::new(),
                wal: self.wal,
                recovery: self.recovery,
                io: self.io,
                workload: self.workload,
                feedback: self.feedback,
                txns: Mutex::new(HashMap::new()),
            }),
        }
    }
}

/// Name of the workload-repository sidecar written next to the snapshot
/// chain when `ORION_STATEMENTS_PERSIST=1`.
pub const WORKLOAD_FILE: &str = "workload.json";

/// Best-effort write of the workload repository + planner feedback into the
/// [`WORKLOAD_FILE`] sidecar (temp → rename), gated on the repository's
/// `persist` knob. Observability data: a failure here must never fail the
/// checkpoint that triggered it, so errors are swallowed.
fn persist_workload_sidecar(dir: &Path, workload: &WorkloadRepo, feedback: &PlanFeedbackStore) {
    if !workload.config().persist {
        return;
    }
    let doc = orion_obs::json::Value::object()
        .with("workload", workload.to_json())
        .with("plan_feedback", feedback.to_json());
    let tmp = dir.join(format!("{WORKLOAD_FILE}.tmp"));
    if std::fs::write(&tmp, doc.to_string_pretty()).is_ok() {
        let _ = std::fs::rename(&tmp, dir.join(WORKLOAD_FILE));
    }
}

/// Best-effort load of the [`WORKLOAD_FILE`] sidecar on open: counters
/// merge into the fresh stores. Unconditional — a repository persisted by a
/// previous process is picked up even when this process won't persist.
fn load_workload_sidecar(dir: &Path, workload: &WorkloadRepo, feedback: &PlanFeedbackStore) {
    let Ok(text) = std::fs::read_to_string(dir.join(WORKLOAD_FILE)) else { return };
    let Ok(doc) = orion_obs::json::parse(&text) else { return };
    if let Some(w) = doc.get("workload") {
        let _ = workload.load_json(w);
    }
    if let Some(f) = doc.get("plan_feedback") {
        let _ = feedback.load_json(f);
    }
}

/// (Re)arms the [`GroupWal`]'s epoch stamp: after any checkpoint, the
/// first batch written to the (then empty) log is prefixed with the
/// chain's epoch, so recovery can tell a live WAL from a stale one left by
/// a crashed checkpoint. Epoch 0 (no checkpoint yet) writes no stamp.
fn set_epoch_stamp(wal: &GroupWal, epoch: u64) -> Result<()> {
    if epoch == 0 {
        wal.set_stamp(None)?;
    } else {
        let mut buf = Vec::new();
        persist::encode_epoch(epoch, &mut buf);
        wal.set_stamp(Some(&buf))?;
    }
    Ok(())
}

/// Validates a CREATE INDEX against the live tables and catalog, resolving
/// the key layout (`cdf` for uncertain columns, `evx` for certain ones
/// when not forced). The same kind/column compatibility check
/// [`crate::pindex::BuiltIndex::build`] applies runs here, so an
/// unbuildable definition is never logged.
pub fn validate_index_def(
    tables: &HashMap<String, Relation>,
    indexes: &IndexHandle,
    name: &str,
    table: &str,
    column: &str,
    kind: Option<IndexKind>,
) -> Result<IndexDef> {
    if indexes.lock().get(name).is_some() {
        return Err(EngineError::Operator(format!("index '{name}' already exists")));
    }
    let rel = tables
        .get(table)
        .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
    let col = rel
        .schema
        .column(column)
        .ok_or_else(|| EngineError::Schema(format!("unknown column '{column}'")))?;
    let kind = kind.unwrap_or(if col.uncertain { IndexKind::Cdf } else { IndexKind::Evx });
    match kind {
        IndexKind::Evx if col.uncertain => {
            return Err(EngineError::Operator(format!(
                "evx index needs a certain column ('{column}' is uncertain); use USING cdf"
            )))
        }
        IndexKind::Cdf if !col.uncertain => {
            return Err(EngineError::Operator(format!(
                "cdf index needs an uncertain column ('{column}' is certain); use USING evx"
            )))
        }
        _ => {}
    }
    Ok(IndexDef { name: name.into(), table: table.into(), column: column.into(), kind })
}

/// Encodes one insert's WAL unit: the base records it registered (ids in
/// `before+1..=last`) followed by the tuple record (the commit point).
fn encode_insert_payloads(
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    table: &str,
    before: PdfId,
) -> Result<Vec<Vec<u8>>> {
    let mut payloads = Vec::new();
    for id in before + 1..=reg.last_id() {
        if let Ok(base) = reg.base(id) {
            let mut buf = Vec::new();
            persist::encode_base(id, base, &mut buf);
            payloads.push(buf);
        }
    }
    let t = tables
        .get(table)
        .and_then(|rel| rel.tuples.last())
        .ok_or_else(|| EngineError::Operator("insert left no tuple to log".into()))?;
    let mut buf = Vec::new();
    persist::encode_tuple(table, t, &mut buf);
    payloads.push(buf);
    Ok(payloads)
}

/// A span on the calling thread's `checkpoint` lane, inert while tracing
/// is off. Checkpoints are serialized per database (they hold the engine
/// lock), and thread-keying keeps concurrent databases off each other's
/// lanes.
fn ckpt_span(name: &'static str) -> orion_obs::Span {
    let t = orion_obs::Tracer::global();
    if !t.enabled() {
        return orion_obs::Span::noop();
    }
    t.thread_lane("checkpoint").span(name, "checkpoint")
}

/// The full-checkpoint protocol shared by [`DurableDb::checkpoint`] and
/// [`SharedDurableDb::checkpoint`]. See [`DurableDb::checkpoint`].
#[allow(clippy::too_many_arguments)]
fn checkpoint_full(
    dir: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
    indexes: &IndexHandle,
    epoch: &mut u64,
    marks: &mut CkptMarks,
    wal: &GroupWal,
    io: &IoStats,
) -> Result<()> {
    let mut span = ckpt_span("checkpoint.full");
    let new_epoch = *epoch + 1;
    let snap = dir.join(SNAPSHOT_FILE);
    let cat = indexes.lock();
    persist::save_snapshot_full(&snap, tables, reg, stats, &cat, new_epoch)?;
    // A full checkpoint copies every page of the new base; the counter
    // mirrors the incremental path's copied/skipped accounting.
    let pages = std::fs::metadata(&snap).map(|m| m.len().div_ceil(PAGE_SIZE as u64)).unwrap_or(0);
    io.ckpt_pages_copied.add(pages);
    if span.is_recording() {
        span.arg("epoch", new_epoch);
        span.arg("pages_copied", pages);
    }
    // The rename above is the commit point. Deltas subsumed by the new
    // base are deleted afterwards; a crash in between leaves them behind
    // with stale epochs, and recovery removes them.
    DeltaFile::remove_all(dir)?;
    *epoch = new_epoch;
    *marks = CkptMarks::capture(tables, reg, stats, &cat);
    drop(cat);
    wal.reset()?;
    set_epoch_stamp(wal, new_epoch)?;
    Ok(())
}

/// The incremental-checkpoint protocol shared by
/// [`DurableDb::checkpoint_incremental`] and
/// [`SharedDurableDb::checkpoint_incremental`]. See the method docs.
#[allow(clippy::too_many_arguments)]
fn checkpoint_incremental(
    dir: &Path,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
    stats: &StatsCatalog,
    indexes: &IndexHandle,
    epoch: &mut u64,
    marks: &mut CkptMarks,
    wal: &GroupWal,
    io: &IoStats,
) -> Result<()> {
    let snap = dir.join(SNAPSHOT_FILE);
    if !snap.exists() {
        // Nothing to increment on — the first checkpoint is always full.
        return checkpoint_full(dir, tables, reg, stats, indexes, epoch, marks, wal, io);
    }
    if marks.mutated {
        // A delete, update, or index drop ran since the last checkpoint:
        // the chain's records are no longer a prefix of the current state,
        // so the append-only diff below would be wrong. Rewrite the base.
        return checkpoint_full(dir, tables, reg, stats, indexes, epoch, marks, wal, io);
    }
    let cat = indexes.lock();
    let stats_changed = stats.encode() != marks.stats;
    let indexes_changed = cat.encode() != marks.indexes;
    let new_work = stats_changed
        || indexes_changed
        || reg.last_id() > marks.last_base
        || tables
            .iter()
            .any(|(n, r)| marks.tables.get(n).is_none_or(|&count| r.tuples.len() > count));
    if !new_work {
        return Ok(());
    }
    let mut span = ckpt_span("checkpoint.incremental");
    let new_epoch = *epoch + 1;
    // Rebuild the chain's pages in memory, then append only the records
    // the chain does not contain. The heap adopts the chain's tail page so
    // appends fill its free space (that page is copied; untouched pages
    // are skipped — the incremental win).
    let (mem, _) = persist::fold_chain_pages(&snap, dir)?;
    let mut heap = HeapFile::new(mem, 64);
    heap.adopt_tail();
    heap.pool().mark_checkpoint();
    let mut buf = Vec::new();
    persist::encode_epoch(new_epoch, &mut buf);
    heap.insert(&buf)?;
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    for name in &names {
        if !marks.tables.contains_key(*name) {
            buf.clear();
            persist::encode_schema(&tables[*name], &mut buf);
            heap.insert(&buf)?;
        }
    }
    let mut bases: Vec<_> = reg.iter_bases().filter(|(id, _)| *id > marks.last_base).collect();
    bases.sort_by_key(|(id, _)| *id);
    for (id, base) in bases {
        buf.clear();
        persist::encode_base(id, base, &mut buf);
        heap.insert(&buf)?;
    }
    for name in &names {
        let from = marks.tables.get(*name).copied().unwrap_or(0);
        for t in &tables[*name].tuples[from..] {
            buf.clear();
            persist::encode_tuple(name, t, &mut buf);
            heap.insert(&buf)?;
        }
    }
    if stats_changed {
        // Stats replay overwrites per table, so re-emitting the whole
        // catalog is idempotent; the delta's records decode after the
        // chain's and win.
        for ts in stats.iter() {
            buf.clear();
            persist::encode_stats(ts, &mut buf);
            heap.insert(&buf)?;
        }
    }
    if indexes_changed {
        // Index replay installs-by-name, so re-emitting every definition
        // is idempotent. Only creates reach this path — a drop sets the
        // `mutated` mark and forces a full checkpoint, because an
        // append-only delta cannot retract the chain's create record.
        for def in cat.defs() {
            buf.clear();
            persist::encode_index_def(def, &mut buf);
            heap.insert(&buf)?;
        }
    }
    heap.pool().flush()?;
    let dirty = heap.pool().dirty_pages_since_mark();
    let total = heap.page_count() as u64;
    let mut store = heap.into_store()?;
    let mut pages = Vec::with_capacity(dirty.len());
    for pid in dirty {
        let mut page = orion_storage::Page::new();
        store.read_page(pid, &mut page)?;
        pages.push((pid, page));
    }
    io.ckpt_pages_copied.add(pages.len() as u64);
    io.ckpt_pages_skipped.add(total.saturating_sub(pages.len() as u64));
    if span.is_recording() {
        span.arg("epoch", new_epoch);
        span.arg("pages_copied", pages.len() as u64);
        span.arg("pages_skipped", total.saturating_sub(pages.len() as u64));
    }
    // The delta rename is the commit point of this checkpoint.
    DeltaFile { epoch: new_epoch, pages }.write_atomic(dir)?;
    *epoch = new_epoch;
    *marks = CkptMarks::capture(tables, reg, stats, &cat);
    drop(cat);
    wal.reset()?;
    set_epoch_stamp(wal, new_epoch)?;
    Ok(())
}

/// Mutable database state behind [`SharedDurableDb`]'s core lock.
#[derive(Debug)]
pub(crate) struct SharedCore {
    dir: PathBuf,
    pub(crate) tables: HashMap<String, Relation>,
    pub(crate) reg: HistoryRegistry,
    pub(crate) epoch: u64,
    pub(crate) marks: CkptMarks,
    pub(crate) stats: StatsCatalog,
    pub(crate) indexes: IndexHandle,
    /// Inserts whose in-memory mutation has been applied but whose WAL
    /// commit has not yet resolved. Checkpoints wait for zero: a snapshot
    /// taken mid-commit could capture a tuple that then fails its commit
    /// and rolls back — durable state would diverge from every replay.
    in_flight: usize,
    /// Monotonic transaction-commit sequence: bumped once per committed
    /// transaction, under the core lock, so observers can order commits.
    pub(crate) commit_seq: u64,
}

/// One live transaction's introspection row (the `orion.txns` table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveTxnInfo {
    /// Transaction id (process-global, monotonic).
    pub id: u64,
    /// Checkpoint epoch of the chain when the snapshot was taken.
    pub snapshot_epoch: u64,
    /// Current write-set size (DML ops staged so far).
    pub writes: usize,
}

#[derive(Debug)]
pub(crate) struct SharedInner {
    pub(crate) core: Mutex<SharedCore>,
    /// Signalled each time `in_flight` drops to zero.
    drained: Condvar,
    pub(crate) wal: GroupWal,
    recovery: RecoveryReport,
    io: Arc<IoStats>,
    workload: Arc<WorkloadRepo>,
    feedback: Arc<PlanFeedbackStore>,
    /// Live transactions: id → (snapshot epoch, shared write-set counter).
    /// A side table (not under the core lock) so `orion.txns` can be read
    /// without stalling writers.
    pub(crate) txns: Mutex<HashMap<u64, (u64, Arc<std::sync::atomic::AtomicUsize>)>>,
}

/// A [`DurableDb`] behind `&self` methods, safe to share across threads
/// (`Clone` + `Send` + `Sync`): the in-memory mutation happens under a
/// core mutex, but the WAL commit happens **outside** it, so concurrent
/// inserts pile into the [`GroupWal`]'s batch and share fsyncs — the
/// whole point of group commit. Obtain one via [`DurableDb::into_shared`].
#[derive(Debug, Clone)]
pub struct SharedDurableDb {
    pub(crate) inner: Arc<SharedInner>,
}

impl SharedDurableDb {
    /// Opens the database in `dir` directly in shared mode.
    pub fn open(dir: &Path, cfg: GroupCommitConfig) -> Result<Self> {
        Ok(DurableDb::open_with(dir, cfg)?.into_shared())
    }

    /// Converts back into an exclusive [`DurableDb`] handle. Fails if
    /// other clones of this handle are still alive.
    pub fn into_db(self) -> std::result::Result<DurableDb, SharedDurableDb> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let core = inner.core.into_inner();
                Ok(DurableDb {
                    dir: core.dir,
                    tables: core.tables,
                    reg: core.reg,
                    wal: inner.wal,
                    epoch: core.epoch,
                    marks: core.marks,
                    recovery: inner.recovery,
                    stats: core.stats,
                    indexes: core.indexes,
                    io: inner.io,
                    workload: inner.workload,
                    feedback: inner.feedback,
                })
            }
            Err(inner) => Err(SharedDurableDb { inner }),
        }
    }

    /// Creates a table and durably logs its schema. The core lock is held
    /// across the commit so no concurrent insert into the new table can
    /// enqueue its tuple record ahead of the schema record.
    pub fn create_table(&self, name: &str, schema: ProbSchema) -> Result<()> {
        let mut core = self.inner.core.lock();
        if core.tables.contains_key(name) {
            return Err(EngineError::Schema(format!("table '{name}' already exists")));
        }
        let rel = Relation::new(name, schema);
        let mut buf = Vec::new();
        persist::encode_schema(&rel, &mut buf);
        self.inner.wal.commit(&[buf])?;
        core.tables.insert(name.to_string(), rel);
        Ok(())
    }

    /// Collects and durably logs statistics for `table` (see
    /// [`DurableDb::analyze_table`]). The core lock is held across the
    /// commit so the logged record matches the table state it summarizes.
    pub fn analyze_table(&self, table: &str) -> Result<()> {
        let mut core = self.inner.core.lock();
        let rel = core
            .tables
            .get(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        let ts = analyze_relation(rel)?;
        let mut buf = Vec::new();
        persist::encode_stats(&ts, &mut buf);
        self.inner.wal.commit(&[buf])?;
        core.stats.insert(ts);
        Ok(())
    }

    /// Creates a secondary index and durably logs its definition (see
    /// [`DurableDb::create_index`]). The core lock is held across the
    /// commit so the definition matches the schema it was validated
    /// against.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        column: &str,
        kind: Option<IndexKind>,
    ) -> Result<()> {
        let core = self.inner.core.lock();
        let def = validate_index_def(&core.tables, &core.indexes, name, table, column, kind)?;
        let mut buf = Vec::new();
        persist::encode_index_def(&def, &mut buf);
        self.inner.wal.commit(&[buf])?;
        let created = core.indexes.lock().create(def);
        created
    }

    /// Drops a secondary index and durably logs the drop (see
    /// [`DurableDb::drop_index`]).
    pub fn drop_index(&self, name: &str) -> Result<()> {
        let mut core = self.inner.core.lock();
        if core.indexes.lock().get(name).is_none() {
            return Err(EngineError::Operator(format!("unknown index '{name}'")));
        }
        let mut buf = Vec::new();
        persist::encode_index_drop(name, &mut buf);
        self.inner.wal.commit(&[buf])?;
        let _ = core.indexes.lock().drop_index(name);
        // An append-only delta cannot retract the chain's create record.
        core.marks.mutated = true;
        Ok(())
    }

    /// The shared index catalog handle (see [`DurableDb::indexes`]).
    pub fn indexes(&self) -> IndexHandle {
        self.inner.core.lock().indexes.clone()
    }

    /// Inserts a tuple (see [`Relation::insert`]) and commits it through
    /// the group-commit pipeline. Blocks until the commit is durable; on
    /// error the in-memory mutation is rolled back. Concurrent callers
    /// share fsyncs.
    pub fn insert(
        &self,
        table: &str,
        certain: &[(&str, Value)],
        uncertain: Vec<(Vec<&str>, JointPdf)>,
    ) -> Result<()> {
        self.insert_with(table, |rel, reg| rel.insert(reg, certain, uncertain))
    }

    /// Inserts a tuple of independent 1-D pdfs (see
    /// [`Relation::insert_simple`]) through the group-commit pipeline.
    pub fn insert_simple(
        &self,
        table: &str,
        certain: &[(&str, Value)],
        pdfs: &[(&str, Pdf1)],
    ) -> Result<()> {
        self.insert_with(table, |rel, reg| rel.insert_simple(reg, certain, pdfs))
    }

    fn insert_with(
        &self,
        table: &str,
        mutate: impl FnOnce(&mut Relation, &mut HistoryRegistry) -> Result<()>,
    ) -> Result<()> {
        // Phase 1 (under the core lock): apply the in-memory mutation and
        // encode its WAL unit.
        let (payloads, before) = {
            let mut core = self.inner.core.lock();
            let core = &mut *core;
            let before = core.reg.last_id();
            let rel = core
                .tables
                .get_mut(table)
                .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
            mutate(rel, &mut core.reg)?;
            let payloads = match encode_insert_payloads(&core.tables, &core.reg, table, before) {
                Ok(p) => p,
                Err(e) => {
                    rollback_insert(core, table, before, None);
                    return Err(e);
                }
            };
            core.in_flight += 1;
            (payloads, before)
        };
        // Phase 2 (lock released): block in the group-commit pipeline.
        // Other inserters run phase 1 meanwhile and join the same batch.
        let committed = self.inner.wal.commit(&payloads);
        // Phase 3: resolve. A failed commit rolls the mutation back by
        // identity — other inserts may have appended tuples since.
        let mut core = self.inner.core.lock();
        if committed.is_err() {
            let tuple_bytes = payloads.last().expect("insert unit has a tuple record");
            rollback_insert(&mut core, table, before, Some(tuple_bytes));
        } else {
            core.indexes.lock().note_mutation(table);
        }
        core.in_flight -= 1;
        if core.in_flight == 0 {
            self.inner.drained.notify_all();
        }
        drop(core);
        committed.map_err(EngineError::from)
    }

    /// Runs `f` with read access to the tables and registry (for queries).
    /// Do not block inside `f`: the core lock stalls every writer.
    pub fn with_tables<R>(
        &self,
        f: impl FnOnce(&HashMap<String, Relation>, &HistoryRegistry) -> R,
    ) -> R {
        let core = self.inner.core.lock();
        f(&core.tables, &core.reg)
    }

    /// Full checkpoint (see [`DurableDb::checkpoint`]). Waits for every
    /// in-flight insert to resolve first, so the snapshot never captures a
    /// tuple whose commit could still fail and roll back.
    pub fn checkpoint(&self) -> Result<()> {
        let mut core = self.lock_drained();
        let core = &mut *core;
        checkpoint_full(
            &core.dir,
            &core.tables,
            &core.reg,
            &core.stats,
            &core.indexes,
            &mut core.epoch,
            &mut core.marks,
            &self.inner.wal,
            &self.inner.io,
        )?;
        persist_workload_sidecar(&core.dir, &self.inner.workload, &self.inner.feedback);
        Ok(())
    }

    /// Incremental checkpoint (see
    /// [`DurableDb::checkpoint_incremental`]), after draining in-flight
    /// inserts.
    pub fn checkpoint_incremental(&self) -> Result<()> {
        let mut core = self.lock_drained();
        let core = &mut *core;
        checkpoint_incremental(
            &core.dir,
            &core.tables,
            &core.reg,
            &core.stats,
            &core.indexes,
            &mut core.epoch,
            &mut core.marks,
            &self.inner.wal,
            &self.inner.io,
        )?;
        persist_workload_sidecar(&core.dir, &self.inner.workload, &self.inner.feedback);
        Ok(())
    }

    /// Live transactions (id, snapshot epoch, current write-set size),
    /// sorted by id — the rows of the `orion.txns` system table.
    pub fn active_txns(&self) -> Vec<ActiveTxnInfo> {
        let txns = self.inner.txns.lock();
        let mut rows: Vec<ActiveTxnInfo> = txns
            .iter()
            .map(|(&id, (epoch, writes))| ActiveTxnInfo {
                id,
                snapshot_epoch: *epoch,
                writes: writes.load(std::sync::atomic::Ordering::Relaxed),
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Number of transactions committed through this handle since open.
    pub fn commit_seq(&self) -> u64 {
        self.inner.core.lock().commit_seq
    }

    /// Acquires the core lock with no insert in flight. Holding the lock
    /// keeps new inserts out of phase 1, so the WAL pipeline is drained
    /// for as long as the guard lives.
    pub(crate) fn lock_drained(&self) -> parking_lot::MutexGuard<'_, SharedCore> {
        let mut core = self.inner.core.lock();
        while core.in_flight > 0 {
            self.inner.drained.wait(&mut core);
        }
        core
    }

    /// What recovery did when the underlying database was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.inner.recovery
    }

    /// Group-commit counters (fsyncs, batches, fsyncs saved).
    pub fn wal_stats(&self) -> Arc<WalStats> {
        self.inner.wal.stats()
    }

    /// Checkpoint I/O counters.
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.inner.io)
    }

    /// The per-statement workload repository (see [`DurableDb::workload`]).
    pub fn workload(&self) -> Arc<WorkloadRepo> {
        Arc::clone(&self.inner.workload)
    }

    /// The planner cardinality-feedback store (see
    /// [`DurableDb::plan_feedback`]).
    pub fn plan_feedback(&self) -> Arc<PlanFeedbackStore> {
        Arc::clone(&self.inner.feedback)
    }

    /// Current group-commit tunables.
    pub fn group_commit_config(&self) -> GroupCommitConfig {
        self.inner.wal.config()
    }

    /// Replaces the group-commit tunables.
    pub fn set_group_commit_config(&self, cfg: GroupCommitConfig) {
        self.inner.wal.set_config(cfg);
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.inner.wal.len()
    }

    /// Checkpoint epoch of the current snapshot chain.
    pub fn epoch(&self) -> u64 {
        self.inner.core.lock().epoch
    }

    /// Verifies structural invariants; see [`check_invariants`].
    pub fn check_invariants(&self) -> Result<()> {
        let core = self.inner.core.lock();
        check_invariants(&core.tables, &core.reg)
    }

    /// Fault injection: the `nth` next WAL record fails its commit.
    #[cfg(feature = "failpoints")]
    pub fn inject_wal_append_failure(&self, nth: u32) {
        self.inner.wal.fail_nth_record(nth);
    }

    /// Fault injection: the next WAL fsync fails, aborting its whole
    /// batch.
    #[cfg(feature = "failpoints")]
    pub fn inject_wal_sync_failure(&self) {
        self.inner.wal.fail_next_sync();
    }
}

/// Undoes the in-memory effects of one shared-mode insert: removes its
/// tuple **by identity** (re-encoding candidates and matching the exact
/// WAL bytes — concurrent inserts may have appended later tuples, so "pop
/// the last" would remove the wrong one), releases the references its
/// nodes took, and deletes the bases it registered (`before+1..=last`,
/// unique to this insert because id allocation is monotonic under the
/// core lock). `tuple_bytes: None` skips the tuple search (the mutation
/// failed before a tuple was encoded).
fn rollback_insert(core: &mut SharedCore, table: &str, before: PdfId, tuple_bytes: Option<&[u8]>) {
    if let Some(rel) = core.tables.get_mut(table) {
        let popped: Option<ProbTuple> = tuple_bytes.and_then(|bytes| {
            rel.tuples
                .iter()
                .rposition(|t| {
                    let mut buf = Vec::new();
                    persist::encode_tuple(table, t, &mut buf);
                    buf == bytes
                })
                .map(|i| rel.tuples.remove(i))
        });
        if let Some(t) = popped {
            for n in &t.nodes {
                core.reg.release_refs(&n.ancestors);
            }
        }
    }
    for id in before + 1..=core.reg.last_id() {
        core.reg.delete_base(id);
    }
}

/// Verifies the structural invariants every recovered database must
/// satisfy, independent of where the crash happened:
///
/// 1. every tuple node's ancestors resolve in the registry;
/// 2. each base's reference count equals the number of nodes citing it;
/// 3. every node's joint mass lies in `[0, 1 + ε]`.
pub fn check_invariants(tables: &HashMap<String, Relation>, reg: &HistoryRegistry) -> Result<()> {
    let mut cited: HashMap<u64, usize> = HashMap::new();
    for (name, rel) in tables {
        for (i, t) in rel.tuples.iter().enumerate() {
            for n in &t.nodes {
                for &a in &n.ancestors {
                    if reg.base(a).is_err() {
                        return Err(EngineError::Corrupt(format!(
                            "{name}[{i}]: ancestor {a} does not resolve"
                        )));
                    }
                    *cited.entry(a).or_insert(0) += 1;
                }
                let m = n.mass();
                if !(0.0..=1.0 + 1e-9).contains(&m) {
                    return Err(EngineError::Corrupt(format!(
                        "{name}[{i}]: node mass {m} outside [0, 1]"
                    )));
                }
            }
        }
    }
    for (id, _) in reg.iter_bases() {
        let expect = cited.get(&id).copied().unwrap_or(0);
        if reg.ref_count(id) != expect {
            return Err(EngineError::Corrupt(format!(
                "base {id}: ref count {} but {expect} citing nodes",
                reg.ref_count(id)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_durable_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn schema() -> ProbSchema {
        ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
            .unwrap()
    }

    fn insert_n(db: &mut DurableDb, from: i64, n: i64) {
        for i in from..from + n {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
    }

    #[test]
    fn workload_sidecar_round_trips_across_checkpoint_and_reopen() {
        use orion_obs::workload::{ExecSample, WorkloadConfig};
        let dir = temp_dir("workload_sidecar");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
            let repo = db.workload();
            repo.set_config(WorkloadConfig { persist: true, ..WorkloadConfig::default() });
            repo.record(&ExecSample {
                fingerprint: 0x42,
                text: "SELECT id FROM readings WHERE v < ?".to_string(),
                nanos: 1_500,
                rows: 2,
                ..Default::default()
            });
            db.plan_feedback().observe("readings", "Scan", 10, 20);
            db.checkpoint().unwrap();
            assert!(dir.join(WORKLOAD_FILE).exists());
        }
        let db = DurableDb::open(&dir).unwrap();
        let stats = db.workload().statements();
        assert_eq!(stats.len(), 1);
        assert_eq!((stats[0].fingerprint, stats[0].calls), (0x42, 1));
        let fb = db.plan_feedback().summaries();
        assert_eq!(fb.len(), 1);
        assert_eq!((fb[0].last_est, fb[0].last_actual), (10, 20));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_sidecar_not_written_without_persist_knob() {
        let dir = temp_dir("workload_sidecar_off");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        db.checkpoint().unwrap();
        assert!(!dir.join(WORKLOAD_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inserts_survive_reopen_without_checkpoint() {
        let dir = temp_dir("wal_only");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            assert!(db.wal_len() > 0);
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(!db.recovery().snapshot_loaded);
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopens_from_snapshot() {
        let dir = temp_dir("checkpoint");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
            db.checkpoint().unwrap();
            assert_eq!(db.wal_len(), 0);
            insert_n(&mut db, 2, 1);
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().snapshot_loaded);
        assert_eq!(db.recovery().wal_records_replayed, 2, "one base + one tuple after ckpt");
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_snapshot_rename_and_wal_reset_discards_stale_wal() {
        // The checkpoint crash window: the new snapshot is renamed into
        // place but the process dies before the WAL reset truncates the
        // old log. Recovery must NOT replay that log over the snapshot —
        // doing so would duplicate every tuple and double-count refcounts.
        let dir = temp_dir("ckpt_window");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            // First half of checkpoint(): snapshot written and renamed,
            // stamped with the next epoch. Then "crash" before wal.reset().
            persist::save_snapshot(
                &dir.join(SNAPSHOT_FILE),
                db.tables(),
                db.registry(),
                db.epoch() + 1,
            )
            .unwrap();
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().snapshot_loaded);
        assert_eq!(db.recovery().wal_records_replayed, 0);
        assert!(db.recovery().stale_wal_records_discarded > 0, "stale WAL detected");
        assert_eq!(db.table("readings").unwrap().len(), 3, "no duplicated tuples");
        db.check_invariants().unwrap();
        assert_eq!(db.wal_len(), 0, "stale WAL emptied");
        // Second open finds nothing stale left.
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().stale_wal_records_discarded, 0);
        assert_eq!(db.table("readings").unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_is_monotonic_across_checkpoints_and_reopens() {
        let dir = temp_dir("epochs");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            assert_eq!(db.epoch(), 0);
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 1);
            db.checkpoint().unwrap();
            assert_eq!(db.epoch(), 1);
            insert_n(&mut db, 1, 1);
            db.checkpoint().unwrap();
            assert_eq!(db.epoch(), 2);
            insert_n(&mut db, 2, 1);
        }
        let mut db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.epoch(), 2, "epoch survives reopen");
        assert_eq!(db.recovery().wal_records_replayed, 2, "post-checkpoint base + tuple");
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.epoch(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_loses_only_the_uncommitted_insert() {
        let dir = temp_dir("torn");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
        }
        // Simulate a crash mid-append: chop bytes off the WAL tail.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().wal_bytes_truncated > 0);
        assert_eq!(db.table("readings").unwrap().len(), 1, "torn insert rolled back");
        db.check_invariants().unwrap();
        // Second open is idempotent: nothing further to truncate.
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_bytes_truncated, 0);
        assert_eq!(db.table("readings").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_json_is_grepable() {
        let dir = temp_dir("stats");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        insert_n(&mut db, 0, 1);
        let s = db.stats_json();
        assert!(s.contains("\"wal_records_replayed\":0"));
        assert!(s.contains("\"snapshot_loaded\":false"));
        assert!(s.contains("\"bases\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_checkpoint_folds_deltas_on_recovery() {
        let dir = temp_dir("incr_fold");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
            // First incremental falls back to full (no base yet).
            db.checkpoint_incremental().unwrap();
            assert_eq!(db.epoch(), 1);
            assert!(DeltaFile::list(&dir).unwrap().is_empty(), "first ckpt is full");
            insert_n(&mut db, 2, 2);
            db.checkpoint_incremental().unwrap();
            assert_eq!(db.epoch(), 2);
            assert_eq!(db.wal_len(), 0, "incremental ckpt resets the WAL");
            insert_n(&mut db, 4, 1);
            db.checkpoint_incremental().unwrap();
            assert_eq!(DeltaFile::list(&dir).unwrap().len(), 2, "one delta per incremental");
            let io = db.io_stats().snapshot();
            assert!(io.ckpt_pages_copied > 0);
            insert_n(&mut db, 5, 1); // tail insert riding only the WAL
        }
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().deltas_folded, 2);
        assert_eq!(db.recovery().wal_records_replayed, 2, "base + tuple after last ckpt");
        assert_eq!(db.table("readings").unwrap().len(), 6);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_checkpoint_skips_clean_pages() {
        let dir = temp_dir("incr_skip");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        // Enough tuples to span several pages.
        insert_n(&mut db, 0, 400);
        db.checkpoint().unwrap();
        insert_n(&mut db, 400, 1);
        db.checkpoint_incremental().unwrap();
        let io = db.io_stats().snapshot();
        assert!(
            io.ckpt_pages_skipped > 0,
            "one small insert must not re-copy the whole heap: {io:?}"
        );
        assert!(io.ckpt_pages_copied < io.ckpt_pages_copied + io.ckpt_pages_skipped);
        // And the delta is much smaller than the base snapshot.
        let (_, delta_path) = DeltaFile::list(&dir).unwrap().pop().unwrap();
        let delta_len = std::fs::metadata(&delta_path).unwrap().len();
        let base_len = std::fs::metadata(dir.join(SNAPSHOT_FILE)).unwrap().len();
        assert!(delta_len < base_len, "delta {delta_len} >= base {base_len}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_checkpoint_is_noop_without_new_work() {
        let dir = temp_dir("incr_noop");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        insert_n(&mut db, 0, 1);
        db.checkpoint().unwrap();
        let epoch = db.epoch();
        db.checkpoint_incremental().unwrap();
        assert_eq!(db.epoch(), epoch, "nothing new → no epoch bump");
        assert!(DeltaFile::list(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_checkpoint_subsumes_delta_chain() {
        let dir = temp_dir("full_subsumes");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 1);
            db.checkpoint().unwrap();
            insert_n(&mut db, 1, 1);
            db.checkpoint_incremental().unwrap();
            insert_n(&mut db, 2, 1);
            db.checkpoint().unwrap();
            assert!(DeltaFile::list(&dir).unwrap().is_empty(), "full ckpt removes deltas");
        }
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().deltas_folded, 0);
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn new_table_after_checkpoint_lands_in_next_delta() {
        let dir = temp_dir("incr_new_table");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 1);
            db.checkpoint().unwrap();
            db.create_table("extra", schema()).unwrap();
            db.insert_simple("extra", &[("id", Value::Int(9))], &[("v", Pdf1::certain(9.0))])
                .unwrap();
            db.checkpoint_incremental().unwrap();
        }
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().deltas_folded, 1);
        assert_eq!(db.table("extra").unwrap().len(), 1);
        assert_eq!(db.table("readings").unwrap().len(), 1);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_handle_round_trips_concurrent_inserts() {
        let dir = temp_dir("shared");
        let db = DurableDb::open(&dir).unwrap();
        let shared = db.into_shared();
        shared.create_table("readings", schema()).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..10 {
                        s.insert_simple(
                            "readings",
                            &[("id", Value::Int(t * 100 + i))],
                            &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        shared.check_invariants().unwrap();
        shared.checkpoint_incremental().unwrap();
        let db = shared.into_db().expect("sole handle");
        assert_eq!(db.table("readings").unwrap().len(), 40);
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.table("readings").unwrap().len(), 40);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyzed_stats_survive_reopen_via_wal_replay() {
        let dir = temp_dir("stats_wal");
        let before;
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 5);
            db.analyze_table("readings").unwrap();
            before = db.stats_catalog().encode();
            assert!(!before.is_empty());
        }
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.stats_catalog().encode(), before, "stats replayed bitwise-identically");
        assert_eq!(db.stats_catalog().get("readings").unwrap().rows, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyzed_stats_survive_full_and_incremental_checkpoints() {
        let dir = temp_dir("stats_ckpt");
        let before;
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            db.analyze_table("readings").unwrap();
            db.checkpoint().unwrap();
            assert_eq!(db.wal_len(), 0);
            // Re-analyze after more inserts; the new record rides a delta.
            insert_n(&mut db, 3, 2);
            db.analyze_table("readings").unwrap();
            db.checkpoint_incremental().unwrap();
            assert_eq!(db.wal_len(), 0);
            before = db.stats_catalog().encode();
        }
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_records_replayed, 0, "stats live in the chain");
        assert_eq!(db.stats_catalog().encode(), before);
        assert_eq!(db.stats_catalog().get("readings").unwrap().rows, 5, "delta overwrote base");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reanalyze_alone_counts_as_checkpoint_work() {
        let dir = temp_dir("stats_new_work");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        insert_n(&mut db, 0, 2);
        db.checkpoint().unwrap();
        let epoch = db.epoch();
        // No data change → no-op.
        db.checkpoint_incremental().unwrap();
        assert_eq!(db.epoch(), epoch);
        // ANALYZE with no data change is still new work: the catalog went
        // from empty to populated and must reach the chain.
        db.analyze_table("readings").unwrap();
        db.checkpoint_incremental().unwrap();
        assert_eq!(db.epoch(), epoch + 1, "stats change bumps the chain");
        let before = db.stats_catalog().encode();
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_records_replayed, 0);
        assert_eq!(db.stats_catalog().encode(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_handle_analyzes_and_round_trips_stats() {
        let dir = temp_dir("stats_shared");
        let db = DurableDb::open(&dir).unwrap();
        let shared = db.into_shared();
        shared.create_table("readings", schema()).unwrap();
        shared
            .insert_simple(
                "readings",
                &[("id", Value::Int(1))],
                &[("v", Pdf1::gaussian(1.0, 1.0).unwrap())],
            )
            .unwrap();
        shared.analyze_table("readings").unwrap();
        shared.checkpoint_incremental().unwrap();
        let db = shared.into_db().expect("sole handle");
        let before = db.stats_catalog().encode();
        assert!(!before.is_empty());
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.stats_catalog().encode(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_defs_survive_reopen_via_wal_replay() {
        let dir = temp_dir("index_wal");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            db.create_index("ix_v", "readings", "v", None).unwrap();
            db.create_index("ix_id", "readings", "id", None).unwrap();
            // Kind is resolved by column certainty when not forced.
            let cat = db.indexes();
            let cat = cat.lock();
            assert_eq!(cat.get("ix_v").unwrap().kind, IndexKind::Cdf);
            assert_eq!(cat.get("ix_id").unwrap().kind, IndexKind::Evx);
        }
        let db = DurableDb::open(&dir).unwrap();
        let handle = db.indexes();
        let cat = handle.lock();
        assert_eq!(cat.defs().count(), 2, "defs replayed from the WAL");
        assert_eq!(cat.get("ix_v").unwrap().column, "v");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_defs_survive_checkpoints_and_drop_forces_full() {
        let dir = temp_dir("index_ckpt");
        let encoded;
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
            db.checkpoint().unwrap();
            // CREATE INDEX alone counts as incremental-checkpoint work.
            let epoch = db.epoch();
            db.create_index("ix_v", "readings", "v", None).unwrap();
            db.checkpoint_incremental().unwrap();
            assert_eq!(db.epoch(), epoch + 1, "index DDL bumps the chain");
            assert_eq!(db.wal_len(), 0);
            encoded = db.indexes().lock().encode();
        }
        {
            let db = DurableDb::open(&dir).unwrap();
            assert_eq!(db.recovery().wal_records_replayed, 0, "defs live in the chain");
            assert_eq!(db.indexes().lock().encode(), encoded, "bitwise-identical defs");
        }
        {
            // Dropping retracts the def durably even though the chain still
            // carries its create record: the drop rides the WAL, and the
            // next checkpoint is forced full.
            let mut db = DurableDb::open(&dir).unwrap();
            db.drop_index("ix_v").unwrap();
            db.checkpoint_incremental().unwrap();
            assert!(DeltaFile::list(&dir).unwrap().is_empty(), "drop forces a full ckpt");
        }
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.indexes().lock().defs().count(), 0, "drop survived recovery");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_index_validates_before_logging() {
        let dir = temp_dir("index_validate");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        assert!(db.create_index("ix", "nope", "v", None).is_err(), "unknown table");
        assert!(db.create_index("ix", "readings", "nope", None).is_err(), "unknown column");
        assert!(
            db.create_index("ix", "readings", "v", Some(IndexKind::Evx)).is_err(),
            "evx over uncertain column"
        );
        assert!(
            db.create_index("ix", "readings", "id", Some(IndexKind::Cdf)).is_err(),
            "cdf over certain column"
        );
        db.create_index("ix", "readings", "v", None).unwrap();
        assert!(db.create_index("ix", "readings", "id", None).is_err(), "duplicate name");
        assert!(db.drop_index("ghost").is_err(), "unknown index drop");
        assert!(db.wal_len() > 0);
        // None of the failed DDL reached the log: recovery sees one def.
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.indexes().lock().defs().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dml_bumps_index_staleness_epoch() {
        let dir = temp_dir("index_epoch");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        insert_n(&mut db, 0, 1);
        // No index defined yet: inserts do not track epochs.
        assert_eq!(db.indexes().lock().epoch("readings"), 0);
        db.create_index("ix_v", "readings", "v", None).unwrap();
        insert_n(&mut db, 1, 2);
        assert_eq!(db.indexes().lock().epoch("readings"), 2, "one bump per insert");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invariant_checker_catches_dangling_ancestor() {
        let mut reg = HistoryRegistry::new();
        let mut rel = Relation::new("t", schema());
        rel.insert_simple(&mut reg, &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rel);
        check_invariants(&tables, &reg).unwrap();
        // Forcibly remove the base the tuple references.
        let id = reg.iter_bases().map(|(id, _)| id).next().unwrap();
        reg.delete_base(id);
        // delete_base keeps referenced bases as phantoms — dependency is
        // still resolvable, so the invariant holds.
        check_invariants(&tables, &reg).unwrap();
    }
}
