//! Durable database: atomic snapshots + a write-ahead log, with crash
//! recovery.
//!
//! A [`DurableDb`] lives in a directory holding two files:
//!
//! * `snapshot.db` — the last checkpoint, written atomically by
//!   [`crate::persist::save_database`] (temp file → fsync → rename);
//! * `wal.log` — every mutation since that checkpoint, as length+CRC32
//!   framed records ([`orion_storage::Wal`]).
//!
//! **Commit protocol.** An insert first mutates the in-memory tables and
//! registry, then logs the base-pdf records it registered followed by the
//! tuple record, then fsyncs the WAL. The tuple record reaching stable
//! storage *is* the commit point: recovery replays base records before the
//! tuple that references them, and a crash after the bases but before the
//! tuple leaves refcount-0 orphan bases — harmless, reclaimed at the next
//! checkpoint (reference counts are rebuilt only from tuple records).
//! If logging fails, the in-memory mutation is **rolled back** (tuple
//! popped, freshly registered bases released) and the WAL is truncated to
//! its pre-insert length, so memory never diverges from what recovery
//! would rebuild.
//!
//! **Checkpoints.** A checkpoint writes an atomic snapshot stamped with a
//! fresh *epoch*, then empties the WAL. The first record logged after a
//! checkpoint restamps the WAL with the snapshot's epoch. A crash in the
//! window between the snapshot rename and the WAL reset leaves the old
//! WAL (carrying the *previous* epoch) beside the new snapshot; recovery
//! compares epochs and discards such a stale WAL instead of replaying it
//! over state that already contains its records.
//!
//! **Recovery.** [`DurableDb::open`] loads the snapshot (if present),
//! truncates any torn WAL tail, discards the whole WAL if its epoch
//! predates the snapshot's, and otherwise replays every committed record
//! through the same [`crate::persist::apply_record`] decoder the snapshot
//! loader uses, reporting what it did in a [`RecoveryReport`]. Re-opening
//! a recovered database is idempotent: the second open replays the same
//! records and truncates nothing.

use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::persist::{self, LoadState};
use crate::relation::Relation;
use crate::schema::ProbSchema;
use crate::value::Value;
use orion_pdf::prelude::{JointPdf, Pdf1};
use orion_storage::Wal;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Snapshot file name inside a [`DurableDb`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.db";
/// Write-ahead log file name inside a [`DurableDb`] directory.
pub const WAL_FILE: &str = "wal.log";

/// What [`DurableDb::open`] found and did while recovering.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Committed WAL records replayed over the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes of torn WAL tail discarded (crash mid-append).
    pub wal_bytes_truncated: u64,
    /// Records discarded because the whole WAL predated the snapshot's
    /// checkpoint epoch (crash between snapshot rename and WAL reset).
    pub stale_wal_records_discarded: u64,
}

impl RecoveryReport {
    /// Stable JSON rendering for stats exporters and test grepping.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"snapshot_loaded\":{},\"wal_records_replayed\":{},\"wal_bytes_truncated\":{},\"stale_wal_records_discarded\":{}}}",
            self.snapshot_loaded,
            self.wal_records_replayed,
            self.wal_bytes_truncated,
            self.stale_wal_records_discarded
        )
    }
}

/// A database rooted in a directory, surviving crashes at any point.
#[derive(Debug)]
pub struct DurableDb {
    dir: PathBuf,
    tables: HashMap<String, Relation>,
    reg: HistoryRegistry,
    wal: Wal,
    /// Checkpoint epoch of the current snapshot (0 before any checkpoint).
    /// WAL records only count at recovery if their log carries this epoch.
    epoch: u64,
    recovery: RecoveryReport,
}

impl DurableDb {
    /// Opens (creating if absent) the database in `dir`, running crash
    /// recovery: snapshot load, torn-tail truncation, stale-WAL rejection,
    /// WAL replay.
    pub fn open(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let snap = dir.join(SNAPSHOT_FILE);
        let mut state = LoadState::default();
        let snapshot_loaded = snap.exists();
        if snapshot_loaded {
            persist::load_into(&snap, &mut state)?;
        }
        let snap_epoch = state.wal_epoch;
        let (mut wal, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let wal_epoch = replay.records.first().and_then(|r| persist::record_epoch(r)).unwrap_or(0);
        let mut replayed = 0u64;
        let mut stale_discarded = 0u64;
        if wal_epoch < snap_epoch {
            // The WAL predates the snapshot: a crash hit the window between
            // a checkpoint's snapshot rename and its WAL reset. Every record
            // here is already folded into the snapshot — replaying would
            // duplicate tuples and double-count refcounts.
            stale_discarded = replay.records.len() as u64;
            if stale_discarded > 0 {
                wal.reset()?;
            }
        } else {
            for rec in &replay.records {
                persist::apply_record(rec, &mut state)?;
                if persist::record_epoch(rec).is_none() {
                    replayed += 1;
                }
            }
        }
        let recovery = RecoveryReport {
            snapshot_loaded,
            wal_records_replayed: replayed,
            wal_bytes_truncated: replay.truncated_bytes,
            stale_wal_records_discarded: stale_discarded,
        };
        let epoch = state.wal_epoch.max(snap_epoch);
        let (tables, reg) = state.finish();
        Ok(DurableDb { dir: dir.to_path_buf(), tables, reg, wal, epoch, recovery })
    }

    /// Creates a table and durably logs its schema. On failure the WAL is
    /// rolled back to its pre-call length and the table is not created.
    pub fn create_table(&mut self, name: &str, schema: ProbSchema) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(EngineError::Schema(format!("table '{name}' already exists")));
        }
        let rel = Relation::new(name, schema);
        let wal_start = self.wal.len();
        let logged: Result<()> = (|| {
            self.ensure_epoch_stamp()?;
            let mut buf = Vec::new();
            persist::encode_schema(&rel, &mut buf);
            self.wal.append(&buf)?;
            self.wal.sync()?;
            Ok(())
        })();
        if let Err(e) = logged {
            let _ = self.wal.truncate_to(wal_start);
            return Err(e);
        }
        self.tables.insert(name.to_string(), rel);
        Ok(())
    }

    /// Inserts a tuple (see [`Relation::insert`]) and commits it through
    /// the WAL. On return the insert is durable; on error nothing is
    /// applied — a failed WAL append/sync rolls the in-memory mutation
    /// back, so memory and log never diverge.
    pub fn insert(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        uncertain: Vec<(Vec<&str>, JointPdf)>,
    ) -> Result<()> {
        let before = self.reg.last_id();
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert(&mut self.reg, certain, uncertain)?;
        self.log_tail(table, before)
    }

    /// Inserts a tuple of independent 1-D pdfs (see
    /// [`Relation::insert_simple`]) and commits it through the WAL, with
    /// the same rollback-on-failure guarantee as [`DurableDb::insert`].
    pub fn insert_simple(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        pdfs: &[(&str, Pdf1)],
    ) -> Result<()> {
        let before = self.reg.last_id();
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert_simple(&mut self.reg, certain, pdfs)?;
        self.log_tail(table, before)
    }

    /// Restamps an empty WAL with the current checkpoint epoch. Must run
    /// before the first record after a checkpoint: recovery treats a WAL
    /// whose epoch is below the snapshot's as stale, so records logged
    /// without the stamp would be skipped. Written lazily (not inside
    /// `checkpoint`) so a crash right after a checkpoint leaves a plain
    /// empty log, and a failed stamp write is simply retried by the next
    /// mutation.
    fn ensure_epoch_stamp(&mut self) -> Result<()> {
        if self.epoch > 0 && self.wal.is_empty() {
            let mut buf = Vec::new();
            persist::encode_epoch(self.epoch, &mut buf);
            self.wal.append(&buf)?;
        }
        Ok(())
    }

    /// Logs the base pdfs the last insert registered (ids in
    /// `before..=last`), then the tuple record, then fsyncs — the tuple
    /// record is the commit point. Any failure rolls back both the WAL
    /// (truncated to its pre-insert length) and the in-memory mutation.
    fn log_tail(&mut self, table: &str, before: u64) -> Result<()> {
        let wal_start = self.wal.len();
        if let Err(e) = self.log_tail_inner(table, before) {
            let _ = self.wal.truncate_to(wal_start);
            self.rollback_last_insert(table, before);
            return Err(e);
        }
        Ok(())
    }

    fn log_tail_inner(&mut self, table: &str, before: u64) -> Result<()> {
        self.ensure_epoch_stamp()?;
        let mut buf = Vec::new();
        for id in before + 1..=self.reg.last_id() {
            if let Ok(base) = self.reg.base(id) {
                buf.clear();
                persist::encode_base(id, base, &mut buf);
                self.wal.append(&buf)?;
            }
        }
        let t = self.tables[table]
            .tuples
            .last()
            .ok_or_else(|| EngineError::Operator("insert left no tuple to log".into()))?;
        buf.clear();
        persist::encode_tuple(table, t, &mut buf);
        self.wal.append(&buf)?;
        self.wal.sync()?;
        Ok(())
    }

    /// Undoes the in-memory effects of the insert that registered bases
    /// `before+1..=last`: pops its tuple, releases the references the
    /// tuple's nodes took, and deletes the bases it registered (now
    /// unreferenced). Restores the exact pre-insert state recovery would
    /// rebuild from the (also rolled-back) WAL.
    fn rollback_last_insert(&mut self, table: &str, before: u64) {
        if let Some(rel) = self.tables.get_mut(table) {
            if let Some(t) = rel.tuples.pop() {
                for n in &t.nodes {
                    self.reg.release_refs(&n.ancestors);
                }
            }
        }
        for id in before + 1..=self.reg.last_id() {
            self.reg.delete_base(id);
        }
    }

    /// Checkpoints: atomically writes a fresh snapshot stamped with the
    /// next epoch, then empties the WAL (whose records the snapshot now
    /// subsumes). Crash-atomic at every point: until the snapshot rename
    /// lands, recovery uses the old snapshot + full WAL; once it lands, a
    /// WAL still carrying the old epoch is recognized as stale and
    /// discarded instead of replayed. A checkpoint that returns an error
    /// never corrupts state — at worst the WAL keeps accumulating.
    pub fn checkpoint(&mut self) -> Result<()> {
        let new_epoch = self.epoch + 1;
        persist::save_snapshot(&self.dir.join(SNAPSHOT_FILE), &self.tables, &self.reg, new_epoch)?;
        self.epoch = new_epoch;
        self.wal.reset()?;
        Ok(())
    }

    /// The tables, for querying.
    pub fn tables(&self) -> &HashMap<String, Relation> {
        &self.tables
    }

    /// One table by name.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'")))
    }

    /// The history registry, for running operators over the tables.
    pub fn registry_mut(&mut self) -> &mut HistoryRegistry {
        &mut self.reg
    }

    /// The history registry, read-only (e.g. for snapshotting alongside
    /// [`DurableDb::tables`]).
    pub fn registry(&self) -> &HistoryRegistry {
        &self.reg
    }

    /// Checkpoint epoch of the current snapshot (0 before any checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fault injection: the `nth` next WAL append (0 = the very next one)
    /// fails with an injected I/O error.
    #[cfg(feature = "failpoints")]
    pub fn inject_wal_append_failure(&mut self, nth: u32) {
        self.wal.fail_nth_append(nth);
    }

    /// Fault injection: the next WAL fsync fails with an injected I/O
    /// error (commit ambiguity — the insert must roll back).
    #[cfg(feature = "failpoints")]
    pub fn inject_wal_sync_failure(&mut self) {
        self.wal.fail_next_sync();
    }

    /// What recovery did when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current WAL length in bytes (0 right after a checkpoint).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Recovery + size stats as JSON, for the observability exporters.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"recovery\":{},\"wal_len\":{},\"epoch\":{},\"tables\":{},\"bases\":{}}}",
            self.recovery.to_json(),
            self.wal.len(),
            self.epoch,
            self.tables.len(),
            self.reg.len()
        )
    }

    /// Verifies structural invariants; see [`check_invariants`].
    pub fn check_invariants(&self) -> Result<()> {
        check_invariants(&self.tables, &self.reg)
    }
}

/// Verifies the structural invariants every recovered database must
/// satisfy, independent of where the crash happened:
///
/// 1. every tuple node's ancestors resolve in the registry;
/// 2. each base's reference count equals the number of nodes citing it;
/// 3. every node's joint mass lies in `[0, 1 + ε]`.
pub fn check_invariants(tables: &HashMap<String, Relation>, reg: &HistoryRegistry) -> Result<()> {
    let mut cited: HashMap<u64, usize> = HashMap::new();
    for (name, rel) in tables {
        for (i, t) in rel.tuples.iter().enumerate() {
            for n in &t.nodes {
                for &a in &n.ancestors {
                    if reg.base(a).is_err() {
                        return Err(EngineError::Corrupt(format!(
                            "{name}[{i}]: ancestor {a} does not resolve"
                        )));
                    }
                    *cited.entry(a).or_insert(0) += 1;
                }
                let m = n.mass();
                if !(0.0..=1.0 + 1e-9).contains(&m) {
                    return Err(EngineError::Corrupt(format!(
                        "{name}[{i}]: node mass {m} outside [0, 1]"
                    )));
                }
            }
        }
    }
    for (id, _) in reg.iter_bases() {
        let expect = cited.get(&id).copied().unwrap_or(0);
        if reg.ref_count(id) != expect {
            return Err(EngineError::Corrupt(format!(
                "base {id}: ref count {} but {expect} citing nodes",
                reg.ref_count(id)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_durable_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn schema() -> ProbSchema {
        ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
            .unwrap()
    }

    fn insert_n(db: &mut DurableDb, from: i64, n: i64) {
        for i in from..from + n {
            db.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
    }

    #[test]
    fn inserts_survive_reopen_without_checkpoint() {
        let dir = temp_dir("wal_only");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            assert!(db.wal_len() > 0);
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(!db.recovery().snapshot_loaded);
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopens_from_snapshot() {
        let dir = temp_dir("checkpoint");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
            db.checkpoint().unwrap();
            assert_eq!(db.wal_len(), 0);
            insert_n(&mut db, 2, 1);
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().snapshot_loaded);
        assert_eq!(db.recovery().wal_records_replayed, 2, "one base + one tuple after ckpt");
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_snapshot_rename_and_wal_reset_discards_stale_wal() {
        // The checkpoint crash window: the new snapshot is renamed into
        // place but the process dies before the WAL reset truncates the
        // old log. Recovery must NOT replay that log over the snapshot —
        // doing so would duplicate every tuple and double-count refcounts.
        let dir = temp_dir("ckpt_window");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 3);
            // First half of checkpoint(): snapshot written and renamed,
            // stamped with the next epoch. Then "crash" before wal.reset().
            persist::save_snapshot(
                &dir.join(SNAPSHOT_FILE),
                db.tables(),
                db.registry(),
                db.epoch() + 1,
            )
            .unwrap();
        }
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().snapshot_loaded);
        assert_eq!(db.recovery().wal_records_replayed, 0);
        assert!(db.recovery().stale_wal_records_discarded > 0, "stale WAL detected");
        assert_eq!(db.table("readings").unwrap().len(), 3, "no duplicated tuples");
        db.check_invariants().unwrap();
        assert_eq!(db.wal_len(), 0, "stale WAL emptied");
        // Second open finds nothing stale left.
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().stale_wal_records_discarded, 0);
        assert_eq!(db.table("readings").unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_is_monotonic_across_checkpoints_and_reopens() {
        let dir = temp_dir("epochs");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            assert_eq!(db.epoch(), 0);
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 1);
            db.checkpoint().unwrap();
            assert_eq!(db.epoch(), 1);
            insert_n(&mut db, 1, 1);
            db.checkpoint().unwrap();
            assert_eq!(db.epoch(), 2);
            insert_n(&mut db, 2, 1);
        }
        let mut db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.epoch(), 2, "epoch survives reopen");
        assert_eq!(db.recovery().wal_records_replayed, 2, "post-checkpoint base + tuple");
        assert_eq!(db.table("readings").unwrap().len(), 3);
        db.check_invariants().unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.epoch(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_loses_only_the_uncommitted_insert() {
        let dir = temp_dir("torn");
        {
            let mut db = DurableDb::open(&dir).unwrap();
            db.create_table("readings", schema()).unwrap();
            insert_n(&mut db, 0, 2);
        }
        // Simulate a crash mid-append: chop bytes off the WAL tail.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let db = DurableDb::open(&dir).unwrap();
        assert!(db.recovery().wal_bytes_truncated > 0);
        assert_eq!(db.table("readings").unwrap().len(), 1, "torn insert rolled back");
        db.check_invariants().unwrap();
        // Second open is idempotent: nothing further to truncate.
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_bytes_truncated, 0);
        assert_eq!(db.table("readings").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_json_is_grepable() {
        let dir = temp_dir("stats");
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", schema()).unwrap();
        insert_n(&mut db, 0, 1);
        let s = db.stats_json();
        assert!(s.contains("\"wal_records_replayed\":0"));
        assert!(s.contains("\"snapshot_loaded\":false"));
        assert!(s.contains("\"bases\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invariant_checker_catches_dangling_ancestor() {
        let mut reg = HistoryRegistry::new();
        let mut rel = Relation::new("t", schema());
        rel.insert_simple(&mut reg, &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rel);
        check_invariants(&tables, &reg).unwrap();
        // Forcibly remove the base the tuple references.
        let id = reg.iter_bases().map(|(id, _)| id).next().unwrap();
        reg.delete_base(id);
        // delete_base keeps referenced bases as phantoms — dependency is
        // still resolvable, so the invariant holds.
        check_invariants(&tables, &reg).unwrap();
    }
}
