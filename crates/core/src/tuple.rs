//! Probabilistic tuples and their pdf nodes.
//!
//! A [`ProbTuple`] holds the certain attribute values plus one [`PdfNode`]
//! per dependency set. Every dimension of a node's joint pdf carries a
//! [`VarId`] — the identity of the *base random variable* it descends from
//! (which base pdf instance, which dimension) — and optionally the visible
//! column it currently surfaces as. Projected-out dimensions lose their
//! column (*phantom attributes*, Section III-B) but keep their `VarId`, so
//! later history-aware recombination (Section II-C) can still line them up
//! with their ancestors. Two dimensions denote the same random variable iff
//! their `VarId`s are equal — column names and ids are just the user-facing
//! addressing layer.

use crate::history::{Ancestors, PdfId};
use crate::schema::AttrId;
use crate::value::Value;
use orion_pdf::prelude::{JointPdf, Pdf1};

/// Identity of a base random variable: one dimension of one registered
/// base pdf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId {
    /// The registered base pdf this variable originates from.
    pub base: PdfId,
    /// Dimension within that base pdf.
    pub dim: u16,
}

/// One dimension of a pdf node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDim {
    /// The underlying random variable.
    pub var: VarId,
    /// The visible column this dimension surfaces as; `None` for phantom
    /// (projected-out) dimensions.
    pub column: Option<AttrId>,
}

/// The distribution of one dependency set within one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct PdfNode {
    /// Per-dimension identities (same order as the joint).
    pub dims: Vec<NodeDim>,
    /// The (possibly partial) joint pdf.
    pub joint: JointPdf,
    /// Ancestor base pdfs, `A(t.S)` (Definition 2).
    pub ancestors: Ancestors,
}

impl PdfNode {
    /// Creates a node; `dims.len()` must equal the joint arity.
    pub fn new(dims: Vec<NodeDim>, joint: JointPdf, ancestors: Ancestors) -> Self {
        assert_eq!(dims.len(), joint.arity(), "dims must match joint arity");
        PdfNode { dims, joint, ancestors }
    }

    /// Creates a freshly inserted base node: variable `d` of base pdf
    /// `base`, surfacing as `attrs[d]`.
    pub fn base(base: PdfId, attrs: &[AttrId], joint: JointPdf, ancestors: Ancestors) -> Self {
        let dims = attrs
            .iter()
            .enumerate()
            .map(|(d, &a)| NodeDim { var: VarId { base, dim: d as u16 }, column: Some(a) })
            .collect();
        PdfNode::new(dims, joint, ancestors)
    }

    /// Dimension index of the visible column `attr`.
    pub fn dim_of(&self, attr: AttrId) -> Option<usize> {
        self.dims.iter().position(|d| d.column == Some(attr))
    }

    /// Whether the node visibly covers `attr`.
    pub fn covers(&self, attr: AttrId) -> bool {
        self.dim_of(attr).is_some()
    }

    /// Dimension index of a specific variable.
    pub fn dim_of_var(&self, var: VarId) -> Option<usize> {
        self.dims.iter().position(|d| d.var == var)
    }

    /// The 1-D marginal of the visible column `attr` (carrying the node's
    /// existence mass).
    pub fn marginal(&self, attr: AttrId) -> Option<Pdf1> {
        let d = self.dim_of(attr)?;
        self.joint.marginal1(d).ok()
    }

    /// The node's total mass (its contribution to tuple existence).
    pub fn mass(&self) -> f64 {
        self.joint.mass()
    }

    /// Returns a copy with the listed columns hidden (made phantom).
    pub fn hide_columns(&self, hidden: &[AttrId]) -> PdfNode {
        let dims = self
            .dims
            .iter()
            .map(|d| NodeDim { var: d.var, column: d.column.filter(|a| !hidden.contains(a)) })
            .collect();
        PdfNode { dims, joint: self.joint.clone(), ancestors: self.ancestors.clone() }
    }
}

/// One probabilistic tuple: certain values aligned with the relation's
/// columns (placeholder `Null` at uncertain positions) plus pdf nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbTuple {
    /// Certain values, one per visible column (`Null` where uncertain).
    pub certain: Vec<Value>,
    /// Pdf nodes, one per dependency set (order is not significant).
    pub nodes: Vec<PdfNode>,
}

impl ProbTuple {
    /// The node visibly covering `attr`, if any.
    pub fn node_for(&self, attr: AttrId) -> Option<&PdfNode> {
        self.nodes.iter().find(|n| n.covers(attr))
    }

    /// Index of the node visibly covering `attr`.
    pub fn node_index_for(&self, attr: AttrId) -> Option<usize> {
        self.nodes.iter().position(|n| n.covers(attr))
    }

    /// Naive existence probability: the product of node masses. Correct
    /// when the nodes are historically independent; callers that may hold
    /// dependent nodes (lazy join mode) must collapse first — see
    /// [`crate::collapse::collapse_tuple`].
    pub fn naive_existence(&self) -> f64 {
        self.nodes.iter().map(PdfNode::mass).product()
    }

    /// Whether any node is vacuous (no possible world keeps the tuple).
    pub fn is_vacuous(&self) -> bool {
        self.nodes.iter().any(|n| n.joint.is_vacuous())
    }

    /// Union of all node ancestor sets.
    pub fn all_ancestors(&self) -> Ancestors {
        let mut out = Ancestors::new();
        for n in &self.nodes {
            out.extend(n.ancestors.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_pdf::prelude::DiscretePdf;

    fn node(base: PdfId, attr: AttrId, pdf: Pdf1) -> PdfNode {
        PdfNode::base(base, &[attr], JointPdf::from_pdf1(pdf), [base].into_iter().collect())
    }

    #[test]
    fn node_lookup_and_marginal() {
        let n = PdfNode::base(
            7,
            &[10, 11],
            JointPdf::independent(vec![
                Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap(),
                Pdf1::certain(5.0),
            ])
            .unwrap(),
            Ancestors::new(),
        );
        assert_eq!(n.dim_of(11), Some(1));
        assert_eq!(n.dim_of(12), None);
        assert!(n.covers(10));
        assert_eq!(n.dim_of_var(VarId { base: 7, dim: 0 }), Some(0));
        assert_eq!(n.dim_of_var(VarId { base: 8, dim: 0 }), None);
        let m = n.marginal(10).unwrap();
        assert!((m.density(1.0) - 0.9).abs() < 1e-12);
        assert!(n.marginal(42).is_none());
        assert!((n.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hidden_columns_become_phantom() {
        let n = PdfNode::base(
            1,
            &[10, 11],
            JointPdf::independent(vec![Pdf1::certain(1.0), Pdf1::certain(2.0)]).unwrap(),
            Ancestors::new(),
        );
        let h = n.hide_columns(&[11]);
        assert!(h.covers(10));
        assert!(!h.covers(11), "phantom dims do not resolve by column");
        assert_eq!(h.dim_of_var(VarId { base: 1, dim: 1 }), Some(1), "variable identity kept");
        assert_eq!(h.joint, n.joint);
    }

    #[test]
    #[should_panic(expected = "dims must match joint arity")]
    fn node_arity_mismatch_panics() {
        PdfNode::base(1, &[1, 2], JointPdf::from_pdf1(Pdf1::certain(0.0)), Ancestors::new());
    }

    #[test]
    fn tuple_existence_and_vacuity() {
        let t = ProbTuple {
            certain: vec![Value::Int(1), Value::Null],
            nodes: vec![
                node(10, 10, Pdf1::discrete(vec![(1.0, 0.5)]).unwrap()),
                node(11, 11, Pdf1::discrete(vec![(2.0, 0.8)]).unwrap()),
            ],
        };
        assert!((t.naive_existence() - 0.4).abs() < 1e-12);
        assert!(!t.is_vacuous());
        let anc = t.all_ancestors();
        assert!(anc.contains(&10) && anc.contains(&11));
        assert_eq!(t.node_index_for(11), Some(1));
        assert!(t.node_for(99).is_none());
    }

    #[test]
    fn phantom_does_not_shadow_visible_node() {
        // The Figure 3 t'2 case: node A holds column 20 visibly and column
        // 21 as phantom (different base tuple); node B holds column 21
        // visibly. Resolution of column 21 must find node B.
        let a = PdfNode::base(
            1,
            &[20, 21],
            JointPdf::independent(vec![Pdf1::certain(7.0), Pdf1::certain(3.0)]).unwrap(),
            [1].into_iter().collect(),
        )
        .hide_columns(&[21]);
        let b = node(2, 21, Pdf1::certain(5.0));
        let t = ProbTuple { certain: vec![], nodes: vec![a, b] };
        let n = t.node_for(21).unwrap();
        assert!((n.marginal(21).unwrap().density(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vacuous_node_detected() {
        let t = ProbTuple {
            certain: vec![],
            nodes: vec![node(1, 1, Pdf1::Discrete(DiscretePdf::vacuous()))],
        };
        assert!(t.is_vacuous());
    }
}
