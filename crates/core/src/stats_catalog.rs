//! Per-table data statistics collected by `ANALYZE`.
//!
//! Statistics over uncertain data are themselves probabilistic objects: a
//! certain column gets an ordinary equi-depth histogram plus a distinct
//! count, but an uncertain column is summarized by (a) an equi-depth
//! histogram over per-tuple *expected values*, (b) cdf-bound summaries —
//! the per-tuple effective-support `[lo, hi]` intervals and the probability
//! mass retained at the paper-style threshold levels used by
//! `Pr(A ∈ R) ⊙ p` queries — and (c) a bounded per-tuple cdf sketch that
//! lets the planner estimate threshold-predicate selectivity directly.
//! Each table additionally records a tuple-existence-probability histogram.
//!
//! The whole catalog has a deterministic byte codec (versioned, hardened
//! against truncation) so it rides the snapshot/WAL machinery and recovers
//! bitwise-identical after a crash.

use crate::error::{EngineError, Result};
use crate::predicate::{CmpOp, Predicate, Scalar};
use crate::relation::Relation;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Equi-depth bucket count for value/expected-value histograms.
pub const HIST_BUCKETS: usize = 8;
/// Grid points of the per-column cdf sketch.
pub const CDF_GRID: usize = 16;
/// Per-column cap on sampled tuples in the cdf sketch.
pub const SAMPLE_CAP: usize = 256;
/// Buckets of the per-table tuple-existence histogram over `(0, 1]`.
pub const EXIST_BUCKETS: usize = 10;
/// Paper-style probability threshold levels summarized per uncertain column.
pub const MASS_LEVELS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// Magic row count assumed for a table that was never analyzed.
pub const MAGIC_ROWS: u64 = 1000;
/// Magic selectivity of a certain predicate on un-analyzed data.
pub const MAGIC_SELECTIVITY: f64 = 1.0 / 3.0;
/// Magic selectivity of a probability-threshold operator on un-analyzed data.
pub const MAGIC_THRESHOLD_SELECTIVITY: f64 = 0.2;

const CODEC_VERSION: u8 = 1;
/// Upper bound on any decoded element count; real catalogs stay far below.
const MAX_DECODE_LEN: usize = 1 << 20;

/// An equi-depth (quantile-boundary) histogram over finite f64 samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries, `buckets + 1` entries (empty when `total == 0`).
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts.
    pub counts: Vec<u64>,
    /// Total samples summarized.
    pub total: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram from samples (non-finite are dropped).
    pub fn build(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        if values.is_empty() {
            return EquiDepthHistogram::default();
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let buckets = HIST_BUCKETS.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        bounds.push(values[0]);
        let mut start = 0usize;
        for b in 0..buckets {
            // Equal-depth split: bucket b covers ranks [start, end).
            let end = (n * (b + 1)) / buckets;
            counts.push((end - start) as u64);
            bounds.push(values[end.max(1) - 1]);
            start = end;
        }
        EquiDepthHistogram { bounds, counts, total: n as u64 }
    }

    /// Estimated fraction of samples strictly below `x` (linear within a
    /// bucket).
    pub fn frac_below(&self, x: f64) -> f64 {
        if self.total == 0 || self.bounds.len() < 2 {
            return 0.5;
        }
        if x <= self.bounds[0] {
            return 0.0;
        }
        if x > *self.bounds.last().expect("bounds") {
            return 1.0;
        }
        let mut below = 0.0;
        for (b, &count) in self.counts.iter().enumerate() {
            let (lo, hi) = (self.bounds[b], self.bounds[b + 1]);
            if x >= hi {
                below += count as f64;
            } else {
                let width = hi - lo;
                let frac = if width > 0.0 { ((x - lo) / width).clamp(0.0, 1.0) } else { 0.0 };
                below += count as f64 * frac;
                break;
            }
        }
        below / self.total as f64
    }

    /// Estimated fraction of samples satisfying `value op x`.
    pub fn selectivity_cmp(&self, op: CmpOp, x: f64, distinct: u64) -> f64 {
        let below = self.frac_below(x);
        let point = 1.0 / distinct.max(1) as f64;
        match op {
            CmpOp::Lt => below,
            CmpOp::Le => (below + point).min(1.0),
            CmpOp::Gt => 1.0 - (below + point).min(1.0),
            CmpOp::Ge => 1.0 - below,
            CmpOp::Eq => point,
            CmpOp::Ne => 1.0 - point,
        }
    }
}

/// Cdf-bound summaries of an uncertain column: aggregate `[lo, hi]`
/// effective-support intervals and the tuple counts retaining at least each
/// paper-style probability-mass level (partial pdfs of maybe-tuples hold
/// mass `< 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsSummary {
    /// Minimum support lower endpoint across tuples.
    pub lo_min: f64,
    /// Maximum support upper endpoint across tuples.
    pub hi_max: f64,
    /// Mean support width.
    pub width_mean: f64,
    /// `(level, tuples with total pdf mass >= level)` per [`MASS_LEVELS`].
    pub mass_at: Vec<(f64, u64)>,
}

/// A bounded per-tuple cdf sketch: for up to [`SAMPLE_CAP`] tuples, the
/// column's cdf evaluated on a fixed grid spanning the column's support.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CdfSketch {
    /// Grid points (ascending, [`CDF_GRID`] entries).
    pub grid: Vec<f64>,
    /// One cdf row per sampled tuple, aligned with `grid`.
    pub rows: Vec<Vec<f64>>,
}

impl CdfSketch {
    /// Interpolated `Pr(X <= x)` for sampled tuple `row`.
    pub fn cdf_at(&self, row: usize, x: f64) -> f64 {
        let (grid, vals) = (&self.grid, &self.rows[row]);
        if grid.is_empty() || vals.len() != grid.len() {
            return 0.0;
        }
        if x <= grid[0] {
            return if x < grid[0] { 0.0 } else { vals[0] };
        }
        if x >= *grid.last().expect("grid") {
            return *vals.last().expect("vals");
        }
        let j = grid.partition_point(|&g| g <= x);
        let (g0, g1) = (grid[j - 1], grid[j]);
        let (v0, v1) = (vals[j - 1], vals[j]);
        let t = if g1 > g0 { (x - g0) / (g1 - g0) } else { 0.0 };
        v0 + (v1 - v0) * t
    }

    /// Interpolated `Pr(a <= X <= b)` for sampled tuple `row`.
    pub fn prob_in(&self, row: usize, a: f64, b: f64) -> f64 {
        (self.cdf_at(row, b) - self.cdf_at(row, a)).max(0.0)
    }

    /// Total pdf mass of sampled tuple `row` (`< 1` for maybe-values).
    pub fn mass(&self, row: usize) -> f64 {
        self.rows[row].last().copied().unwrap_or(0.0)
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Whether the column is uncertain.
    pub uncertain: bool,
    /// Equi-depth histogram over values (certain) or expected values
    /// (uncertain).
    pub hist: EquiDepthHistogram,
    /// Distinct-count estimate (certain columns; 0 for uncertain).
    pub distinct: u64,
    /// Tuples contributing no value (NULL / massless pdf).
    pub nulls: u64,
    /// Cdf-bound summaries (uncertain columns only).
    pub bounds: Option<BoundsSummary>,
    /// Per-tuple cdf sketch (uncertain columns only).
    pub sketch: Option<CdfSketch>,
}

/// Statistics for one table, as collected by one `ANALYZE`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Table name.
    pub table: String,
    /// Live tuple count at analyze time.
    pub rows: u64,
    /// Sum of tuple existence probabilities (the expected row count).
    pub exist_sum: f64,
    /// Existence-probability histogram: [`EXIST_BUCKETS`] fixed-width
    /// buckets over `(0, 1]`.
    pub exist_hist: Vec<u64>,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

/// Collects full [`TableStats`] from a relation.
pub fn analyze_relation(rel: &Relation) -> Result<TableStats> {
    let n = rel.len();
    let mut exist_hist = vec![0u64; EXIST_BUCKETS];
    let mut exist_sum = 0.0;
    for t in &rel.tuples {
        let e = t.naive_existence().clamp(0.0, 1.0);
        exist_sum += e;
        let b = ((e * EXIST_BUCKETS as f64).ceil() as usize).clamp(1, EXIST_BUCKETS) - 1;
        exist_hist[b] += 1;
    }
    let mut columns = Vec::new();
    for col in rel.schema.columns() {
        columns.push(if col.uncertain {
            analyze_uncertain(rel, &col.name)?
        } else {
            analyze_certain(rel, &col.name)?
        });
    }
    Ok(TableStats { table: rel.name.clone(), rows: n as u64, exist_sum, exist_hist, columns })
}

fn analyze_certain(rel: &Relation, name: &str) -> Result<ColumnStats> {
    let mut values = Vec::with_capacity(rel.len());
    let mut distinct = BTreeSet::new();
    let mut nulls = 0u64;
    for ti in 0..rel.len() {
        let v = rel.value(ti, name)?;
        if matches!(v, Value::Null) {
            nulls += 1;
            continue;
        }
        distinct.insert(format!("{v:?}"));
        if let Some(x) = v.as_f64() {
            values.push(x);
        }
    }
    Ok(ColumnStats {
        name: name.to_string(),
        uncertain: false,
        hist: EquiDepthHistogram::build(values),
        distinct: distinct.len() as u64,
        nulls,
        bounds: None,
        sketch: None,
    })
}

fn analyze_uncertain(rel: &Relation, name: &str) -> Result<ColumnStats> {
    let mut expected = Vec::with_capacity(rel.len());
    let mut nulls = 0u64;
    let mut lo_min = f64::INFINITY;
    let mut hi_max = f64::NEG_INFINITY;
    let mut width_sum = 0.0;
    let mut width_n = 0u64;
    let mut mass_counts = [0u64; MASS_LEVELS.len()];
    let mut pdfs = Vec::new();
    for ti in 0..rel.len() {
        let pdf = rel.marginal(ti, name)?;
        match pdf.expected_value() {
            Some(ev) if ev.is_finite() => expected.push(ev),
            _ => nulls += 1,
        }
        if let Some(iv) = pdf.effective_support() {
            if iv.lo.is_finite() && iv.hi.is_finite() {
                lo_min = lo_min.min(iv.lo);
                hi_max = hi_max.max(iv.hi);
                width_sum += iv.hi - iv.lo;
                width_n += 1;
            }
        }
        let mass = pdf.mass();
        for (i, lvl) in MASS_LEVELS.iter().enumerate() {
            if mass >= lvl - 1e-9 {
                mass_counts[i] += 1;
            }
        }
        if pdfs.len() < SAMPLE_CAP {
            pdfs.push(pdf);
        }
    }
    let sketch = if lo_min.is_finite() && hi_max > lo_min && !pdfs.is_empty() {
        let step = (hi_max - lo_min) / (CDF_GRID - 1) as f64;
        let grid: Vec<f64> = (0..CDF_GRID).map(|j| lo_min + step * j as f64).collect();
        let rows =
            pdfs.iter().map(|pdf| grid.iter().map(|&g| pdf.cumulative(g)).collect()).collect();
        Some(CdfSketch { grid, rows })
    } else {
        None
    };
    let bounds = if width_n > 0 {
        Some(BoundsSummary {
            lo_min,
            hi_max,
            width_mean: width_sum / width_n as f64,
            mass_at: MASS_LEVELS.iter().copied().zip(mass_counts).collect(),
        })
    } else {
        None
    };
    Ok(ColumnStats {
        name: name.to_string(),
        uncertain: true,
        hist: EquiDepthHistogram::build(expected),
        distinct: 0,
        nulls,
        bounds,
        sketch,
    })
}

/// The closed value interval in which `pred` holds, if `pred` constrains a
/// single column by numeric comparisons (conjunctions intersect). The
/// access-path planner reuses this to turn a threshold predicate into an
/// index probe range — the interval is a superset of the passing region,
/// so index candidate sets stay sound.
pub(crate) fn pred_interval(pred: &Predicate) -> Option<(String, f64, f64)> {
    match pred {
        Predicate::Cmp(a, op, b) => {
            let (col, op, v) = match (a, b) {
                (Scalar::Col(c), Scalar::Lit(v)) => (c, *op, v),
                (Scalar::Lit(v), Scalar::Col(c)) => (c, op.flip(), v),
                _ => return None,
            };
            let x = v.as_f64()?;
            let (lo, hi) = match op {
                CmpOp::Lt | CmpOp::Le => (f64::NEG_INFINITY, x),
                CmpOp::Gt | CmpOp::Ge => (x, f64::INFINITY),
                CmpOp::Eq => (x, x),
                CmpOp::Ne => return None,
            };
            Some((col.clone(), lo, hi))
        }
        Predicate::And(ps) => {
            let mut acc: Option<(String, f64, f64)> = None;
            for p in ps {
                let (c, lo, hi) = pred_interval(p)?;
                acc = match acc {
                    None => Some((c, lo, hi)),
                    Some((c0, lo0, hi0)) if c0 == c => Some((c0, lo0.max(lo), hi0.min(hi))),
                    _ => return None,
                };
            }
            acc
        }
        _ => None,
    }
}

impl TableStats {
    fn column(&self, name: &str) -> Option<&ColumnStats> {
        // Qualified references (`t.x`) fall back to the bare column name.
        self.columns.iter().find(|c| c.name == name).or_else(|| {
            name.rsplit('.').next().and_then(|b| self.columns.iter().find(|c| c.name == b))
        })
    }

    /// Estimated selectivity of a certain predicate over this table.
    pub fn est_select(&self, pred: &Predicate) -> f64 {
        let mut sel = 1.0;
        for atom in pred.conjuncts() {
            sel *= self.est_atom(atom);
        }
        sel.clamp(0.0, 1.0)
    }

    fn est_atom(&self, atom: &Predicate) -> f64 {
        match atom {
            Predicate::Cmp(a, op, b) => {
                let (col, op, v) = match (a, b) {
                    (Scalar::Col(c), Scalar::Lit(v)) => (c, *op, v),
                    (Scalar::Lit(v), Scalar::Col(c)) => (c, op.flip(), v),
                    _ => return MAGIC_SELECTIVITY,
                };
                match (self.column(col), v.as_f64()) {
                    (Some(cs), Some(x)) if cs.hist.total > 0 => {
                        cs.hist.selectivity_cmp(op, x, cs.distinct)
                    }
                    _ => MAGIC_SELECTIVITY,
                }
            }
            Predicate::Not(p) => (1.0 - self.est_select(p)).clamp(0.0, 1.0),
            Predicate::Or(ps) => {
                // Union bound, capped.
                ps.iter().map(|p| self.est_select(p)).sum::<f64>().min(1.0)
            }
            Predicate::And(_) => self.est_select(atom),
        }
    }

    /// Estimated selectivity of `PROB(pred) op p` over this table, from the
    /// per-tuple cdf sketch of the constrained column.
    pub fn est_threshold_pred(&self, pred: &Predicate, op: CmpOp, p: f64) -> f64 {
        let Some((col, lo, hi)) = pred_interval(pred) else {
            return MAGIC_THRESHOLD_SELECTIVITY;
        };
        let Some(sketch) = self.column(&col).and_then(|c| c.sketch.as_ref()) else {
            return MAGIC_THRESHOLD_SELECTIVITY;
        };
        if sketch.rows.is_empty() {
            return MAGIC_THRESHOLD_SELECTIVITY;
        }
        let hits = (0..sketch.rows.len())
            .filter(|&r| {
                let prob = sketch.prob_in(r, lo, hi);
                op.test(prob.partial_cmp(&p).unwrap_or(std::cmp::Ordering::Equal))
            })
            .count();
        hits as f64 / sketch.rows.len() as f64
    }

    /// Estimated selectivity of `PROB(attrs) op p` (attribute existence),
    /// from sampled per-tuple pdf masses.
    pub fn est_threshold_attrs(&self, attrs: &[String], op: CmpOp, p: f64) -> f64 {
        let mut sketches = Vec::new();
        for a in attrs {
            match self.column(a).and_then(|c| c.sketch.as_ref()) {
                Some(s) if !s.rows.is_empty() => sketches.push(s),
                _ => return MAGIC_THRESHOLD_SELECTIVITY,
            }
        }
        if sketches.is_empty() {
            return MAGIC_THRESHOLD_SELECTIVITY;
        }
        let n = sketches.iter().map(|s| s.rows.len()).min().expect("non-empty");
        let hits = (0..n)
            .filter(|&r| {
                let mass: f64 = sketches.iter().map(|s| s.mass(r)).product();
                op.test(mass.partial_cmp(&p).unwrap_or(std::cmp::Ordering::Equal))
            })
            .count();
        hits as f64 / n as f64
    }
}

/// The per-database stats catalog: one [`TableStats`] per analyzed table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsCatalog {
    tables: BTreeMap<String, TableStats>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    /// Stats for `table`, if analyzed.
    pub fn get(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(table)
    }

    /// Installs (or replaces) the stats of one table.
    pub fn insert(&mut self, stats: TableStats) {
        self.tables.insert(stats.table.clone(), stats);
    }

    /// Drops the stats of one table (on `DROP TABLE`).
    pub fn remove(&mut self, table: &str) -> Option<TableStats> {
        self.tables.remove(table)
    }

    /// Number of analyzed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no table has been analyzed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates analyzed tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &TableStats> {
        self.tables.values()
    }

    /// Canonical byte encoding of the whole catalog (name-ordered); two
    /// catalogs are equal iff their encodings are byte-identical.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for ts in self.tables.values() {
            buf.extend_from_slice(&ts.encode());
        }
        buf
    }
}

// ---------------------------------------------------------------------------
// Deterministic codec.
// ---------------------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_u64(buf, v);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bad(what: &str) -> EngineError {
        EngineError::Corrupt(format!("stats record: {what}"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(Self::bad("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn count(&mut self) -> Result<usize> {
        let n = self.u64()? as usize;
        // A count can never exceed the bytes that remain to back it.
        if n > MAX_DECODE_LEN || n > self.buf.len() - self.pos {
            return Err(Self::bad("implausible count"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.count()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| Self::bad("non-utf8 string"))
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.count()?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.count()?;
        (0..n).map(|_| self.u64()).collect()
    }
}

impl TableStats {
    /// Deterministic byte encoding (versioned).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(CODEC_VERSION);
        put_str(&mut buf, &self.table);
        put_u64(&mut buf, self.rows);
        put_f64(&mut buf, self.exist_sum);
        put_u64s(&mut buf, &self.exist_hist);
        put_u64(&mut buf, self.columns.len() as u64);
        for c in &self.columns {
            put_str(&mut buf, &c.name);
            buf.push(c.uncertain as u8);
            put_f64s(&mut buf, &c.hist.bounds);
            put_u64s(&mut buf, &c.hist.counts);
            put_u64(&mut buf, c.hist.total);
            put_u64(&mut buf, c.distinct);
            put_u64(&mut buf, c.nulls);
            match &c.bounds {
                None => buf.push(0),
                Some(b) => {
                    buf.push(1);
                    put_f64(&mut buf, b.lo_min);
                    put_f64(&mut buf, b.hi_max);
                    put_f64(&mut buf, b.width_mean);
                    put_u64(&mut buf, b.mass_at.len() as u64);
                    for (lvl, n) in &b.mass_at {
                        put_f64(&mut buf, *lvl);
                        put_u64(&mut buf, *n);
                    }
                }
            }
            match &c.sketch {
                None => buf.push(0),
                Some(s) => {
                    buf.push(1);
                    put_f64s(&mut buf, &s.grid);
                    put_u64(&mut buf, s.rows.len() as u64);
                    for row in &s.rows {
                        put_f64s(&mut buf, row);
                    }
                }
            }
        }
        buf
    }

    /// Decodes one table's stats; rejects truncation and garbage as
    /// [`EngineError::Corrupt`].
    pub fn decode(buf: &[u8]) -> Result<TableStats> {
        let mut c = Cursor { buf, pos: 0 };
        let ver = c.u8()?;
        if ver != CODEC_VERSION {
            return Err(Cursor::bad(&format!("unknown version {ver}")));
        }
        let table = c.str()?;
        let rows = c.u64()?;
        let exist_sum = c.f64()?;
        let exist_hist = c.u64s()?;
        let ncols = c.count()?;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = c.str()?;
            let uncertain = c.u8()? != 0;
            let bounds_v = c.f64s()?;
            let counts = c.u64s()?;
            let total = c.u64()?;
            let distinct = c.u64()?;
            let nulls = c.u64()?;
            let bounds = match c.u8()? {
                0 => None,
                1 => {
                    let lo_min = c.f64()?;
                    let hi_max = c.f64()?;
                    let width_mean = c.f64()?;
                    let n = c.count()?;
                    let mut mass_at = Vec::with_capacity(n);
                    for _ in 0..n {
                        let lvl = c.f64()?;
                        mass_at.push((lvl, c.u64()?));
                    }
                    Some(BoundsSummary { lo_min, hi_max, width_mean, mass_at })
                }
                _ => return Err(Cursor::bad("bad bounds flag")),
            };
            let sketch = match c.u8()? {
                0 => None,
                1 => {
                    let grid = c.f64s()?;
                    let nrows = c.count()?;
                    let mut rows = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        rows.push(c.f64s()?);
                    }
                    Some(CdfSketch { grid, rows })
                }
                _ => return Err(Cursor::bad("bad sketch flag")),
            };
            columns.push(ColumnStats {
                name,
                uncertain,
                hist: EquiDepthHistogram { bounds: bounds_v, counts, total },
                distinct,
                nulls,
                bounds,
                sketch,
            });
        }
        if c.pos != buf.len() {
            return Err(Cursor::bad("trailing bytes"));
        }
        Ok(TableStats { table, rows, exist_sum, exist_hist, columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryRegistry;
    use crate::schema::{ColumnType, ProbSchema};
    use orion_pdf::prelude::Pdf1;

    fn sensor_rel(n: usize) -> Relation {
        let schema = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("readings", schema);
        let mut reg = HistoryRegistry::new();
        for i in 0..n {
            rel.insert_simple(
                &mut reg,
                &[("rid", Value::Int(i as i64))],
                &[("v", Pdf1::gaussian(10.0 + i as f64, 4.0).unwrap())],
            )
            .unwrap();
        }
        rel
    }

    #[test]
    fn equi_depth_histogram_shape_and_mass() {
        let h = EquiDepthHistogram::build((0..100).map(|i| i as f64).collect());
        assert_eq!(h.total, 100);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(h.counts.len(), HIST_BUCKETS);
        assert_eq!(h.bounds.len(), HIST_BUCKETS + 1);
        // Equi-depth: every bucket holds ~n/B samples.
        for &c in &h.counts {
            assert!((12..=13).contains(&c), "counts: {:?}", h.counts);
        }
        assert!((h.frac_below(50.0) - 0.5).abs() < 0.05);
        assert_eq!(h.frac_below(-1.0), 0.0);
        assert_eq!(h.frac_below(1e9), 1.0);
    }

    #[test]
    fn histogram_fewer_samples_than_buckets() {
        let h = EquiDepthHistogram::build(vec![3.0, 1.0]);
        assert_eq!(h.total, 2);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        let empty = EquiDepthHistogram::build(vec![f64::NAN]);
        assert_eq!(empty.total, 0);
    }

    #[test]
    fn analyze_collects_rows_columns_and_existence() {
        let rel = sensor_rel(20);
        let ts = analyze_relation(&rel).unwrap();
        assert_eq!(ts.rows, 20);
        assert!((ts.exist_sum - 20.0).abs() < 1e-9);
        assert_eq!(ts.exist_hist.iter().sum::<u64>(), 20);
        assert_eq!(ts.exist_hist[EXIST_BUCKETS - 1], 20, "full-mass tuples in last bucket");
        assert_eq!(ts.columns.len(), 2);
        let rid = &ts.columns[0];
        assert!(!rid.uncertain);
        assert_eq!(rid.distinct, 20);
        assert_eq!(rid.hist.total, 20);
        let v = &ts.columns[1];
        assert!(v.uncertain);
        assert_eq!(v.hist.total, 20, "expected-value histogram covers all tuples");
        let b = v.bounds.as_ref().unwrap();
        assert!(b.lo_min < 10.0 && b.hi_max > 29.0);
        assert_eq!(b.mass_at.len(), MASS_LEVELS.len());
        assert_eq!(b.mass_at[0].1, 20, "all tuples hold full mass");
        let s = v.sketch.as_ref().unwrap();
        assert_eq!(s.grid.len(), CDF_GRID);
        assert_eq!(s.rows.len(), 20);
    }

    #[test]
    fn threshold_estimates_track_truth() {
        let rel = sensor_rel(100);
        let ts = analyze_relation(&rel).unwrap();
        // Ground truth: Pr(v BETWEEN 10 AND 40) > 0.5.
        let pred = Predicate::And(vec![
            Predicate::cmp("v", CmpOp::Ge, 10.0),
            Predicate::cmp("v", CmpOp::Le, 40.0),
        ]);
        let truth = {
            let mut n = 0;
            for ti in 0..rel.len() {
                let pdf = rel.marginal(ti, "v").unwrap();
                let p = pdf.cumulative(40.0) - pdf.cumulative(10.0);
                if p > 0.5 {
                    n += 1;
                }
            }
            n as f64
        };
        let est = ts.est_threshold_pred(&pred, CmpOp::Gt, 0.5) * ts.rows as f64;
        let err = (est - truth).abs() / truth.max(1.0);
        assert!(err < 0.5, "est {est} vs truth {truth}");
    }

    #[test]
    fn certain_selectivity_uses_histogram() {
        let rel = sensor_rel(100);
        let ts = analyze_relation(&rel).unwrap();
        let sel = ts.est_select(&Predicate::cmp("rid", CmpOp::Lt, 50i64));
        assert!((sel - 0.5).abs() < 0.1, "sel {sel}");
        // Unknown columns fall back to the magic constant.
        let sel = ts.est_select(&Predicate::cmp_cols("rid", CmpOp::Lt, "other"));
        assert!((sel - MAGIC_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn codec_round_trips_bitwise() {
        let rel = sensor_rel(17);
        let ts = analyze_relation(&rel).unwrap();
        let bytes = ts.encode();
        let back = TableStats::decode(&bytes).unwrap();
        assert_eq!(back, ts);
        assert_eq!(back.encode(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let rel = sensor_rel(5);
        let bytes = analyze_relation(&rel).unwrap().encode();
        for cut in 0..bytes.len() {
            let err = TableStats::decode(&bytes[..cut]).expect_err("truncated must fail");
            assert!(err.is_corruption(), "cut {cut}: {err}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(TableStats::decode(&padded).is_err());
        // Bad version byte.
        let mut bad = bytes;
        bad[0] = 99;
        assert!(TableStats::decode(&bad).is_err());
    }

    #[test]
    fn catalog_encode_is_name_ordered() {
        let mut cat = StatsCatalog::new();
        cat.insert(analyze_relation(&sensor_rel(3)).unwrap());
        let mut b = analyze_relation(&sensor_rel(2)).unwrap();
        b.table = "aaa".into();
        cat.insert(b);
        let names: Vec<&str> = cat.iter().map(|t| t.table.as_str()).collect();
        assert_eq!(names, vec!["aaa", "readings"]);
        assert_eq!(cat.len(), 2);
        let enc1 = cat.encode();
        let enc2 = cat.clone().encode();
        assert_eq!(enc1, enc2);
        cat.remove("aaa");
        assert_eq!(cat.len(), 1);
    }
}
